//! Scheduling down a layered network, à la the paper's reference [7].
//!
//! Li (2002) reduces a homogeneous multi-port grid to a *heterogeneous
//! linear array*: each layer of the grid aggregates into one stage of a
//! chain whose effective link and compute speeds differ per depth. This
//! example builds such a depth-decaying chain, schedules growing batches
//! through the unified registry and shows where the optimal schedule
//! places the crossover from "keep everything close to the master" to
//! "pipeline deep".
//!
//! ```text
//! cargo run --release --example layered_network
//! ```

use master_slave_tasking::prelude::*;

fn main() {
    let registry = SolverRegistry::with_defaults();
    // A 6-layer network: links get slower with depth (aggregation cost),
    // compute gets faster (more nodes per layer folded into one stage).
    let layers: Vec<(Time, Time)> = (0..6).map(|d| (1 + d as Time, 7 - d as Time)).collect();
    let chain = Chain::from_pairs(&layers).expect("valid chain");
    println!("layered-network chain: {chain}\n");

    println!(
        "{:>5} | {:>8} | {:>12} | {:>10} | tasks per layer (optimal)",
        "n", "optimal", "master-only", "eager"
    );
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let instance = Instance::new(chain.clone(), n);
        let optimal = registry.solve("optimal", &instance).expect("chain solves");
        assert!(verify(&instance, &optimal).expect("checkable").is_feasible());
        let makespan_of =
            |solver: &str| registry.solve(solver, &instance).expect("chain solvers").makespan();
        println!(
            "{:>5} | {:>8} | {:>12} | {:>10} | {:?}",
            n,
            optimal.makespan(),
            makespan_of("master-only"),
            makespan_of("eager"),
            optimal.tasks_per_processor(&instance.platform).expect("witnessed")
        );
    }

    let (t, d) = chain.steady_state_rate();
    println!("\nsteady-state rate bound: {t}/{d} task/tick");
    println!("As n grows the optimal schedule pushes work deeper: the per-layer");
    println!("counts spread out, and throughput approaches the rate bound while");
    println!("master-only stays pinned at the first layer's pipeline speed.");
}
