//! Scheduling down a layered network, à la the paper's reference [7].
//!
//! Li (2002) reduces a homogeneous multi-port grid to a *heterogeneous
//! linear array*: each layer of the grid aggregates into one stage of a
//! chain whose effective link and compute speeds differ per depth. This
//! example builds such a depth-decaying chain, schedules growing batches
//! and shows where the optimal schedule places the crossover from
//! "keep everything close to the master" to "pipeline deep".
//!
//! ```text
//! cargo run --release --example layered_network
//! ```

use master_slave_tasking::prelude::*;
use mst_baselines::{eager_chain, master_only_chain};
use mst_schedule::{check_chain, metrics};

fn main() {
    // A 6-layer network: links get slower with depth (aggregation cost),
    // compute gets faster (more nodes per layer folded into one stage).
    let layers: Vec<(Time, Time)> = (0..6).map(|d| (1 + d as Time, 7 - d as Time)).collect();
    let chain = Chain::from_pairs(&layers).expect("valid chain");
    println!("layered-network chain: {chain}\n");

    println!(
        "{:>5} | {:>8} | {:>12} | {:>10} | tasks per layer (optimal)",
        "n", "optimal", "master-only", "eager"
    );
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let s = schedule_chain(&chain, n);
        check_chain(&chain, &s).assert_feasible();
        let m = metrics::chain_metrics(&chain, &s);
        println!(
            "{:>5} | {:>8} | {:>12} | {:>10} | {:?}",
            n,
            s.makespan(),
            master_only_chain(&chain, n).makespan(),
            eager_chain(&chain, n).makespan(),
            m.tasks_per_proc
        );
    }

    let (t, d) = chain.steady_state_rate();
    println!("\nsteady-state rate bound: {t}/{d} task/tick");
    println!("As n grows the optimal schedule pushes work deeper: the per-layer");
    println!("counts spread out, and throughput approaches the rate bound while");
    println!("master-only stays pinned at the first layer's pipeline speed.");
}
