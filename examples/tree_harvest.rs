//! Covering a general tree with a spider (the paper's future work).
//!
//! ```text
//! cargo run --example tree_harvest
//! ```

use master_slave_tasking::prelude::*;
use mst_schedule::check_spider;
use mst_tree::{schedule_tree, PathStrategy};

fn main() {
    let registry = SolverRegistry::with_defaults();
    // A small random tree of 7 processors.
    let tree =
        GeneratorConfig::new(HeterogeneityProfile::Uniform { c: (1, 4), w: (1, 6) }, 17).tree(7);
    println!("tree platform:\n{tree}");

    let n = 6;
    println!("strategy results for {n} tasks:");
    for strategy in PathStrategy::ALL {
        let out = schedule_tree(&tree, n, strategy);
        check_spider(&out.cover.spider, &out.schedule).assert_feasible();
        println!(
            "  {:<17} makespan {:>3}, covers {} of {} processors (paths {:?})",
            strategy.name(),
            out.makespan,
            out.cover.covered_nodes(),
            tree.len(),
            out.cover.node_map
        );
    }

    // The unified surface: `optimal` picks the best cover, `exact` is
    // the exhaustive ground truth (makespan-only on general trees).
    let instance = Instance::new(tree, n);
    let best = registry.solve("optimal", &instance).expect("tree solves");
    assert!(verify(&instance, &best).expect("checkable").is_feasible());
    let opt = registry.solve("exact", &instance).expect("exhaustive solves").makespan();
    println!("\nbest cover makespan: {}", best.makespan());
    println!(
        "  (covering {} of {} processors)",
        best.sub_platform().expect("tree cover").num_processors(),
        instance.platform.num_processors()
    );
    println!("true tree optimum (exhaustive): {opt}");
    println!(
        "covering gap: {:+.1}% — the price of idling off-path processors",
        100.0 * (best.makespan() - opt) as f64 / opt as f64
    );
}
