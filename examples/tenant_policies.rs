//! Execution policies end to end, without a server: two tenants with
//! different thread budgets and quotas over one process, a deadline
//! budget cancelling an oversized sweep, and an explicit cancellation.
//!
//! ```text
//! cargo run --release --example tenant_policies
//! ```

use master_slave_tasking::api::exec::{AdmissionError, ExecPolicy, TenantExec};
use master_slave_tasking::api::fleet;
use master_slave_tasking::api::{BatchSummary, SolverRegistry};
use mst_sim::{shared_pool, CancelToken};
use std::time::{Duration, Instant};

fn main() {
    // Two tenants: `light` gets one inline executor and two admission
    // slots; `heavy` gets a three-thread dedicated pool. Their pools
    // are disjoint — heavy's sweeps can never occupy light's executor.
    let light = TenantExec::new(
        ExecPolicy::new("light", SolverRegistry::global().clone()).threads(1).quota(2),
        shared_pool(),
    );
    let heavy = TenantExec::new(
        ExecPolicy::new("heavy", SolverRegistry::global().clone()).threads(3),
        shared_pool(),
    );
    assert!(!std::sync::Arc::ptr_eq(light.batch().pool(), heavy.batch().pool()));

    // Admission: two slots admit, the third refuses, releasing re-admits.
    let a = light.admit().expect("first slot");
    let b = light.admit().expect("second slot");
    match light.admit() {
        Err(AdmissionError::QuotaExhausted { quota, .. }) => {
            println!("light tenant refused its 3rd concurrent request (quota {quota})");
        }
        other => panic!("expected a quota refusal, got {other:?}"),
    }
    drop(a);
    let _re = light.admit().expect("released slots re-admit");
    drop(b);

    // Both tenants sweep the same shared fleet definition concurrently.
    let instances = fleet::mixed_fleet(2_000);
    let heavy_results = heavy.batch().solve_all(&instances);
    let light_results = light.batch().solve_all(&instances);
    assert_eq!(heavy_results, light_results, "pools change speed, never results");
    println!("both tenants solved {} instances identically", instances.len());

    // A deadline budget cancels an oversized sweep at a checkpoint.
    let budgeted = TenantExec::new(
        ExecPolicy::new("budgeted", SolverRegistry::global().clone())
            .threads(1)
            .deadline(Duration::from_millis(25)),
        shared_pool(),
    );
    let big = fleet::mixed_fleet(300_000);
    let started = Instant::now();
    let summary =
        BatchSummary::of(&budgeted.batch().solve_all_cancellable(&big, &budgeted.cancel_token()));
    println!(
        "budgeted sweep: {} solved, {} cancelled in {:?}",
        summary.solved,
        summary.cancelled,
        started.elapsed()
    );
    assert!(summary.cancelled > 0, "a 25ms budget cannot cover 300k instances");
    assert!(summary.solved > 0, "work before the deadline is kept");

    // Explicit cancellation: the same token, fired from outside.
    let token = CancelToken::new();
    token.cancel();
    let summary = BatchSummary::of(&heavy.batch().solve_all_cancellable(&big, &token));
    assert_eq!(summary.cancelled, big.len(), "a pre-cancelled token skips everything");
    println!("explicit cancellation skipped all {} instances", big.len());

    println!("tenant_policies: OK");
}
