//! A federation of laboratories scheduled as a spider, using the named
//! platform presets.
//!
//! Each lab is a short chain (gateway, then workers) hanging off the
//! master — the spider topology of the paper's Section 7 in its most
//! natural clothing. The example contrasts three management policies a
//! federation operator could adopt:
//!
//! 1. optimal offline scheduling over the whole spider (the paper);
//! 2. treating each lab as a black box and using only its gateway
//!    (a fork over the gateways — what reference [2] solves);
//! 3. sending everything to the single best lab (a chain).
//!
//! ```text
//! cargo run --release --example lab_federation
//! ```

use master_slave_tasking::prelude::*;
use mst_core::schedule_chain;
use mst_fork::schedule_fork;
use mst_platform::presets;
use mst_schedule::check_spider;

fn main() {
    let federation = presets::lab_federation(5);
    println!("{federation}");

    let batch = 30;

    // 1. The full spider, scheduled optimally.
    let (spider_makespan, schedule) = schedule_spider(&federation, batch);
    check_spider(&federation, &schedule).assert_feasible();
    println!("full spider, optimal: makespan {spider_makespan}");
    for l in 0..federation.num_legs() {
        let deep = schedule
            .tasks()
            .iter()
            .filter(|t| t.node.leg == l && t.node.depth > 1)
            .count();
        println!(
            "  lab {l}: {} work units ({} forwarded past the gateway)",
            schedule.tasks_on_leg(l),
            deep
        );
    }

    // 2. Gateways only: the fork over each lab's first processor.
    let gateways = federation.head_fork();
    let (fork_makespan, _) = schedule_fork(&gateways, batch);
    println!("gateways only (fork): makespan {fork_makespan}");

    // 3. Best single lab, used as a chain.
    let best_chain = federation
        .legs()
        .iter()
        .map(|leg| schedule_chain(leg, batch).makespan())
        .min()
        .expect("legs");
    println!("best single lab (chain): makespan {best_chain}");

    assert!(spider_makespan <= fork_makespan);
    assert!(spider_makespan <= best_chain);
    println!(
        "\nusing every lab's depth is worth {:.0}% over gateways-only and {:.0}% over the best lab",
        100.0 * (fork_makespan - spider_makespan) as f64 / spider_makespan as f64,
        100.0 * (best_chain - spider_makespan) as f64 / spider_makespan as f64
    );
}
