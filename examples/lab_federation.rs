//! A federation of laboratories scheduled as a spider, using the named
//! platform presets and the unified solver API.
//!
//! Each lab is a short chain (gateway, then workers) hanging off the
//! master — the spider topology of the paper's Section 7 in its most
//! natural clothing. The example contrasts three management policies a
//! federation operator could adopt, each expressed as one
//! [`SolverRegistry::solve`] call on a different [`Platform`] view:
//!
//! 1. optimal offline scheduling over the whole spider (the paper);
//! 2. treating each lab as a black box and using only its gateway
//!    (a fork over the gateways — what reference [2] solves);
//! 3. sending everything to the single best lab (a chain).
//!
//! ```text
//! cargo run --release --example lab_federation
//! ```

use master_slave_tasking::prelude::*;
use mst_platform::presets;

fn main() {
    let registry = SolverRegistry::with_defaults();
    let federation = presets::lab_federation(5);
    println!("{federation}");

    let batch = 30;

    // 1. The full spider, scheduled optimally.
    let instance = Instance::new(federation.clone(), batch);
    let solution = registry.solve("optimal", &instance).expect("spider solves");
    assert!(verify(&instance, &solution).expect("checkable").is_feasible());
    let spider_makespan = solution.makespan();
    println!("full spider, optimal: makespan {spider_makespan}");
    let schedule = solution.spider_schedule().expect("spider schedule");
    for l in 0..federation.num_legs() {
        let deep = schedule.tasks().iter().filter(|t| t.node.leg == l && t.node.depth > 1).count();
        println!(
            "  lab {l}: {} work units ({} forwarded past the gateway)",
            schedule.tasks_on_leg(l),
            deep
        );
    }

    // 2. Gateways only: the fork over each lab's first processor —
    // the same solve() call on a different platform view.
    let gateways = Instance::new(federation.head_fork(), batch);
    let fork_makespan = registry.solve("fork-optimal", &gateways).expect("fork solves").makespan();
    println!("gateways only (fork): makespan {fork_makespan}");

    // 3. Best single lab, used as a chain.
    let best_chain = federation
        .legs()
        .iter()
        .map(|leg| {
            registry
                .solve("chain-optimal", &Instance::new(leg.clone(), batch))
                .expect("chain solves")
                .makespan()
        })
        .min()
        .expect("legs");
    println!("best single lab (chain): makespan {best_chain}");

    assert!(spider_makespan <= fork_makespan);
    assert!(spider_makespan <= best_chain);
    println!(
        "\nusing every lab's depth is worth {:.0}% over gateways-only and {:.0}% over the best lab",
        100.0 * (fork_makespan - spider_makespan) as f64 / spider_makespan as f64,
        100.0 * (best_chain - spider_makespan) as f64 / spider_makespan as f64
    );
}
