//! Service-style traffic: sweep thousands of instances across all cores
//! with the [`Batch`] engine.
//!
//! The ROADMAP's north star is a system serving many scenarios fast.
//! This example is the building block: 1200 seeded instances over all
//! three polynomial topologies, fanned out over every core through
//! `Batch::solve_all`, every solution re-checked by the unified
//! feasibility oracle.
//!
//! ```text
//! cargo run --release --example batch_sweep
//! ```

use master_slave_tasking::prelude::*;
use std::time::Instant;

fn main() {
    // The global registry is built once per process (`OnceLock`); the
    // clone only bumps the solver `Arc`s.
    let registry = SolverRegistry::global().clone();

    // 1200 instances: chains, forks and spiders, five heterogeneity
    // regimes, varied sizes and batch lengths — all seeded, so the sweep
    // is reproducible bit for bit.
    let instances: Vec<Instance> = (0..1200u64)
        .map(|seed| {
            let kind = [TopologyKind::Chain, TopologyKind::Fork, TopologyKind::Spider]
                [(seed % 3) as usize];
            Instance::generate(
                kind,
                HeterogeneityProfile::ALL[(seed % 5) as usize],
                seed,
                2 + (seed % 6) as usize,
                4 + (seed % 13) as usize,
            )
        })
        .collect();

    // The batch sweeps on the process-wide persistent worker pool: the
    // first call wakes its sleeping threads, every later call reuses
    // them — no thread is spawned per sweep, so a service can call
    // `solve_all` in a loop at full speed (watch the per-sweep time
    // settle after round 0).
    let batch = Batch::new(registry);
    let mut results = Vec::new();
    for round in 0..3 {
        let started = Instant::now();
        results = batch.solve_all(&instances);
        let elapsed = started.elapsed();
        println!(
            "round {round}: {} instances in {:.3}s ({:.0}/s) on {} pooled worker(s)",
            instances.len(),
            elapsed.as_secs_f64(),
            instances.len() as f64 / elapsed.as_secs_f64().max(1e-9),
            batch.pool().workers(),
        );
    }

    let summary = BatchSummary::of(&results);
    println!("{summary}");

    // Every solution must pass the Definition-1 oracle.
    let mut checked = 0;
    for (instance, result) in instances.iter().zip(&results) {
        let solution = result.as_ref().expect("every instance solves");
        assert!(
            verify(instance, solution).expect("checkable").is_feasible(),
            "infeasible solution for {instance}"
        );
        checked += 1;
    }
    println!("verified {checked} solutions against the feasibility oracle");

    // The same sweep under a deadline: how much fits by t = 25?
    let fits: usize = batch
        .solve_all_by_deadline(&instances, 25)
        .into_iter()
        .map(|r| r.expect("deadline solves").n())
        .sum();
    println!("under a 25-tick deadline the fleet completes {fits} tasks in total");
}
