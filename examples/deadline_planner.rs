//! Capacity planning with the `T_lim` variant: the task-count staircase.
//!
//! Section 7 rewrites the chain algorithm to take a deadline and
//! maximise the number of scheduled tasks. This example sweeps deadlines
//! over a heterogeneous chain through the unified
//! [`SolverRegistry::solve_by_deadline`] entry point and prints the
//! resulting staircase — the curve a capacity planner reads to answer
//! "how much work fits before the maintenance window?".
//!
//! ```text
//! cargo run --example deadline_planner
//! ```

use master_slave_tasking::prelude::*;

fn main() {
    let registry = SolverRegistry::with_defaults();
    let chain =
        GeneratorConfig::new(HeterogeneityProfile::Uniform { c: (1, 4), w: (2, 6) }, 7).chain(5);
    let instance = Instance::new(chain, 1_000);
    println!("platform: {}\n", instance.platform);
    println!("{:>8} | {:>5} | {:>14} | bar", "deadline", "tasks", "first emission");

    let mut prev = usize::MAX;
    for deadline in (0..=60).step_by(3) {
        let solution =
            registry.solve_by_deadline("optimal", &instance, deadline).expect("deadline solves");
        assert!(verify(&instance, &solution).expect("checkable").is_feasible());
        let s = solution.chain_schedule().expect("chain schedule");
        for t in s.tasks() {
            assert!(t.end() <= deadline);
        }
        let marker = if s.n() != prev { '*' } else { ' ' };
        prev = s.n();
        println!(
            "{:>8} | {:>5} | {:>14} | {}{}",
            deadline,
            s.n(),
            s.start_time().map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
            "#".repeat(s.n()),
            marker,
        );
    }

    println!("\n(* = the count increased: one more task fits from this deadline on)");
    println!("The staircase is monotone — the property the spider algorithm's");
    println!("binary search over T_lim relies on (Theorem 3).");
}
