//! Quickstart: schedule the paper's worked example and inspect it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use master_slave_tasking::prelude::*;
use mst_schedule::{check_chain, gantt, metrics};
use mst_sim::replay_chain;

fn main() {
    // The chain of the paper's Figure 2: the master feeds processor 1
    // (c_1 = 2, w_1 = 3) which feeds processor 2 (c_2 = 3, w_2 = 5).
    let chain = Chain::paper_figure2();
    println!("platform: {chain}");

    // Optimal schedule for five tasks (Theorem 1).
    let schedule = schedule_chain(&chain, 5);
    println!("\noptimal schedule for 5 tasks:\n{schedule}");
    println!("{}", gantt::render_chain(&chain, &schedule));
    println!("makespan: {} ticks (the paper's Figure 2 shows 14)", schedule.makespan());

    // Independently verify the four feasibility properties of
    // Definition 1 ...
    check_chain(&chain, &schedule).assert_feasible();
    println!("feasibility oracle: all four Definition-1 properties hold");

    // ... and actually execute it in the discrete-event simulator.
    let trace = replay_chain(&chain, &schedule).expect("schedule must replay");
    println!(
        "simulator replay: {} events, finished at t = {}",
        trace.len(),
        trace.end_time()
    );

    // Utilization summary.
    let m = metrics::chain_metrics(&chain, &schedule);
    for k in 1..=chain.len() {
        println!(
            "processor {k}: {} task(s), busy {:.0}% of the makespan",
            m.tasks_per_proc[k - 1],
            100.0 * m.proc_utilization(k)
        );
    }

    // The deadline variant (Section 7): how many tasks fit in 10 ticks?
    let by_10 = schedule_chain_by_deadline(&chain, 100, 10);
    println!("\nwithin a 10-tick deadline, {} tasks fit", by_10.n());
}
