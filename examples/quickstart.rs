//! Quickstart: schedule the paper's worked example through the unified
//! API and inspect it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use master_slave_tasking::prelude::*;
use mst_sim::replay_chain;

fn main() {
    // The chain of the paper's Figure 2: the master feeds processor 1
    // (c_1 = 2, w_1 = 3) which feeds processor 2 (c_2 = 3, w_2 = 5).
    // One registry serves every topology and algorithm in the workspace.
    let registry = SolverRegistry::with_defaults();
    let instance = Instance::new(Chain::paper_figure2(), 5);
    println!("instance: {instance}");

    // Optimal schedule for five tasks (Theorem 1), one solve() call.
    let solution = registry.solve("optimal", &instance).expect("figure-2 solves");
    println!("\n{solution}");
    println!("{}", solution.gantt(&instance.platform).expect("witnessed"));
    println!("makespan: {} ticks (the paper's Figure 2 shows 14)", solution.makespan());

    // Independently verify the four feasibility properties of
    // Definition 1 through the unified oracle ...
    assert!(verify(&instance, &solution).expect("checkable").is_feasible());
    println!("feasibility oracle: all four Definition-1 properties hold");

    // ... and actually execute it in the discrete-event simulator.
    let chain = instance.platform.as_chain().expect("chain instance");
    let schedule = solution.chain_schedule().expect("chain schedule");
    let trace = replay_chain(chain, schedule).expect("schedule must replay");
    println!("simulator replay: {} events, finished at t = {}", trace.len(), trace.end_time());

    // Utilization summary through the unified solution type.
    let per_proc = solution.tasks_per_processor(&instance.platform).expect("witnessed");
    for (k, count) in per_proc.iter().enumerate() {
        println!("processor {}: {count} task(s)", k + 1);
    }
    println!("throughput: {:.3} task/tick", solution.throughput());

    // The same instance through other registered solvers.
    for name in ["eager", "round-robin", "exact"] {
        let s = registry.solve(name, &instance).expect("chain solvers");
        println!("{name:>12}: makespan {}", s.makespan());
    }

    // The deadline variant (Section 7): how many tasks fit in 10 ticks?
    let by_10 = registry
        .solve_by_deadline("optimal", &Instance::new(chain.clone(), 100), 10)
        .expect("deadline solve");
    println!("\nwithin a 10-tick deadline, {} tasks fit", by_10.n());
}
