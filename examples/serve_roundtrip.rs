//! Serve the solver API over HTTP and talk to it — in one process.
//!
//! Starts `mst-serve` on an ephemeral port with a config-driven
//! registry set (an overlay solver on the default registry plus a
//! pinned `"lean"` tenant registry), round-trips a `/solve` for the
//! paper's Figure-2 chain, solves through the tenant registry, fetches
//! an `exact` general-tree witness, sweeps 500 generated instances
//! through `/batch`, prints the live `/metrics`, then shuts down
//! gracefully.
//!
//! ```text
//! cargo run --release --example serve_roundtrip
//! ```

use master_slave_tasking::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: example\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("receive");
    reply.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or(reply)
}

fn main() {
    // A config-driven registry set, exactly as `mst serve
    // --solvers-config` would load it from a file.
    let registries = RegistrySet::parse(
        r#"{
            "default": {"solvers": [{"solver": "random", "name": "random-7", "seed": 7}]},
            "registries": {
                "lean": {"base": "empty", "solvers": [
                    {"solver": "optimal"},
                    {"solver": "alias", "name": "best", "target": "optimal"}
                ]}
            }
        }"#,
    )
    .expect("valid registry config");
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        registries: Some(registries),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run().expect("server run"));
    println!("serving on http://{addr}");

    // One instance, verified by the oracle before it comes back.
    let solve = request(
        addr,
        "POST",
        "/solve",
        r#"{"platform": "chain\n2 3\n3 5\n", "tasks": 5, "verify": true}"#,
    );
    println!("\nPOST /solve (Figure 2, 5 tasks):\n{solve}");
    assert!(solve.contains("\"makespan\":14"), "Figure 2 optimum is 14");
    assert!(solve.contains("\"feasible\":true"), "oracle-verified");

    // The same solve pinned to the lean tenant registry, by alias.
    let tenant = request(
        addr,
        "POST",
        "/solve",
        r#"{"platform": "chain\n2 3\n3 5\n", "tasks": 5, "solver": "best",
            "registry": "lean", "verify": true}"#,
    );
    println!("\nPOST /solve (registry \"lean\", solver alias \"best\"):\n{tenant}");
    assert!(tenant.contains("\"makespan\":14"), "tenant registry solves identically");

    // An exact general-tree solve: the witness is a full tree schedule.
    let tree = request(
        addr,
        "POST",
        "/solve",
        r#"{"platform": "tree\nnode 0 1 9\nnode 1 1 3\nnode 1 1 3\n", "tasks": 4,
            "solver": "exact", "verify": true}"#,
    );
    println!("\nPOST /solve (exact on a general tree):\n{tree}");
    assert!(tree.contains("\"repr\":\"tree\""), "tree witnesses travel on the wire");

    // A 500-instance sweep through the pooled batch engine.
    let batch = request(
        addr,
        "POST",
        "/batch",
        r#"{"generate": {"kind": "spider", "count": 500, "size": 4, "tasks": 8},
            "verify": true}"#,
    );
    println!("\nPOST /batch (500 spiders):\n{batch}");

    let metrics = request(addr, "GET", "/metrics", "");
    println!("\nGET /metrics:\n{metrics}");

    handle.shutdown();
    let report = runner.join().expect("runner");
    println!(
        "\nshut down: {} connections, {} requests, {} instances solved",
        report.connections, report.requests, report.solved
    );
}
