//! A SETI@home-style campaign: a volunteer pool modelled as a spider.
//!
//! The paper's introduction motivates the problem with volunteer
//! computing (SETI@home, the Mersenne prime search): a master holds a
//! batch of identical work units and volunteers sit behind links of very
//! different speeds. This example builds a bimodal volunteer pool,
//! schedules a batch optimally, and compares against the demand-driven
//! dispatchers a deployed master would otherwise use — optimal and
//! dispatchers alike resolved from the one solver registry.
//!
//! ```text
//! cargo run --release --example volunteer_campaign
//! ```

use master_slave_tasking::prelude::*;
use mst_schedule::metrics;

fn main() {
    let registry = SolverRegistry::with_defaults();
    // 6 volunteer sites; a quarter have fast dedicated machines.
    let pool =
        GeneratorConfig::new(HeterogeneityProfile::Bimodal { fast_pct: 25 }, 2003).spider(6, 1, 3);
    println!("volunteer pool:\n{pool}");

    let batch = 40;
    let instance = Instance::new(pool.clone(), batch);
    let optimal = registry.solve("optimal", &instance).expect("spider solves");
    assert!(verify(&instance, &optimal).expect("checkable").is_feasible());
    let makespan = optimal.makespan();
    println!("optimal (clairvoyant) makespan for {batch} work units: {makespan} ticks");

    let m = metrics::spider_metrics(&pool, optimal.spider_schedule().expect("spider schedule"));
    println!(
        "master out-port busy {:.0}% of the time; work units per site: {:?}",
        100.0 * m.master_port_utilization(),
        m.tasks_per_leg
    );

    println!("\ndemand-driven dispatchers on the same pool:");
    for dispatcher in ["eager", "bandwidth-centric", "round-robin"] {
        let s = registry.solve(dispatcher, &instance).expect("dispatcher solves");
        assert!(verify(&instance, &s).expect("checkable").is_feasible());
        println!(
            "  {dispatcher}: makespan {} ticks ({:+.1}% vs optimal)",
            s.makespan(),
            100.0 * (s.makespan() - makespan) as f64 / makespan as f64
        );
    }

    // How big a batch fits before the nightly deadline?
    let deadline = makespan + 20;
    let open_ended = Instance::new(pool, 10_000);
    let s = registry.solve_by_deadline("optimal", &open_ended, deadline).expect("deadline solves");
    println!(
        "\nif the campaign must end by t = {deadline}, at most {} work units can be finished",
        s.n()
    );
}
