//! # master-slave-tasking — facade crate
//!
//! A production-oriented Rust reproduction of Pierre-François Dutot,
//! *"Master-slave Tasking on Heterogeneous Processors"*, IPPS 2003.
//!
//! The workspace implements the paper's optimal scheduling algorithms for
//! independent identical tasks on heterogeneous one-port platforms:
//!
//! * the backward-greedy **chain** algorithm (optimal makespan, `O(n p^2)`),
//! * its **deadline (`T_lim`) variant** (maximum task count by a deadline),
//! * the **fork-graph** substrate of Beaumont et al. (IPDPS 2002),
//! * the **spider** algorithm combining both (optimal, polynomial),
//! * exhaustive and heuristic **baselines**, a discrete-event **simulator**
//!   and a **tree-covering** extension,
//! * a fail-closed **verification gate** — an independent reference
//!   simulator, a bounded model checker and a differential fuzzer
//!   ([`mst_verify`], re-exported as [`verify`]),
//! * a dependency-free **observability** layer — request-lifecycle span
//!   traces, log-linear latency histograms and Prometheus text
//!   exposition ([`mst_obs`], re-exported as [`obs`]), surfaced live by
//!   the server's `/metrics`, `/trace` and `/trace/slow` endpoints and
//!   the `mst top` terminal view.
//!
//! Since the unified-API redesign, the primary public surface is
//! [`mst_api`] (re-exported as [`api`]): any topology, any algorithm,
//! one `solve()` call, one feasibility oracle, and a parallel
//! [`Batch`](mst_api::Batch) engine for instance sweeps — served over
//! HTTP by [`mst_serve`] (re-exported as [`serve`]):
//!
//! ```
//! use master_slave_tasking::prelude::*;
//!
//! // The worked example of the paper's Figure 2, via the unified API.
//! let registry = SolverRegistry::with_defaults();
//! let instance = Instance::new(Chain::paper_figure2(), 5);
//! let solution = registry.solve("optimal", &instance).unwrap();
//! assert_eq!(solution.makespan(), 14);
//! assert!(verify(&instance, &solution).unwrap().is_feasible());
//! ```
//!
//! The per-topology entry points remain available and unchanged:
//!
//! ```
//! use master_slave_tasking::prelude::*;
//!
//! let chain = Chain::paper_figure2();
//! let schedule = schedule_chain(&chain, 5);
//! assert_eq!(schedule.makespan(), 14);
//! ```

#![forbid(unsafe_code)]

pub use mst_api as api;
pub use mst_baselines as baselines;
pub use mst_core as core_algorithm;
pub use mst_fork as fork;
pub use mst_obs as obs;
pub use mst_platform as platform;
pub use mst_schedule as schedule;
pub use mst_serve as serve;
pub use mst_sim as sim;
pub use mst_spider as spider;
pub use mst_store as store;
pub use mst_tree as tree;
pub use mst_verify as verify;

/// Convenient glob import bringing the most common items into scope.
///
/// The unified API (`Platform`, `Instance`, `SolverRegistry`, `Solution`,
/// `Batch`, `verify`) comes first; the historical per-topology entry
/// points stay exported so existing code keeps compiling.
pub mod prelude {
    pub use mst_api::{
        verify, AdmissionError, Batch, BatchSummary, CacheKey, CanonicalInstance, ConfigError,
        ExecPolicy, Instance, Platform, RegistrySet, ScheduleRepr, Solution, SolutionCache,
        SolveError, Solver, SolverRegistry, TenantExec, TenantLimits, TopologyKind,
    };
    pub use mst_core::{schedule_chain, schedule_chain_by_deadline};
    pub use mst_obs::{HistSnapshot, Histogram, Kernel, Obs, Stage, Trace};
    pub use mst_platform::{
        Chain, Fork, GeneratorConfig, HeterogeneityProfile, NodeId, Processor, Spider, Time, Tree,
    };
    pub use mst_schedule::{ChainSchedule, CommVector, SpiderSchedule, TreeSchedule};
    pub use mst_serve::{ServeConfig, Server, ServerHandle};
    pub use mst_sim::{run_parallel, shared_pool, CancelToken, WorkerPool};
    pub use mst_spider::{schedule_spider, schedule_spider_by_deadline};
    pub use mst_store::{FileStore, MemoryStore, Record, StoreBackend};
}
