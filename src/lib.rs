//! # master-slave-tasking — facade crate
//!
//! A production-oriented Rust reproduction of Pierre-François Dutot,
//! *"Master-slave Tasking on Heterogeneous Processors"*, IPPS 2003.
//!
//! The workspace implements the paper's optimal scheduling algorithms for
//! independent identical tasks on heterogeneous one-port platforms:
//!
//! * the backward-greedy **chain** algorithm (optimal makespan, `O(n p^2)`),
//! * its **deadline (`T_lim`) variant** (maximum task count by a deadline),
//! * the **fork-graph** substrate of Beaumont et al. (IPDPS 2002),
//! * the **spider** algorithm combining both (optimal, polynomial),
//! * exhaustive and heuristic **baselines**, a discrete-event **simulator**
//!   and a **tree-covering** extension.
//!
//! This crate re-exports the public APIs of every member crate so that a
//! downstream user can depend on a single package:
//!
//! ```
//! use master_slave_tasking::prelude::*;
//!
//! // The worked example of the paper's Figure 2.
//! let chain = Chain::paper_figure2();
//! let schedule = schedule_chain(&chain, 5);
//! assert_eq!(schedule.makespan(), 14);
//! ```

pub use mst_baselines as baselines;
pub use mst_core as core_algorithm;
pub use mst_fork as fork;
pub use mst_platform as platform;
pub use mst_schedule as schedule;
pub use mst_sim as sim;
pub use mst_spider as spider;
pub use mst_tree as tree;

/// Convenient glob import bringing the most common items into scope.
pub mod prelude {
    pub use mst_core::{schedule_chain, schedule_chain_by_deadline};
    pub use mst_platform::{
        Chain, Fork, GeneratorConfig, HeterogeneityProfile, NodeId, Processor, Spider, Time, Tree,
    };
    pub use mst_schedule::{ChainSchedule, CommVector, SpiderSchedule};
    pub use mst_spider::{schedule_spider, schedule_spider_by_deadline};
}
