//! The batch engine at fleet scale: `Batch::solve_all` must sweep a
//! four-digit instance set across cores, agree with serial solving
//! bit-for-bit, and hand back solutions the oracle accepts.

use master_slave_tasking::prelude::*;

/// A reproducible mixed fleet: chains, forks and spiders over every
/// heterogeneity profile.
fn fleet(count: u64) -> Vec<Instance> {
    (0..count)
        .map(|seed| {
            let kind = [TopologyKind::Chain, TopologyKind::Fork, TopologyKind::Spider]
                [(seed % 3) as usize];
            Instance::generate(
                kind,
                HeterogeneityProfile::ALL[(seed % 5) as usize],
                seed,
                1 + (seed % 5) as usize,
                1 + (seed % 9) as usize,
            )
        })
        .collect()
}

#[test]
fn thousand_instance_sweep_solves_and_verifies() {
    let instances = fleet(1000);
    let batch = Batch::new(SolverRegistry::with_defaults());
    let results = batch.solve_all(&instances);
    assert_eq!(results.len(), 1000);

    let summary = BatchSummary::of(&results);
    assert_eq!(summary.solved, 1000, "no instance may fail: {summary}");
    assert_eq!(summary.failed, 0);
    assert_eq!(
        summary.total_tasks,
        instances.iter().map(|i| i.tasks).sum::<usize>(),
        "makespan solving schedules every task"
    );

    for (instance, result) in instances.iter().zip(&results) {
        let solution = result.as_ref().expect("solved");
        assert_eq!(solution.n(), instance.tasks, "{instance}");
        assert!(
            verify(instance, solution).expect("checkable").is_feasible(),
            "infeasible solution for {instance}"
        );
    }
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let instances = fleet(300);
    let batch = Batch::new(SolverRegistry::with_defaults());
    let parallel = batch.solve_all(&instances);
    for (instance, result) in instances.iter().zip(parallel) {
        let serial = batch.registry().solve("optimal", instance);
        assert_eq!(result, serial, "{instance}");
    }
}

#[test]
fn deadline_sweep_respects_the_deadline_everywhere() {
    let instances = fleet(400);
    let batch = Batch::new(SolverRegistry::with_defaults());
    for deadline in [0, 7, 19] {
        for (instance, result) in
            instances.iter().zip(batch.solve_all_by_deadline(&instances, deadline))
        {
            let solution = result.expect("deadline solves");
            assert!(solution.makespan() <= deadline, "{instance}");
            assert!(solution.n() <= instance.tasks, "{instance}");
            assert!(verify(instance, &solution).expect("checkable").is_feasible());
        }
    }
}

#[test]
fn batch_runs_any_registered_solver() {
    // A chain-only fleet through a non-default solver.
    let instances: Vec<Instance> = (0..200u64)
        .map(|seed| {
            Instance::generate(
                TopologyKind::Chain,
                HeterogeneityProfile::ALL[(seed % 5) as usize],
                seed,
                1 + (seed % 6) as usize,
                1 + (seed % 8) as usize,
            )
        })
        .collect();
    let registry = SolverRegistry::with_defaults();
    let optimal: Vec<i64> = Batch::new(registry.clone())
        .solve_all(&instances)
        .into_iter()
        .map(|r| r.expect("solves").makespan())
        .collect();
    let eager = Batch::new(registry).with_solver("eager");
    assert_eq!(eager.solver(), "eager");
    for ((instance, result), opt) in instances.iter().zip(eager.solve_all(&instances)).zip(optimal)
    {
        let solution = result.expect("eager solves");
        assert!(solution.makespan() >= opt, "eager beat optimal on {instance}");
        assert!(verify(instance, &solution).expect("checkable").is_feasible());
    }
}
