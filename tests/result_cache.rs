//! The canonical-form solution cache, end to end:
//!
//! * **soundness of canonicalization** — for every registered solver and
//!   every topology, solving the canonical instance and restoring the
//!   result (rescale + leg/node remap) yields the same makespan and
//!   task count as solving the instance directly, and the restored
//!   witness passes the [`verify`] oracle against the *original*
//!   instance — including degenerate scale factors (0 tasks, one
//!   processor) and the deadline (`T_lim`) path;
//! * **memoisation** — rescaled copies of one instance share a cache
//!   entry through [`mst_api::cache::solve_through`];
//! * **wire** — [`BatchSummary`] (now carrying `cache_hits`) round-trips
//!   the summary codec losslessly;
//! * **persistence** — a `--store` server killed and restarted serves
//!   its **first** repeated `/batch` with a full cache-hit rate, and
//!   `GET /history` returns the prior records.

use master_slave_tasking::api::cache::solve_through;
use master_slave_tasking::api::canon::level_for;
use master_slave_tasking::api::wire::{summary_from_json, summary_to_json, Json};
use master_slave_tasking::prelude::*;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// The platform with every communication and work time multiplied by
/// `g` — an instance the canonicalizer must map back onto the original.
fn scale_platform(platform: &Platform, g: Time) -> Platform {
    let proc = |p: &Processor| Processor::new(p.comm * g, p.work * g).expect("positive times");
    match platform {
        Platform::Chain(chain) => {
            Chain::new(chain.processors().iter().map(proc).collect()).unwrap().into()
        }
        Platform::Fork(fork) => Fork::new(fork.slaves().iter().map(proc).collect()).unwrap().into(),
        Platform::Spider(spider) => Spider::new(
            spider
                .legs()
                .iter()
                .map(|leg| Chain::new(leg.processors().iter().map(proc).collect()).unwrap())
                .collect(),
        )
        .unwrap()
        .into(),
        Platform::Tree(tree) => Tree::from_triples(
            &(1..=tree.len())
                .map(|id| {
                    let node = tree.node(id);
                    (node.parent, node.comm * g, node.work * g)
                })
                .collect::<Vec<_>>(),
        )
        .unwrap()
        .into(),
    }
}

/// Asserts the canonical-solve round trip for one (instance, solver,
/// deadline) triple: same outcome as the direct solve, same makespan
/// and task count, and a restored witness the oracle accepts.
fn assert_round_trip(instance: &Instance, solver: &str, deadline: Option<Time>) {
    let registry = SolverRegistry::global();
    let direct = match deadline {
        Some(t) => registry.solve_by_deadline(solver, instance, t),
        None => registry.solve(solver, instance),
    };
    let canon = CanonicalInstance::of(instance, solver, deadline);
    let via_canon = match (deadline, canon.deadline()) {
        (Some(_), Some(t)) => registry.solve_by_deadline(solver, canon.instance(), t),
        _ => registry.solve(solver, canon.instance()),
    };
    match (direct, via_canon) {
        (Ok(direct), Ok(canonical)) => {
            let restored = canon.restore(&canonical);
            assert_eq!(
                restored.makespan(),
                direct.makespan(),
                "{solver} (level {:?}, deadline {deadline:?}) on {}",
                level_for(solver),
                instance.platform
            );
            assert_eq!(restored.n(), direct.n(), "{solver} on {}", instance.platform);
            if restored.schedule().is_some() {
                let report = verify(instance, &restored)
                    .unwrap_or_else(|e| panic!("{solver} restored witness rejected: {e}"));
                assert!(
                    report.is_feasible(),
                    "{solver} restored witness infeasible on {} ({} violations)",
                    instance.platform,
                    report.violations.len()
                );
            }
        }
        (Err(direct), Err(canonical)) => {
            assert_eq!(direct.to_string(), canonical.to_string(), "{solver} error drift");
        }
        (direct, canonical) => panic!(
            "{solver} diverges on {}: direct {direct:?} vs canonical {canonical:?}",
            instance.platform
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every registered solver, every topology: a uniformly rescaled
    /// instance solves identically through its canonical form.
    #[test]
    fn every_solver_round_trips_through_canonical_form(
        seed in 0u64..1_000_000,
        scale in 1i64..6,
        tasks in 0usize..10,
    ) {
        let kind = TopologyKind::ALL[(seed % 4) as usize];
        let profile = HeterogeneityProfile::ALL[(seed % 5) as usize];
        let size = 1 + (seed % 4) as usize;
        let base = Instance::generate(kind, profile, seed, size, tasks);
        let scaled = Instance::new(scale_platform(&base.platform, scale), tasks);
        for solver in SolverRegistry::global().names() {
            assert_round_trip(&scaled, solver, None);
        }
    }

    /// The deadline (`T_lim`) path: canonical deadlines divide by the
    /// extracted scale, and the restored plan matches the direct one.
    #[test]
    fn deadline_solves_round_trip_through_canonical_form(
        seed in 0u64..1_000_000,
        scale in 1i64..6,
        deadline in 0i64..60,
    ) {
        let kind = TopologyKind::ALL[(seed % 4) as usize];
        let profile = HeterogeneityProfile::ALL[(seed % 5) as usize];
        let base = Instance::generate(kind, profile, seed, 1 + (seed % 3) as usize, 8);
        let scaled = Instance::new(scale_platform(&base.platform, scale), 8);
        for solver in SolverRegistry::global().names() {
            assert_round_trip(&scaled, solver, Some(deadline * scale));
        }
    }

    /// The `/batch` summary codec (now carrying `cache_hits`) is
    /// lossless through serialize → print → parse → decode.
    #[test]
    fn batch_summaries_round_trip_the_wire(
        counts in (0usize..5000, 0usize..5000, 0usize..5000),
        tasks in 0usize..100_000,
        makespans in (0i64..1_000_000, 0i64..10_000),
    ) {
        let (solved, failed, cancelled) = counts;
        let (total_makespan, max_makespan) = makespans;
        let mut summary = BatchSummary::of(&[]);
        summary.solved = solved;
        summary.failed = failed;
        summary.cancelled = cancelled;
        summary.total_tasks = tasks;
        summary.total_makespan = total_makespan;
        summary.max_makespan = max_makespan;
        summary.cache_hits = solved.min(997);
        let text = summary_to_json(&summary).to_string();
        let back = summary_from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, summary);
    }
}

/// Regression: a covered-tree solution carries its spider cover as the
/// verification platform, and restoring from the canonical form must
/// rescale that cover *up* (multiply by the extracted scale) — an early
/// version divided instead, collapsing the cover to zero-cost
/// processors the oracle rejected.
#[test]
fn covered_tree_solutions_rescale_their_recorded_cover() {
    let tree = Tree::from_triples(&[(0, 10, 15), (0, 10, 15), (0, 10, 15), (2, 10, 15)]).unwrap();
    let instance = Instance::new(tree, 6);
    let canon = CanonicalInstance::of(&instance, "optimal", None);
    assert_eq!(canon.scale(), 5, "gcd of 10 and 15");
    let solved = SolverRegistry::global().solve("optimal", canon.instance()).unwrap();
    let restored = canon.restore(&solved);
    let cover = restored.sub_platform().expect("tree solved through a spider cover");
    assert!(
        cover.legs().iter().all(|leg| leg.processors().iter().all(|p| p.comm == 10)),
        "cover communication times must be back at the original scale"
    );
    assert_eq!(restored.makespan(), solved.makespan() * 5);
    assert!(verify(&instance, &restored).unwrap().is_feasible());
}

#[test]
fn degenerate_instances_round_trip_through_canonical_form() {
    let registry = SolverRegistry::global();
    // 0 tasks, a single processor, and both at once — the degenerate
    // scale factors the canonicalizer must not trip over.
    let single = Instance::new(Platform::parse("chain\n6 9\n").unwrap(), 0);
    let one_proc = Instance::new(Platform::parse("chain\n6 9\n").unwrap(), 4);
    let zero_tasks = Instance::new(Platform::parse("spider\nleg 4 6 2 8\nleg 2 2\n").unwrap(), 0);
    let tiny_tree = Instance::new(Platform::parse("tree\nnode 0 3 3\n").unwrap(), 2);
    for instance in [&single, &one_proc, &zero_tasks, &tiny_tree] {
        for solver in registry.names() {
            assert_round_trip(instance, solver, None);
            assert_round_trip(instance, solver, Some(0));
            assert_round_trip(instance, solver, Some(12));
        }
    }
}

#[test]
fn rescaled_instances_share_one_cache_entry() {
    let registry = SolverRegistry::global();
    let cache = SolutionCache::new(64);
    let base = Instance::new(Platform::parse("chain\n2 3\n3 5\n").unwrap(), 5);
    let tripled = Instance::new(scale_platform(&base.platform, 3), 5);

    let first = solve_through(&cache, registry, "optimal", &base, None).unwrap();
    assert!(!first.cache_hit);
    assert_eq!(first.solution.makespan(), 14);

    // The ×3 copy is the same canonical instance: a hit, restored to
    // the tripled scale, still oracle-approved.
    let second = solve_through(&cache, registry, "optimal", &tripled, None).unwrap();
    assert!(second.cache_hit, "rescaling must hit the same entry");
    assert_eq!(second.solution.makespan(), 42);
    assert!(verify(&tripled, &second.solution).unwrap().is_feasible());
    assert_eq!(cache.len(), 1);

    // Different solver, different entry; errors are never cached.
    let eager = solve_through(&cache, registry, "eager", &base, None).unwrap();
    assert!(!eager.cache_hit);
    assert_eq!(cache.len(), 2);
    assert!(solve_through(&cache, registry, "nope", &base, None).is_err());
    assert_eq!(cache.len(), 2);
}

// ---------------------------------------------------------------------------
// Persistence: kill a --store server, restart it on the same log, and
// the first repeated sweep is answered from the warm-started cache.
// ---------------------------------------------------------------------------

fn start_store_server(
    store: &std::path::Path,
) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<mst_serve::ServeReport>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        store: Some(store.display().to_string()),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port with store");
    let addr = server.addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, runner)
}

fn request(addr: SocketAddr, raw: String) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read response");
    let reply = String::from_utf8_lossy(&reply).to_string();
    let status: u16 = reply.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, reply.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(addr, format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn int_field(body: &str, key: &str) -> i64 {
    Json::parse(body)
        .unwrap()
        .get(key)
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("no integer {key} in {body}"))
}

#[test]
fn restarted_store_server_hits_its_warm_cache() {
    let path =
        std::env::temp_dir().join(format!("mst-result-cache-restart-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let sweep = r#"{"generate": {"kind": "chain", "count": 20, "size": 3, "tasks": 12}}"#;
    let one = r#"{"platform": "chain\n4 6\n6 10\n", "tasks": 7, "verify": true}"#;

    // First life: a cold sweep misses, its repeat fully hits.
    let (addr, handle, runner) = start_store_server(&path);
    let (status, body) = post(addr, "/batch", sweep);
    assert_eq!(status, 200, "{body}");
    assert_eq!(int_field(&body, "cache_hits"), 0, "cold cache: {body}");
    assert_eq!(int_field(&body, "solved"), 20, "{body}");
    let (status, body) = post(addr, "/batch", sweep);
    assert_eq!(status, 200, "{body}");
    assert_eq!(int_field(&body, "cache_hits"), 20, "warm repeat: {body}");
    let (_, body) = post(addr, "/solve", one);
    assert!(!body.contains("\"cached\""), "first solve is a miss: {body}");
    handle.shutdown();
    runner.join().unwrap();

    // Second life, same log: /history has the prior records and the
    // FIRST repeated requests are answered from the warm-started cache.
    let (addr, handle, runner) = start_store_server(&path);
    let (status, body) = get(addr, "/history?limit=5");
    assert_eq!(status, 200, "{body}");
    assert_eq!(int_field(&body, "total"), 21, "20 sweep records + 1 solve: {body}");
    assert_eq!(int_field(&body, "count"), 5, "{body}");
    let (status, body) = post(addr, "/batch", sweep);
    assert_eq!(status, 200, "{body}");
    assert_eq!(int_field(&body, "cache_hits"), 20, "warm restart: {body}");
    let (status, body) = post(addr, "/solve", one);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"cached\":true"), "warm restart solve: {body}");
    assert!(body.contains("\"feasible\":true"), "cached witness verifies: {body}");

    // The warm hits appended nothing new, and the metrics say so.
    let (_, body) = get(addr, "/metrics");
    assert_eq!(int_field(&body, "store_records"), 21, "{body}");
    let tenants = Json::parse(&body).unwrap();
    let default = tenants.get("tenants").and_then(|t| t.get("default")).expect("default tenant");
    assert_eq!(default.get("cache_hits_total").and_then(Json::as_i64), Some(21), "{body}");
    assert_eq!(default.get("store_records").and_then(Json::as_i64), Some(21), "{body}");
    handle.shutdown();
    runner.join().unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn history_endpoint_requires_a_store() {
    let server = Server::bind(ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() })
        .expect("bind");
    let addr = server.addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run().expect("run"));
    let (status, body) = get(addr, "/history");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("no-store"), "{body}");
    handle.shutdown();
    runner.join().unwrap();
}
