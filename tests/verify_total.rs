//! Total verification: every `(registered solver × topology)` pair
//! either errors with a **typed** `SolveError` up front or produces a
//! solution the `verify()` oracle accepts — never an unverifiable
//! answer, never an `Unsupported`-style hole. Plus proptest round-trips
//! for the tree-schedule wire encoding.

use master_slave_tasking::api::wire::{
    solution_to_json, tree_schedule_from_json, tree_schedule_to_json, Json,
};
use master_slave_tasking::prelude::*;
use mst_schedule::check_tree;
use mst_tree::tree_schedule_from_sequence;
use proptest::prelude::*;

/// Exhaustive sweep of the acceptance criterion: every solver name in
/// the default registry × every generator topology (including `exact`
/// on general trees) yields a feasible report whose independently
/// recomputed makespan matches the solution's claim.
#[test]
fn every_registry_solver_verifies_on_every_topology() {
    let registry = SolverRegistry::global();
    let mut verified = 0usize;
    let mut rejected = 0usize;
    for seed in 0..6u64 {
        for kind in TopologyKind::ALL {
            // Small instances: `exact` is exponential in the task count.
            let instance = Instance::generate(
                kind,
                HeterogeneityProfile::ALL[(seed % 5) as usize],
                seed,
                2 + (seed % 3) as usize,
                1 + (seed % 4) as usize,
            );
            for solver in registry.solvers() {
                match solver.solve(&instance) {
                    Ok(solution) => {
                        let report = verify(&instance, &solution).unwrap_or_else(|e| {
                            panic!("{} on {kind}: unverifiable solution: {e}", solver.name())
                        });
                        report.assert_feasible();
                        assert_eq!(
                            report.makespan,
                            solution.makespan(),
                            "{} on {kind} (seed {seed}): oracle recomputed a different makespan",
                            solver.name()
                        );
                        verified += 1;
                    }
                    // The only permitted refusals are typed capability
                    // errors reported before any work happens.
                    Err(SolveError::UnsupportedTopology { .. }) => rejected += 1,
                    Err(e) => {
                        panic!("{} on {kind} (seed {seed}): unexpected error {e}", solver.name())
                    }
                }
            }
        }
    }
    assert!(verified > 0 && rejected > 0, "sweep exercised both outcomes");

    // Deadline (T_lim) variants are total in the same sense.
    for kind in TopologyKind::ALL {
        let instance = Instance::generate(kind, HeterogeneityProfile::ALL[0], 3, 3, 4);
        for solver in registry.solvers() {
            match solver.solve_by_deadline(&instance, 12) {
                Ok(solution) => {
                    let report = verify(&instance, &solution).expect("verifiable");
                    report.assert_feasible();
                    assert_eq!(report.makespan, solution.makespan(), "{}", solver.name());
                    assert!(solution.makespan() <= 12);
                }
                Err(
                    SolveError::UnsupportedTopology { .. } | SolveError::DeadlineUnsupported { .. },
                ) => {}
                Err(e) => panic!("{} on {kind}: unexpected error {e}", solver.name()),
            }
        }
    }
}

/// `exact` on general trees — the representative case the redesign
/// closes — is witnessed, optimal, and strictly better than covering
/// when the tree needs both branches of an interior fork.
#[test]
fn exact_tree_witnesses_are_checked_not_trusted() {
    let registry = SolverRegistry::global();
    for seed in 0..10u64 {
        let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
        let tree = g.tree(2 + (seed % 4) as usize);
        let instance = Instance::new(tree.clone(), 1 + (seed % 4) as usize);
        let solution = registry.solve("exact", &instance).unwrap();
        assert!(solution.is_witnessed(), "seed {seed}");
        assert_eq!(solution.n(), instance.tasks);
        assert_eq!(
            solution.makespan(),
            mst_baselines::optimal_tree_makespan(&tree, instance.tasks),
            "the witness achieves the true optimum (seed {seed})"
        );
        let report = verify(&instance, &solution).unwrap();
        report.assert_feasible();
        assert_eq!(report.makespan, solution.makespan());
        // No solver may beat the exhaustive optimum.
        for solver in registry.supporting(TopologyKind::Tree) {
            if let Ok(other) = solver.solve(&instance) {
                assert!(
                    other.makespan() >= solution.makespan(),
                    "{} beat exact on seed {seed}",
                    solver.name()
                );
            }
        }
    }
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    // (parent-picker, c, w) triples; parent-picker selects uniformly
    // among valid (earlier) ids, so arbitrary branching shapes appear.
    prop::collection::vec((0usize..=64, 1i64..=7, 1i64..=7), 1..=6).prop_map(|raw| {
        let triples: Vec<(usize, Time, Time)> =
            raw.iter().enumerate().map(|(idx, &(pick, c, w))| ((pick % (idx + 1)), c, w)).collect();
        Tree::from_triples(&triples).expect("parents precede children by construction")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lossless wire round-trip for arbitrary feasible tree witnesses.
    #[test]
    fn tree_schedule_wire_round_trip(
        tree in tree_strategy(),
        picks in prop::collection::vec(0usize..=64, 0..=8),
    ) {
        let sequence: Vec<usize> = picks.iter().map(|p| 1 + p % tree.len()).collect();
        let schedule = tree_schedule_from_sequence(&tree, &sequence);
        check_tree(&tree, &schedule).assert_feasible();
        let text = tree_schedule_to_json(&schedule).to_string();
        let back = tree_schedule_from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(&back, &schedule, "decode(encode(s)) != s");
        // The decoded witness still passes the oracle with the same
        // independently recomputed makespan.
        let report = check_tree(&tree, &back);
        prop_assert!(report.is_feasible());
        prop_assert_eq!(report.makespan, schedule.makespan());
    }

    /// Solutions of every witnessing representation survive the wire:
    /// the encoded makespan/task counts match, and tree schedules decode
    /// to the identical witness.
    #[test]
    fn solution_encodings_expose_witnesses(
        tree in tree_strategy(),
        n in 1usize..=4,
    ) {
        let instance = Instance::new(tree, n);
        let solution = SolverRegistry::global().solve("exact", &instance).unwrap();
        let json = solution_to_json(&solution);
        prop_assert_eq!(json.get("makespan").and_then(Json::as_i64), Some(solution.makespan()));
        prop_assert_eq!(json.get("scheduled").and_then(Json::as_i64), Some(n as i64));
        let decoded = tree_schedule_from_json(json.get("schedule").unwrap()).unwrap();
        prop_assert_eq!(Some(&decoded), solution.tree_schedule());
    }
}
