//! Integration tests for the fail-closed oracle gate (`mst-verify`).
//!
//! The gate's whole value is that the Definition-1 oracle and the
//! independent reference simulator are *two* judges: these tests pin
//! the contract between them at the workspace level — agreement on real
//! witnesses, agreement on sabotaged ones, verdicts that depend only on
//! the schedule (not on how its tasks happen to be listed), and the
//! bounded model check / fuzzer running end to end through the facade.

use master_slave_tasking::prelude::*;
use master_slave_tasking::schedule::{check_tree, mutate};
use master_slave_tasking::verify::{
    check_model, run_fuzz, simulate, tree_witness, FuzzConfig, ModelBounds,
};
use proptest::prelude::*;

/// Deterministic Fisher–Yates driven by a splitmix step, so the
/// relabeling property draws arbitrary permutations from one seed.
fn shuffled<T: Clone>(items: &[T], mut seed: u64) -> Vec<T> {
    let mut out = items.to_vec();
    for i in (1..out.len()).rev() {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        out.swap(i, j);
    }
    out
}

/// A solved tree witness for a seeded random instance of any topology.
fn solved_witness(kind_idx: usize, size: usize, tasks: usize, seed: u64) -> (Tree, TreeSchedule) {
    let kind = TopologyKind::ALL[kind_idx % TopologyKind::ALL.len()];
    let profile = HeterogeneityProfile::ALL[seed as usize % HeterogeneityProfile::ALL.len()];
    let instance = Instance::generate(kind, profile, seed, size, tasks);
    let registry = SolverRegistry::with_defaults();
    let solution = registry.solve("exact", &instance).expect("exact solves everything");
    tree_witness(&instance.platform, &solution).expect("exact always carries a witness")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Simulator verdicts are a function of the schedule, not of task
    /// labels: permuting the order tasks are handed to
    /// `TreeSchedule::new` (which is exactly relabeling the tasks —
    /// every per-task field travels with its task) never changes the
    /// accept/reject verdict or the makespan, on healthy witnesses and
    /// mutated ones alike.
    #[test]
    fn simulator_verdict_is_invariant_under_task_relabeling(
        kind_idx in 0usize..4,
        size in 1usize..=4,
        tasks in 1usize..=5,
        seed in 0u64..500,
        mutation_idx in 0usize..16,
        perm_seed in 0u64..1000,
    ) {
        let (tree, witness) = solved_witness(kind_idx, size, tasks, seed);
        let catalog = mutate::catalog(witness.n());
        let schedule = if catalog.is_empty() {
            witness
        } else {
            // Half the draws keep the healthy witness, half sabotage it.
            match catalog.get(mutation_idx) {
                Some(&m) => mutate::tree(&witness, m).unwrap_or(witness),
                None => witness,
            }
        };
        let relabeled = TreeSchedule::new(shuffled(schedule.tasks(), perm_seed));
        let a = simulate(&tree, &schedule);
        let b = simulate(&tree, &relabeled);
        prop_assert_eq!(a.accepted(), b.accepted());
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.rejections.len(), b.rejections.len());
    }

    /// The two independent judges agree on every mutation of every
    /// witness — the core differential property, run at the workspace
    /// level across all four topologies.
    #[test]
    fn oracle_and_simulator_agree_on_mutated_witnesses(
        kind_idx in 0usize..4,
        size in 1usize..=3,
        tasks in 1usize..=4,
        seed in 500u64..800,
    ) {
        let (tree, witness) = solved_witness(kind_idx, size, tasks, seed);
        for m in mutate::catalog(witness.n()) {
            let Some(mutated) = mutate::tree(&witness, m) else { continue };
            let oracle = check_tree(&tree, &mutated);
            let sim = simulate(&tree, &mutated);
            prop_assert_eq!(
                oracle.is_feasible(),
                sim.accepted(),
                "{} disagrees: oracle {:?} vs sim {:?}",
                m.name(),
                oracle,
                sim.rejections
            );
        }
    }
}

#[test]
fn healthy_witnesses_pass_both_judges_and_sabotage_fails_both() {
    let (tree, witness) = solved_witness(3, 3, 4, 7);
    assert!(check_tree(&tree, &witness).is_feasible());
    let sim = simulate(&tree, &witness);
    assert!(sim.accepted(), "{:?}", sim.rejections);
    assert_eq!(sim.makespan, witness.makespan());

    // Double-book the master's out-port: both judges must notice.
    if witness.n() >= 2 {
        let sabotaged =
            mutate::tree(&witness, mutate::Mutation::OverlapPort { a: 1, b: 2 }).unwrap();
        assert!(!check_tree(&tree, &sabotaged).is_feasible());
        assert!(!simulate(&tree, &sabotaged).accepted());
    }
}

#[test]
fn model_check_holds_at_small_bounds_through_the_facade() {
    let registry = SolverRegistry::with_defaults();
    let bounds = ModelBounds { max_procs: 2, max_tasks: 2, max_weight: 2 };
    let report = check_model(&registry, &bounds);
    assert!(report.ok(), "{:?}", report.violations);
    assert!(report.bnb_instances > 0);
    assert!(report.mutations > 0);
    assert!(report.to_json().contains("\"ok\":true"));
}

#[test]
fn fuzz_smoke_holds_through_the_facade() {
    let registry = SolverRegistry::with_defaults();
    let report = run_fuzz(&registry, &FuzzConfig { seed: 42, minutes: 0.01, corpus: None });
    assert!(report.ok(), "{:?}", report.violations);
    assert!(report.iterations > 0);
}
