//! API parity: the unified `SolverRegistry` surface must be a *zero-cost
//! rename* of the legacy per-crate entry points.
//!
//! For generated chains, forks and spiders:
//!
//! * every registry solver produces the same makespan (for the optimal
//!   algorithms: the same schedule) as the direct call it wraps;
//! * every witnessed `Solution` passes the unified `verify()` oracle;
//! * the deadline (`T_lim`) variants agree task-for-task.

use master_slave_tasking::prelude::*;
use mst_baselines::{eager_chain, master_only_chain, round_robin_chain};
use mst_core::schedule_chain_fast;
use mst_fork::{max_tasks_fork_by_deadline, schedule_fork};
use mst_sim::{simulate_online, OnlinePolicy};
use proptest::prelude::*;

fn registry() -> SolverRegistry {
    SolverRegistry::with_defaults()
}

fn chain_strategy(max_p: usize) -> impl Strategy<Value = Chain> {
    prop::collection::vec((1i64..=8, 1i64..=8), 1..=max_p)
        .prop_map(|pairs| Chain::from_pairs(&pairs).expect("positive pairs"))
}

fn fork_strategy(max_p: usize) -> impl Strategy<Value = Fork> {
    prop::collection::vec((1i64..=6, 1i64..=6), 1..=max_p)
        .prop_map(|pairs| Fork::from_pairs(&pairs).expect("positive pairs"))
}

fn spider_strategy() -> impl Strategy<Value = Spider> {
    prop::collection::vec(prop::collection::vec((1i64..=6, 1i64..=6), 1..=3), 1..=3).prop_map(
        |legs| {
            let refs: Vec<&[(Time, Time)]> = legs.iter().map(|l| l.as_slice()).collect();
            Spider::from_legs(&refs).expect("positive legs")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn chain_solvers_match_legacy_calls(
        chain in chain_strategy(6),
        n in 1usize..=10,
    ) {
        let registry = registry();
        let instance = Instance::new(chain.clone(), n);

        // The optimal wrappers return the *identical* schedule.
        let direct = schedule_chain(&chain, n);
        for solver in ["optimal", "chain-optimal"] {
            let solution = registry.solve(solver, &instance).expect("chain solves");
            prop_assert_eq!(solution.chain_schedule().expect("witnessed"), &direct);
            prop_assert!(verify(&instance, &solution).unwrap().is_feasible());
        }
        prop_assert_eq!(
            registry.solve("chain-fast", &instance).unwrap().chain_schedule().expect("witnessed"),
            &schedule_chain_fast(&chain, n)
        );

        // Heuristics agree makespan-for-makespan with the legacy calls.
        let legacy: [(&str, Time); 3] = [
            ("eager", eager_chain(&chain, n).makespan()),
            ("round-robin", round_robin_chain(&chain, n).makespan()),
            ("master-only", master_only_chain(&chain, n).makespan()),
        ];
        for (solver, expected) in legacy {
            let solution = registry.solve(solver, &instance).expect("heuristic solves");
            prop_assert_eq!(solution.makespan(), expected, "{}", solver);
            prop_assert!(verify(&instance, &solution).unwrap().is_feasible(), "{}", solver);
        }
    }

    #[test]
    fn chain_deadline_parity(
        chain in chain_strategy(5),
        cap in 1usize..=8,
        deadline in 0i64..=40,
    ) {
        let registry = registry();
        let instance = Instance::new(chain.clone(), cap);
        let direct = schedule_chain_by_deadline(&chain, cap, deadline);
        let solution = registry
            .solve_by_deadline("chain-optimal", &instance, deadline)
            .expect("deadline solves");
        prop_assert_eq!(solution.chain_schedule().expect("witnessed"), &direct);
        prop_assert!(verify(&instance, &solution).unwrap().is_feasible());
    }

    #[test]
    fn fork_solvers_match_legacy_calls(
        fork in fork_strategy(6),
        n in 1usize..=8,
    ) {
        let registry = registry();
        let instance = Instance::new(fork.clone(), n);
        let (direct_makespan, direct) = schedule_fork(&fork, n);
        for solver in ["optimal", "fork-optimal"] {
            let solution = registry.solve(solver, &instance).expect("fork solves");
            prop_assert_eq!(solution.makespan(), direct_makespan, "{}", solver);
            prop_assert_eq!(solution.spider_schedule().expect("witnessed"), &direct.schedule);
            prop_assert!(verify(&instance, &solution).unwrap().is_feasible(), "{}", solver);
        }
        // The spider algorithm on the equivalent one-node legs agrees on
        // the makespan (Theorem 3 subsumes the fork case).
        let via_spider = registry.solve("spider-optimal", &instance).expect("fork as spider");
        prop_assert_eq!(via_spider.makespan(), direct_makespan);
        prop_assert!(verify(&instance, &via_spider).unwrap().is_feasible());
    }

    #[test]
    fn fork_deadline_parity(
        fork in fork_strategy(5),
        cap in 1usize..=8,
        deadline in 0i64..=40,
    ) {
        let registry = registry();
        let instance = Instance::new(fork.clone(), cap);
        let direct = max_tasks_fork_by_deadline(&fork, cap, deadline);
        let solution = registry
            .solve_by_deadline("fork-optimal", &instance, deadline)
            .expect("deadline solves");
        prop_assert_eq!(solution.n(), direct.n());
        prop_assert_eq!(solution.spider_schedule().expect("witnessed"), &direct.schedule);
        prop_assert!(verify(&instance, &solution).unwrap().is_feasible());
    }

    #[test]
    fn spider_solvers_match_legacy_calls(
        spider in spider_strategy(),
        n in 1usize..=6,
    ) {
        let registry = registry();
        let instance = Instance::new(spider.clone(), n);
        let (direct_makespan, direct) = schedule_spider(&spider, n);
        for solver in ["optimal", "spider-optimal"] {
            let solution = registry.solve(solver, &instance).expect("spider solves");
            prop_assert_eq!(solution.makespan(), direct_makespan, "{}", solver);
            prop_assert_eq!(solution.spider_schedule().expect("witnessed"), &direct);
            prop_assert!(verify(&instance, &solution).unwrap().is_feasible(), "{}", solver);
        }
        // Online dispatchers match their simulator counterparts.
        let pairs = [
            ("eager", OnlinePolicy::EarliestCompletion),
            ("round-robin", OnlinePolicy::RoundRobinLegs),
            ("bandwidth-centric", OnlinePolicy::BandwidthCentric),
        ];
        for (solver, policy) in pairs {
            let solution = registry.solve(solver, &instance).expect("dispatcher solves");
            prop_assert_eq!(
                solution.spider_schedule().expect("witnessed"),
                &simulate_online(&spider, n, policy),
                "{}", solver
            );
            prop_assert!(verify(&instance, &solution).unwrap().is_feasible(), "{}", solver);
        }
    }

    #[test]
    fn spider_deadline_parity(
        spider in spider_strategy(),
        cap in 1usize..=6,
        deadline in 0i64..=30,
    ) {
        let registry = registry();
        let instance = Instance::new(spider.clone(), cap);
        let direct = schedule_spider_by_deadline(&spider, cap, deadline);
        let solution = registry
            .solve_by_deadline("spider-optimal", &instance, deadline)
            .expect("deadline solves");
        prop_assert_eq!(solution.spider_schedule().expect("witnessed"), &direct);
        prop_assert!(verify(&instance, &solution).unwrap().is_feasible());
    }
}

proptest! {
    // Exhaustive-search-backed parity is pricier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exact_solver_matches_legacy_and_verifies(
        chain in chain_strategy(3),
        n in 1usize..=5,
    ) {
        let registry = registry();
        let instance = Instance::new(chain.clone(), n);
        let exact = registry.solve("exact", &instance).expect("exact solves");
        prop_assert_eq!(
            exact.makespan(),
            mst_baselines::optimal_chain_makespan(&chain, n)
        );
        // Unlike the legacy function, the solver reconstructs a witness.
        prop_assert!(exact.is_witnessed());
        prop_assert!(verify(&instance, &exact).unwrap().is_feasible());
        // Theorem 1 through the unified surface.
        prop_assert_eq!(exact.makespan(), registry.solve("optimal", &instance).unwrap().makespan());
    }

    #[test]
    fn exact_spider_witnesses_verify(
        spider in spider_strategy(),
        n in 1usize..=4,
    ) {
        let registry = registry();
        let instance = Instance::new(spider.clone(), n);
        let exact = registry.solve("exact", &instance).expect("exact solves");
        prop_assert!(exact.is_witnessed());
        prop_assert!(verify(&instance, &exact).unwrap().is_feasible());
        prop_assert_eq!(
            exact.makespan(),
            mst_baselines::optimal_spider_makespan(&spider, n)
        );
    }
}
