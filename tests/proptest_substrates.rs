//! Property-based tests over the substrates: the fork algorithm, the
//! instance format, the replay/oracle agreement and the metrics.

use mst_core::schedule_chain;
use mst_fork::{max_tasks_fork_by_deadline, schedule_fork};
use mst_platform::format::{parse, to_text, Instance};
use mst_platform::{Chain, Fork, Spider, Time};
use mst_schedule::metrics::chain_metrics;
use mst_schedule::{check_chain, check_spider};
use mst_sim::{replay_chain, simulate_online, OnlinePolicy};
use proptest::prelude::*;

fn fork_strategy(max_p: usize) -> impl Strategy<Value = Fork> {
    prop::collection::vec((1i64..=6, 1i64..=6), 1..=max_p)
        .prop_map(|pairs| Fork::from_pairs(&pairs).expect("positive pairs"))
}

fn chain_strategy(max_p: usize) -> impl Strategy<Value = Chain> {
    prop::collection::vec((1i64..=8, 1i64..=8), 1..=max_p)
        .prop_map(|pairs| Chain::from_pairs(&pairs).expect("positive pairs"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fork_deadline_schedules_are_feasible_and_safe(
        fork in fork_strategy(6),
        deadline in 0i64..=40,
    ) {
        let out = max_tasks_fork_by_deadline(&fork, 20, deadline);
        let spider = Spider::from_fork(&fork);
        let report = check_spider(&spider, &out.schedule);
        prop_assert!(report.is_feasible(), "{:?}", report.violations);
        for t in out.schedule.tasks() {
            prop_assert!(t.end() <= deadline);
            prop_assert!(t.comms.first() >= 0);
        }
    }

    #[test]
    fn fork_count_is_monotone_in_deadline_and_cap(
        fork in fork_strategy(5),
        deadline in 0i64..=30,
        extra in 0i64..=10,
    ) {
        let base = max_tasks_fork_by_deadline(&fork, 20, deadline).n();
        let later = max_tasks_fork_by_deadline(&fork, 20, deadline + extra).n();
        prop_assert!(later >= base);
        // A cap below the unconstrained count is attained exactly.
        let capped = max_tasks_fork_by_deadline(&fork, base / 2, deadline).n();
        prop_assert_eq!(capped, base / 2);
    }

    #[test]
    fn fork_makespan_binary_search_is_tight(
        fork in fork_strategy(4),
        n in 1usize..=6,
    ) {
        let (makespan, out) = schedule_fork(&fork, n);
        prop_assert_eq!(out.n(), n);
        // Tight: one tick earlier cannot fit all n tasks.
        prop_assert!(max_tasks_fork_by_deadline(&fork, n, makespan - 1).n() < n);
    }

    #[test]
    fn instance_text_round_trips(
        chain in chain_strategy(6),
        fork in fork_strategy(6),
    ) {
        for inst in [Instance::Chain(chain.clone()), Instance::Fork(fork.clone())] {
            let text = to_text(&inst);
            prop_assert_eq!(parse(&text).expect("round trip"), inst);
        }
    }

    #[test]
    fn parser_never_panics_on_noise(text in "[a-z0-9 \n#-]{0,120}") {
        // Errors are fine; panics are not.
        let _ = parse(&text);
    }

    #[test]
    fn replay_agrees_with_oracle_on_optimal_schedules(
        chain in chain_strategy(5),
        n in 1usize..=8,
    ) {
        let s = schedule_chain(&chain, n);
        prop_assert!(check_chain(&chain, &s).is_feasible());
        let trace = replay_chain(&chain, &s).expect("optimal schedules replay");
        prop_assert_eq!(trace.end_time(), s.makespan());
        prop_assert_eq!(trace.completed_tasks(), n);
    }

    #[test]
    fn metrics_conserve_work(
        chain in chain_strategy(5),
        n in 1usize..=8,
    ) {
        let s = schedule_chain(&chain, n);
        let m = chain_metrics(&chain, &s);
        prop_assert_eq!(m.tasks_per_proc.iter().sum::<usize>(), n);
        let total_work: Time = (1..=chain.len())
            .map(|k| m.tasks_per_proc[k - 1] as Time * chain.w(k))
            .sum();
        prop_assert_eq!(m.proc_busy.iter().sum::<Time>(), total_work);
        // Link 1 carries every task.
        prop_assert_eq!(m.link_busy[0], n as Time * chain.c(1));
    }

    #[test]
    fn online_policies_emit_feasible_schedules(
        legs in prop::collection::vec(prop::collection::vec((1i64..=5, 1i64..=5), 1..=2), 1..=3),
        n in 1usize..=10,
    ) {
        let refs: Vec<&[(Time, Time)]> = legs.iter().map(|l| l.as_slice()).collect();
        let spider = Spider::from_legs(&refs).expect("positive");
        for policy in [
            OnlinePolicy::EarliestCompletion,
            OnlinePolicy::BandwidthCentric,
            OnlinePolicy::RoundRobinLegs,
        ] {
            let s = simulate_online(&spider, n, policy);
            prop_assert_eq!(s.n(), n);
            let report = check_spider(&spider, &s);
            prop_assert!(report.is_feasible(), "{policy:?}: {:?}", report.violations);
        }
    }
}
