//! End-to-end reproduction of the paper's worked artifacts:
//! Figure 2 (the chain schedule), Figure 7 (its fork transformation),
//! and the full spider pipeline on top of them.

use master_slave_tasking::prelude::*;
use mst_baselines::optimal_chain_makespan;
use mst_core::lemmas::{check_lemma1_no_crossing, check_lemma2_subchain, Lemma2Outcome};
use mst_schedule::{check_chain, check_spider};
use mst_sim::{replay_chain, replay_spider};
use mst_spider::transform_leg;

#[test]
fn figure2_full_pipeline() {
    let chain = Chain::paper_figure2();
    let schedule = schedule_chain(&chain, 5);

    // The paper's numbers.
    assert_eq!(schedule.makespan(), 14);
    let emissions: Vec<Time> = schedule.tasks().iter().map(|t| t.comms.first()).collect();
    assert_eq!(emissions, vec![0, 2, 4, 6, 9]);

    // Analytic == oracle == executable.
    check_chain(&chain, &schedule).assert_feasible();
    let trace = replay_chain(&chain, &schedule).expect("replays");
    assert_eq!(trace.end_time(), schedule.makespan());
    assert_eq!(trace.completed_tasks(), 5);

    // The exhaustive optimum agrees (Theorem 1 on this instance).
    assert_eq!(optimal_chain_makespan(&chain, 5), 14);

    // The dashed-curve anecdote: the second task is received at t = 4
    // but starts at t = 5, buffered behind the first.
    let second = schedule.task(2);
    assert_eq!(second.comms.first() + chain.c(1), 4);
    assert_eq!(second.start, 5);
}

#[test]
fn figure7_transformation_pipeline() {
    let chain = Chain::paper_figure2();
    let deadline = 14;
    let by_deadline = schedule_chain_by_deadline(&chain, 5, deadline);
    assert_eq!(by_deadline.n(), 5, "the optimal deadline fits the full batch");

    let slaves = transform_leg(0, &chain, &by_deadline, deadline);
    let mut procs: Vec<Time> = slaves.iter().map(|s| s.proc_time).collect();
    procs.sort_unstable();
    assert_eq!(procs, vec![3, 6, 8, 10, 12]);
    assert!(slaves.iter().all(|s| s.comm == 2));
}

#[test]
fn paper_chain_as_spider_leg_among_others() {
    // Put the Figure-2 chain inside a spider with two extra legs and
    // check the whole stack end to end.
    let spider = Spider::from_legs(&[
        &[(2, 3), (3, 5)], // the paper's chain
        &[(1, 4)],
        &[(3, 2), (1, 2)],
    ])
    .expect("valid spider");

    for n in 1..=10 {
        let (makespan, schedule) = schedule_spider(&spider, n);
        assert_eq!(schedule.n(), n);
        check_spider(&spider, &schedule).assert_feasible();
        let trace = replay_spider(&spider, &schedule).expect("replays");
        assert_eq!(trace.end_time(), makespan);
        assert_eq!(trace.completed_tasks(), n);
        // More legs can only help relative to the lone chain.
        assert!(makespan <= schedule_chain(&Chain::paper_figure2(), n).makespan());
    }
}

#[test]
fn lemmas_hold_on_the_paper_instance() {
    let chain = Chain::paper_figure2();
    assert!(check_lemma1_no_crossing(&chain, 5).is_empty());
    assert_eq!(check_lemma2_subchain(&chain, 5), Lemma2Outcome::Consistent { forwarded: 1 });
}

#[test]
fn prelude_exports_the_advertised_api() {
    // The README quickstart compiles against the prelude alone.
    let chain = Chain::paper_figure2();
    let s = schedule_chain(&chain, 5);
    assert_eq!(s.makespan(), 14);
    let _ = schedule_chain_by_deadline(&chain, 5, 14);
    let spider = Spider::from_chain(chain);
    let _ = schedule_spider(&spider, 2);
    let _ = schedule_spider_by_deadline(&spider, 2, 20);
}
