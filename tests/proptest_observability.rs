//! Property tests of the `mst-obs` log-linear histogram: the bucketed
//! percentile stays within one bucket width of the exact nearest-rank
//! sample for arbitrary sample sets, and snapshot merging is lossless
//! (the merge of per-shard histograms equals the histogram of the
//! concatenated samples — the property that makes per-thread sharding
//! and cross-scrape aggregation sound).

use master_slave_tasking::obs::hist::{bucket_high, bucket_index};
use master_slave_tasking::obs::{HistSnapshot, Histogram};
use proptest::prelude::*;

/// Exact nearest-rank percentile over raw samples, `q` in `(0, 1]`.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// A sample strategy spanning the exact region (below `2*SUB`), the
/// microsecond range real latencies live in, and huge outliers: each
/// raw draw deterministically lands in one of the three regimes.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..u64::MAX / 2, 1..300).prop_map(|raw| {
        raw.into_iter()
            .map(|x| match x % 3 {
                0 => x / 3 % 64,
                1 => x / 3 % 1_000_000,
                _ => x / 3,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn percentiles_stay_within_one_bucket_of_nearest_rank(values in samples()) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);

        let mut sorted = values;
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_percentile(&sorted, q);
            let bucketed = snap.percentile(q);
            // The estimate is the upper bound of the exact sample's
            // bucket, clamped to the observed max: never below the
            // exact value, never further above it than the bucket is
            // wide (and exact in the low linear region).
            prop_assert!(
                bucketed >= exact,
                "q={q}: bucketed {bucketed} < exact {exact}"
            );
            prop_assert!(
                bucketed <= bucket_high(bucket_index(exact)),
                "q={q}: bucketed {bucketed} beyond the bucket holding exact {exact}"
            );
            prop_assert!(bucketed <= *sorted.last().unwrap(), "clamped to the observed max");
        }
    }

    #[test]
    fn merged_shards_equal_the_histogram_of_concatenated_samples(
        shards in prop::collection::vec(samples(), 1..6),
    ) {
        // Shard-wise: one histogram per shard, merged afterwards.
        let mut merged = HistSnapshot::empty();
        for shard in &shards {
            let hist = Histogram::new();
            for &v in shard {
                hist.record(v);
            }
            merged.merge(&hist.snapshot());
        }

        // Reference: every sample into one histogram.
        let whole_hist = Histogram::new();
        for &v in shards.iter().flatten() {
            whole_hist.record(v);
        }
        let whole = whole_hist.snapshot();

        prop_assert_eq!(merged.buckets(), whole.buckets());
        prop_assert_eq!(merged.sum, whole.sum);
        prop_assert_eq!(merged.max, whole.max);
        for q in [0.5, 0.99, 0.999, 1.0] {
            prop_assert_eq!(merged.percentile(q), whole.percentile(q));
        }
    }

    #[test]
    fn merging_an_empty_snapshot_is_the_identity(values in samples()) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let mut merged = snap.clone();
        merged.merge(&HistSnapshot::empty());
        prop_assert_eq!(merged.buckets(), snap.buckets());
        prop_assert_eq!(merged.sum, snap.sum);
        prop_assert_eq!(merged.max, snap.max);
    }
}
