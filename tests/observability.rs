//! End-to-end tests of the request-lifecycle observability surface:
//! every response carries an `X-Trace-Id`, `GET /trace?id=` replays the
//! span tree of a `/solve` with the full parse → queue → admit → cache
//! → solve → write lifecycle, `GET /trace/slow` ranks recent traces,
//! and `GET /metrics?format=prometheus` exposes deterministic
//! per-route / per-tenant / per-solver-kernel latency summaries while
//! the default JSON exposition stays unchanged.

use master_slave_tasking::api::wire::Json;
use master_slave_tasking::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Binds a server on an ephemeral port and runs it on a background
/// thread; `registries` configures named tenants when given.
fn start_server(
    registries: Option<RegistrySet>,
) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<mst_serve::ServeReport>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        conn_threads: 8,
        registries,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, runner)
}

/// Sends one request, reads the whole reply, and splits it into
/// `(status, head, body)` so tests can assert on headers too.
fn raw_exchange(addr: SocketAddr, raw: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(raw).expect("send request");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read response");
    let reply = String::from_utf8_lossy(&reply).to_string();
    let status: u16 = reply
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {reply:?}"));
    let (head, body) = reply.split_once("\r\n\r\n").expect("response head");
    (status, head.to_string(), body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    raw_exchange(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str, token: Option<&str>) -> (u16, String, String) {
    let auth = token.map(|t| format!("X-Api-Token: {t}\r\n")).unwrap_or_default();
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n{auth}Content-Length: {}\r\n\r\n\
         {body}",
        body.len()
    );
    raw_exchange(addr, raw.as_bytes())
}

/// A response header's value, case-insensitively.
fn header(head: &str, name: &str) -> Option<String> {
    head.lines().find_map(|line| {
        let (key, value) = line.split_once(':')?;
        key.eq_ignore_ascii_case(name).then(|| value.trim().to_string())
    })
}

const SOLVE_BODY: &str = "{\"platform\": \"chain\\n2 3\\n3 5\\n\", \"tasks\": 5}";

/// Fetches a trace by id, retrying briefly: the server finishes the
/// trace bookkeeping right after pushing the response bytes, so a
/// fast client can race it by a few microseconds.
fn fetch_finished_trace(addr: SocketAddr, id: &str) -> Json {
    for _ in 0..100 {
        let (status, _, body) = get(addr, &format!("/trace?id={id}"));
        if status == 200 {
            let trace = Json::parse(&body).expect("trace JSON parses");
            if trace.get("finished").and_then(Json::as_bool) == Some(true) {
                return trace;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("trace {id} never finished");
}

#[test]
fn solve_traces_replay_the_full_request_lifecycle() {
    let (addr, handle, runner) = start_server(None);

    let (status, head, _) = post(addr, "/solve", SOLVE_BODY, None);
    assert_eq!(status, 200);
    let id = header(&head, "X-Trace-Id").expect("solve response carries X-Trace-Id");

    let trace = fetch_finished_trace(addr, &id);
    assert_eq!(trace.get("route").and_then(Json::as_str), Some("/solve"));
    assert_eq!(trace.get("status").and_then(Json::as_i64), Some(200));
    let total_ns = trace.get("total_ns").and_then(Json::as_i64).expect("total_ns");
    assert!(total_ns > 0, "{trace:?}");
    let sequential_ns = trace.get("sequential_ns").and_then(Json::as_i64).expect("sequential_ns");
    assert!(
        sequential_ns <= total_ns,
        "stage durations ({sequential_ns}ns) must fit inside the wall time ({total_ns}ns)"
    );

    let spans = trace.get("spans").and_then(Json::as_arr).expect("span list").to_vec();
    let duration_of = |stage: &str| -> Option<i64> {
        spans.iter().find_map(|span| {
            (span.get("stage")?.as_str()? == stage).then(|| span.get("dur_ns")?.as_i64())?
        })
    };
    // The acceptance lifecycle: every stage present with real duration.
    for stage in ["parse", "queue", "admit", "cache", "solve", "write"] {
        let dur = duration_of(stage)
            .unwrap_or_else(|| panic!("stage {stage} missing from trace: {trace:?}"));
        assert!(dur > 0, "stage {stage} has zero duration: {trace:?}");
    }

    // An uncached repeat of the same instance hits the solution cache:
    // its trace still has a cache stage but no solve stage.
    let (status, head, _) = post(addr, "/solve", SOLVE_BODY, None);
    assert_eq!(status, 200);
    let id = header(&head, "X-Trace-Id").expect("X-Trace-Id");
    let cached = fetch_finished_trace(addr, &id);
    assert_eq!(cached.get("cached").and_then(Json::as_bool), Some(true), "{cached:?}");

    // Unknown and malformed ids answer structured errors, not panics.
    let (status, _, _) = get(addr, "/trace?id=18446744073709551615");
    assert_eq!(status, 404);
    let (status, _, _) = get(addr, "/trace?id=not-a-number");
    assert_eq!(status, 400);

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn trace_slow_ranks_recent_requests_by_wall_time() {
    let (addr, handle, runner) = start_server(None);

    for tasks in 3..9 {
        let body = format!("{{\"platform\": \"chain\\n2 3\\n3 5\\n\", \"tasks\": {tasks}}}");
        let (status, _, _) = post(addr, "/solve", &body, None);
        assert_eq!(status, 200);
    }

    let (status, _, body) = get(addr, "/trace/slow?limit=4");
    assert_eq!(status, 200, "{body}");
    let listing = Json::parse(&body).expect("slow listing parses");
    let traces = listing.get("traces").and_then(Json::as_arr).expect("traces array").to_vec();
    assert!(!traces.is_empty(), "{body}");
    assert!(traces.len() <= 4, "limit respected: {body}");
    let totals: Vec<i64> =
        traces.iter().map(|t| t.get("total_ns").and_then(Json::as_i64).unwrap()).collect();
    assert!(totals.windows(2).all(|w| w[0] >= w[1]), "slowest first: {totals:?}");

    handle.shutdown();
    runner.join().unwrap();
}

/// The label part of every Prometheus sample line of one family, in
/// exposition order.
fn family_labels(text: &str, family: &str) -> Vec<String> {
    text.lines()
        .filter_map(|line| {
            let rest = line.strip_prefix(family)?;
            let rest = rest.strip_prefix('{')?;
            Some(rest.split_once('}')?.0.to_string())
        })
        .collect()
}

#[test]
fn prometheus_exposition_is_deterministic_and_json_is_unchanged() {
    let (addr, handle, runner) = start_server(None);

    let (status, _, _) = post(addr, "/solve", SOLVE_BODY, None);
    assert_eq!(status, 200);
    let (status, _, _) = post(
        addr,
        "/batch",
        "{\"generate\": {\"kind\": \"chain\", \"count\": 4, \"size\": 3, \"tasks\": 5}}",
        None,
    );
    assert_eq!(status, 200);

    // The default /metrics stays the flat JSON document CI greps.
    let (status, head, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(header(&head, "Content-Type").unwrap().contains("application/json"), "{head}");
    let json = Json::parse(&body).expect("JSON metrics parse");
    assert!(json.get("requests_total").is_some(), "{body}");

    let (status, head, first) = get(addr, "/metrics?format=prometheus");
    assert_eq!(status, 200);
    assert!(header(&head, "Content-Type").unwrap().contains("text/plain"), "{head}");
    let (status, _, second) = get(addr, "/metrics?format=prometheus");
    assert_eq!(status, 200);

    for text in [&first, &second] {
        assert!(
            text.contains("mst_route_latency_us{route=\"/solve\",quantile=\"0.5\"}"),
            "missing /solve latency summary:\n{text}"
        );
        assert!(
            text.contains("mst_kernel_latency_us{kernel=\"solve\""),
            "missing solve-kernel summary:\n{text}"
        );
        assert!(text.contains("mst_requests_total"), "{text}");

        // Determinism satellite: route keys appear sorted, every scrape.
        let routes: Vec<String> = family_labels(text, "mst_route_latency_us_count")
            .iter()
            .map(|labels| labels.split('"').nth(1).unwrap().to_string())
            .collect();
        let mut sorted = routes.clone();
        sorted.sort();
        assert_eq!(routes, sorted, "route keys must be sorted:\n{text}");
    }
    // The second scrape extends the first's series (the /metrics route
    // itself got a sample) without reshuffling anything else.
    let first_series = family_labels(&first, "mst_route_latency_us_count");
    let second_series = family_labels(&second, "mst_route_latency_us_count");
    let mut remaining = second_series.iter();
    for series in &first_series {
        assert!(
            remaining.any(|s| s == series),
            "series {series} vanished or moved between scrapes"
        );
    }

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn tenant_tokens_light_up_per_tenant_histograms() {
    let registries = RegistrySet::parse(
        r#"{
            "registries": {
                "acme": {"threads": 2, "token": "acme-key"},
                "zeta": {"threads": 2}
            }
        }"#,
    )
    .expect("tenant config parses");
    let (addr, handle, runner) = start_server(Some(registries));

    let (status, _, _) = post(addr, "/solve", SOLVE_BODY, Some("acme-key"));
    assert_eq!(status, 200);
    // zeta's effective token defaults to its name.
    let (status, _, _) = post(addr, "/solve", SOLVE_BODY, Some("zeta"));
    assert_eq!(status, 200);

    let (status, _, text) = get(addr, "/metrics?format=prometheus");
    assert_eq!(status, 200);
    for tenant in ["acme", "zeta"] {
        assert!(
            text.contains(&format!(
                "mst_tenant_latency_us{{tenant=\"{tenant}\",quantile=\"0.5\"}}"
            )),
            "missing {tenant} latency summary:\n{text}"
        );
        assert!(
            text.contains(&format!("mst_tenant_requests_total{{tenant=\"{tenant}\"}}")),
            "missing {tenant} request counter:\n{text}"
        );
    }
    // Tenant label blocks appear in sorted tenant order.
    let tenants: Vec<String> = family_labels(&text, "mst_tenant_requests_total")
        .iter()
        .map(|labels| labels.split('"').nth(1).unwrap().to_string())
        .collect();
    let mut sorted = tenants.clone();
    sorted.sort();
    assert_eq!(tenants, sorted, "tenant keys must be sorted:\n{text}");

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn every_response_carries_a_trace_id_even_on_errors() {
    let (addr, handle, runner) = start_server(None);

    let (status, head, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(header(&head, "X-Trace-Id").is_some(), "{head}");

    let (status, head, _) = get(addr, "/definitely-not-a-route");
    assert_eq!(status, 404);
    assert!(header(&head, "X-Trace-Id").is_some(), "{head}");

    let (status, head, _) = post(addr, "/solve", "{not json", None);
    assert_eq!(status, 400);
    assert!(header(&head, "X-Trace-Id").is_some(), "{head}");

    handle.shutdown();
    runner.join().unwrap();
}
