//! End-to-end tests of the execution-policy layer over real sockets:
//! per-tenant admission (quota exhaustion answers 429 with
//! `Retry-After` and the slot frees again), deadline budgets (a
//! cancelled batch returns promptly and leaves no stuck workers),
//! thread-budget isolation (a heavy tenant cannot starve a light one),
//! client-disconnect cancellation, streamed batches and the per-tenant
//! `/metrics` section.

use master_slave_tasking::api::wire::Json;
use master_slave_tasking::serve::{ServeConfig, Server, ServerHandle};
use mst_api::RegistrySet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// The two-tenant config every test boots:
///
/// * `slow` — one solve thread, one admission slot (the tenant whose
///   quota and budget we exhaust);
/// * `fast` — three solve threads, no quota (the tenant that must not
///   be starved);
/// * `budget` — a 150 ms per-request deadline budget and a small
///   per-request instance cap;
/// * `metered` — a time-windowed rate limit of 3 requests per minute
///   (the window is long so tokens do not regrow mid-test).
fn tenant_config() -> RegistrySet {
    RegistrySet::parse(
        r#"{
            "registries": {
                "slow": {"threads": 1, "quota": 1, "token": "slow-key"},
                "fast": {"threads": 3},
                "budget": {"threads": 2, "deadline_ms": 150, "max_instances": 50000},
                "metered": {"requests_per_window": 3, "window_ms": 60000}
            }
        }"#,
    )
    .expect("test config parses")
}

fn start_server() -> (SocketAddr, ServerHandle, std::thread::JoinHandle<mst_serve::ServeReport>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        conn_threads: 8,
        // Tight chunks = tight cancellation checkpoints, so disconnect
        // and deadline cancellation land quickly in these tests.
        batch_chunk: 64,
        registries: Some(tenant_config()),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, runner)
}

/// Sends one request and reads the full reply (head + body).
fn raw_request(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    stream.write_all(raw).expect("send request");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read response");
    String::from_utf8_lossy(&reply).to_string()
}

fn status_of(reply: &str) -> u16 {
    reply.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line")
}

fn body_of(reply: &str) -> String {
    reply.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default()
}

fn get(addr: SocketAddr, path: &str) -> String {
    raw_request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str, token: Option<&str>, body: &str) -> String {
    let token_header = token.map(|t| format!("X-Api-Token: {t}\r\n")).unwrap_or_default();
    raw_request(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\n{token_header}Connection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// A small solve request body (one 3-processor chain, 5 tasks).
const SMALL_SOLVE: &str = r#"{"platform": "chain\n2 3\n3 5\n", "tasks": 5}"#;

/// A `/batch` body big enough to keep a one-thread tenant busy for
/// many seconds (the tests cancel it; it never runs to completion).
const HUGE_BATCH: &str =
    r#"{"generate": {"kind": "chain", "count": 100000, "size": 10, "tasks": 200}}"#;

/// Opens a connection, sends `body` as the tenant's `/batch` and
/// returns the open stream *without reading the response* — the
/// request is now in flight server-side, holding its admission slot.
fn send_batch_without_reading(addr: SocketAddr, token: &str, body: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!(
                "POST /batch HTTP/1.1\r\nHost: t\r\nX-Api-Token: {token}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send request");
    stream
}

/// Polls `/metrics` until the tenant's live queue depth reaches
/// `depth` (the in-flight request has been admitted).
fn wait_for_queue_depth(addr: SocketAddr, tenant: &str, depth: i64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let metrics = Json::parse(&body_of(&get(addr, "/metrics"))).expect("metrics JSON");
        let current = metrics
            .get("tenants")
            .and_then(|t| t.get(tenant))
            .and_then(|t| t.get("queue_depth"))
            .and_then(Json::as_i64)
            .unwrap_or_else(|| panic!("no queue_depth for {tenant}"));
        if current == depth {
            return;
        }
        assert!(Instant::now() < deadline, "tenant {tenant} never reached queue depth {depth}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn quota_exhaustion_answers_429_and_the_slot_frees_on_disconnect() {
    let (addr, handle, runner) = start_server();

    // Occupy tenant `slow`'s single admission slot with a long batch.
    let held = send_batch_without_reading(addr, "slow-key", HUGE_BATCH);
    wait_for_queue_depth(addr, "slow", 1);

    // A second request on the same token is refused: structured 429
    // with Retry-After, while other tenants still get in.
    let reply = post(addr, "/solve", Some("slow-key"), SMALL_SOLVE);
    assert_eq!(status_of(&reply), 429, "{reply}");
    assert!(reply.contains("Retry-After: 1"), "{reply}");
    assert!(body_of(&reply).contains("\"kind\":\"quota-exhausted\""), "{reply}");
    let reply = post(addr, "/solve", Some("fast"), SMALL_SOLVE);
    assert_eq!(status_of(&reply), 200, "quota is per tenant: {reply}");

    // Abandon the held request: the server notices the disconnect at
    // the next chunk checkpoint, cancels the sweep and releases the
    // slot — the tenant is usable again, the pool not stuck.
    drop(held);
    wait_for_queue_depth(addr, "slow", 0);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let reply = post(addr, "/solve", Some("slow-key"), SMALL_SOLVE);
        if status_of(&reply) == 200 {
            assert!(body_of(&reply).contains("\"makespan\":14"), "{reply}");
            break;
        }
        assert!(Instant::now() < deadline, "the freed slot never re-admitted: {reply}");
        std::thread::sleep(Duration::from_millis(20));
    }

    // The refusal and the cancellation both show in the tenant metrics.
    let metrics = Json::parse(&body_of(&get(addr, "/metrics"))).unwrap();
    let slow = metrics.get("tenants").and_then(|t| t.get("slow")).expect("slow tenant metrics");
    assert!(slow.get("rejected_total").and_then(Json::as_i64).unwrap() >= 1);
    assert!(slow.get("cancelled_total").and_then(Json::as_i64).unwrap() >= 1);

    handle.shutdown();
    runner.join().expect("server joins cleanly — no stuck handler threads");
}

#[test]
fn deadline_budgets_cancel_batches_promptly_and_leave_workers_reusable() {
    let (addr, handle, runner) = start_server();

    // Far more work than a 150 ms budget covers.
    let started = Instant::now();
    let reply = post(
        addr,
        "/batch",
        Some("budget"),
        r#"{"generate": {"kind": "chain", "count": 50000, "size": 10, "tasks": 200}}"#,
    );
    let elapsed = started.elapsed();
    assert_eq!(status_of(&reply), 200, "{reply}");
    let body = Json::parse(&body_of(&reply)).expect("batch summary JSON");
    assert_eq!(body.get("complete").and_then(Json::as_bool), Some(false), "{reply}");
    let cancelled = body.get("cancelled").and_then(Json::as_i64).unwrap();
    let solved = body.get("solved").and_then(Json::as_i64).unwrap();
    assert!(cancelled > 0, "the budget cannot cover 50k instances: {reply}");
    assert!(solved > 0, "instances before the deadline did solve: {reply}");
    assert_eq!(solved + cancelled + body.get("failed").and_then(Json::as_i64).unwrap(), 50_000);
    assert!(
        elapsed < Duration::from_secs(30),
        "a budgeted batch must return promptly, took {elapsed:?}"
    );

    // The tenant's dedicated pool survives: a small sweep completes.
    let reply = post(
        addr,
        "/batch",
        Some("budget"),
        r#"{"generate": {"kind": "chain", "count": 64, "size": 3, "tasks": 5}}"#,
    );
    assert_eq!(status_of(&reply), 200, "{reply}");
    let body = Json::parse(&body_of(&reply)).unwrap();
    assert_eq!(body.get("complete").and_then(Json::as_bool), Some(true), "{reply}");
    assert_eq!(body.get("solved").and_then(Json::as_i64), Some(64), "{reply}");

    // Per-request instance caps refuse before solving anything.
    let reply = post(
        addr,
        "/batch",
        Some("budget"),
        r#"{"generate": {"kind": "chain", "count": 60000, "size": 3, "tasks": 5}}"#,
    );
    assert_eq!(status_of(&reply), 400, "{reply}");
    assert!(body_of(&reply).contains("\"kind\":\"too-many-instances\""), "{reply}");

    handle.shutdown();
    runner.join().expect("server joins cleanly");
}

#[test]
fn a_heavy_tenant_cannot_starve_a_light_one() {
    let (addr, handle, runner) = start_server();

    // Baseline: tenant `fast` solve latency with an idle service.
    let mut baseline = Vec::new();
    for _ in 0..5 {
        let started = Instant::now();
        let reply = post(addr, "/solve", Some("fast"), SMALL_SOLVE);
        assert_eq!(status_of(&reply), 200);
        baseline.push(started.elapsed());
    }
    baseline.sort();
    let baseline_median = baseline[baseline.len() / 2];

    // Tenant `slow` (1 thread) starts a batch that would run for many
    // seconds; its sweep stays pinned to its own dedicated pool.
    let held = send_batch_without_reading(addr, "slow-key", HUGE_BATCH);
    wait_for_queue_depth(addr, "slow", 1);

    // Tenant `fast` keeps its latency while `slow` burns its budget:
    // bounded by a generous absolute cap AND a factor of the baseline.
    let mut during = Vec::new();
    for _ in 0..10 {
        let started = Instant::now();
        let reply = post(addr, "/solve", Some("fast"), SMALL_SOLVE);
        assert_eq!(status_of(&reply), 200, "{reply}");
        during.push(started.elapsed());
    }
    during.sort();
    let during_median = during[during.len() / 2];
    let bound = Duration::from_secs(2).max(baseline_median * 100);
    assert!(
        during_median < bound,
        "fast tenant latency degraded beyond the bound: {baseline_median:?} -> {during_median:?}"
    );
    // The heavy sweep really was still in flight while fast solved.
    let metrics = Json::parse(&body_of(&get(addr, "/metrics"))).unwrap();
    let depth = metrics
        .get("tenants")
        .and_then(|t| t.get("slow"))
        .and_then(|t| t.get("queue_depth"))
        .and_then(Json::as_i64)
        .unwrap();
    assert_eq!(depth, 1, "slow's batch must still be running for the comparison to mean anything");

    // Cancelling the heavy request (client disconnect) frees its budget.
    drop(held);
    wait_for_queue_depth(addr, "slow", 0);

    handle.shutdown();
    runner.join().expect("server joins cleanly");
}

#[test]
fn streamed_batches_deliver_ndjson_lines_and_a_summary() {
    let (addr, handle, runner) = start_server();

    let reply = post(
        addr,
        "/batch",
        Some("fast"),
        r#"{"generate": {"kind": "chain", "count": 100, "size": 3, "tasks": 5}, "stream": true}"#,
    );
    assert_eq!(status_of(&reply), 200, "{reply}");
    assert!(reply.contains("Transfer-Encoding: chunked"), "{reply}");
    assert!(reply.contains("Content-Type: application/x-ndjson"), "{reply}");
    // De-frame the chunked body, then parse the NDJSON lines.
    let body = body_of(&reply);
    let payload: String = body
        .split("\r\n")
        .filter(|part| !part.is_empty() && !part.chars().all(|c| c.is_ascii_hexdigit()))
        .collect();
    let lines: Vec<Json> =
        payload.lines().map(|l| Json::parse(l).expect("NDJSON line parses")).collect();
    assert_eq!(lines.len(), 101, "100 instance lines + 1 summary line");
    for (i, line) in lines[..100].iter().enumerate() {
        assert_eq!(line.get("index").and_then(Json::as_i64), Some(i as i64));
        assert!(line.get("makespan").is_some(), "line {i} carries a solution: {line}");
    }
    let summary = lines[100].get("summary").expect("final summary line");
    assert_eq!(summary.get("solved").and_then(Json::as_i64), Some(100));
    assert_eq!(summary.get("complete").and_then(Json::as_bool), Some(true));

    handle.shutdown();
    runner.join().expect("server joins cleanly");
}

#[test]
fn rate_limits_answer_429_with_an_accurate_retry_after() {
    let (addr, handle, runner) = start_server();

    // The bucket starts full: the whole 3-request window allowance may
    // burst immediately.
    for i in 0..3 {
        let reply = post(addr, "/solve", Some("metered"), SMALL_SOLVE);
        assert_eq!(status_of(&reply), 200, "burst request {i}: {reply}");
    }

    // The fourth request is refused with the computed Retry-After: one
    // token regrows in window/requests = 20s (the handful of seconds
    // the burst itself took may already have refilled part of it).
    let reply = post(addr, "/solve", Some("metered"), SMALL_SOLVE);
    assert_eq!(status_of(&reply), 429, "{reply}");
    assert!(body_of(&reply).contains("\"kind\":\"rate-limited\""), "{reply}");
    let retry_after: u64 = reply
        .lines()
        .find_map(|l| l.strip_prefix("Retry-After: "))
        .expect("a rate-limited refusal carries Retry-After")
        .trim()
        .parse()
        .expect("Retry-After is an integer");
    assert!((1..=20).contains(&retry_after), "Retry-After = {retry_after}");

    // The rate limit is per tenant: others are unaffected, and the
    // refusal shows in the tenant's /metrics counters.
    let reply = post(addr, "/solve", Some("fast"), SMALL_SOLVE);
    assert_eq!(status_of(&reply), 200, "{reply}");
    let metrics = Json::parse(&body_of(&get(addr, "/metrics"))).unwrap();
    let metered = metrics.get("tenants").and_then(|t| t.get("metered")).expect("metered metrics");
    assert!(metered.get("rate_limited_total").and_then(Json::as_i64).unwrap() >= 1);
    assert_eq!(
        metrics
            .get("tenants")
            .and_then(|t| t.get("fast"))
            .and_then(|t| t.get("rate_limited_total"))
            .and_then(Json::as_i64),
        Some(0),
        "rate refusals are per tenant"
    );

    // /tenants surfaces the configured limit (but no token values).
    let tenants = body_of(&get(addr, "/tenants"));
    assert!(tenants.contains("\"requests_per_window\":3"), "{tenants}");
    assert!(tenants.contains("\"window_ms\":60000"), "{tenants}");

    handle.shutdown();
    runner.join().expect("server joins cleanly");
}

#[test]
fn token_routing_rejects_unknown_and_ambiguous_selectors() {
    let (addr, handle, runner) = start_server();

    let reply = post(addr, "/solve", Some("no-such-token"), SMALL_SOLVE);
    assert_eq!(status_of(&reply), 401, "{reply}");
    assert!(body_of(&reply).contains("\"kind\":\"unknown-token\""), "{reply}");

    // A token plus a "registry" body selector is ambiguous.
    let reply = post(
        addr,
        "/solve",
        Some("fast"),
        r#"{"platform": "chain\n2 3\n3 5\n", "tasks": 5, "registry": "slow"}"#,
    );
    assert_eq!(status_of(&reply), 400, "{reply}");
    assert!(body_of(&reply).contains("\"kind\":\"conflicting-selectors\""), "{reply}");

    // Anonymous requests run as the default tenant; the legacy
    // "registry" selector still works for them.
    let reply = post(addr, "/solve", None, SMALL_SOLVE);
    assert_eq!(status_of(&reply), 200, "{reply}");

    // /tenants lists the resolved policies without leaking tokens.
    let reply = get(addr, "/tenants");
    assert_eq!(status_of(&reply), 200);
    let body = body_of(&reply);
    assert!(body.contains("\"name\":\"slow\""), "{body}");
    assert!(!body.contains("slow-key"), "token values must not be echoed: {body}");

    handle.shutdown();
    runner.join().expect("server joins cleanly");
}
