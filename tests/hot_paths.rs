//! Regression coverage for the hot-path overhaul: the persistent worker
//! pool, the merging fork expansion and the incremental deadline search
//! must be **behaviour-preserving** — same results, fewer cycles.

use master_slave_tasking::prelude::*;
use mst_fork::{
    count_tasks_fork_by_deadline, expand_fork, expand_fork_sorted, max_tasks_fork_by_deadline,
    max_tasks_fork_by_deadline_scratch, schedule_fork, ForkScratch,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn fork_strategy() -> impl Strategy<Value = Fork> {
    prop::collection::vec((1i64..=8, 1i64..=8), 1..=8)
        .prop_map(|pairs| Fork::from_pairs(&pairs).expect("positive pairs"))
}

fn spider_strategy() -> impl Strategy<Value = Spider> {
    prop::collection::vec(prop::collection::vec((1i64..=6, 1i64..=6), 1..=3), 1..=4).prop_map(
        |legs| {
            let refs: Vec<&[(Time, Time)]> = legs.iter().map(|l| l.as_slice()).collect();
            Spider::from_legs(&refs).expect("positive legs")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The k-way merging expansion streams exactly the sequence the
    /// reference (materialise + stable sort) produces — order included.
    #[test]
    fn merged_expansion_matches_reference_sort(
        fork in fork_strategy(),
        deadline in 0i64..=60,
        max_tasks in 0usize..=24,
    ) {
        let mut reference = expand_fork(&fork, deadline, max_tasks);
        reference.sort_by_key(|v| (v.comm, v.proc_time));
        let merged = expand_fork_sorted(&fork, deadline, max_tasks);
        prop_assert_eq!(merged, reference);
    }

    /// Scratch-threaded selection (the allocation-free probe), the
    /// thread-local entry point and the witness-building variant all
    /// agree; scratch reuse across deadlines leaks nothing.
    #[test]
    fn scratch_probes_agree_with_materialised_outcomes(
        fork in fork_strategy(),
        max_tasks in 1usize..=12,
    ) {
        let mut scratch = ForkScratch::new();
        // Sweep the deadline upward through one scratch, the realistic
        // binary-search access pattern (monotonicity is asserted too).
        let mut prev = 0;
        for deadline in 0..=40 {
            let counted = count_tasks_fork_by_deadline(&fork, max_tasks, deadline, &mut scratch);
            let fresh = max_tasks_fork_by_deadline(&fork, max_tasks, deadline);
            let scratched =
                max_tasks_fork_by_deadline_scratch(&fork, max_tasks, deadline, &mut scratch);
            prop_assert_eq!(counted, fresh.n());
            prop_assert_eq!(scratched.n(), fresh.n());
            prop_assert_eq!(scratched.selected, fresh.selected);
            prop_assert!(counted >= prev, "count must be deadline-monotone");
            prev = counted;
        }
    }

    /// The incremental binary search (counting probes + cached final
    /// selection) returns the same makespan and witness the per-probe
    /// re-solving implementation did.
    #[test]
    fn incremental_schedule_fork_matches_brute_probes(
        fork in fork_strategy(),
        n in 1usize..=8,
    ) {
        let (makespan, outcome) = schedule_fork(&fork, n);
        prop_assert_eq!(outcome.n(), n);
        // Reference: linear scan for the smallest feasible deadline.
        let mut expected = 1;
        while max_tasks_fork_by_deadline(&fork, n, expected).n() < n {
            expected += 1;
        }
        prop_assert_eq!(makespan, expected);
        let reference = max_tasks_fork_by_deadline(&fork, n, expected);
        prop_assert_eq!(outcome.selected, reference.selected);
        for t in outcome.schedule.tasks() {
            prop_assert!(t.end() <= makespan);
        }
    }

    /// The scratch-reusing spider deadline search stays optimal and
    /// deadline-true (Theorem 3's claim, now through the probe path).
    #[test]
    fn incremental_schedule_spider_stays_optimal(
        spider in spider_strategy(),
        n in 1usize..=6,
    ) {
        let (makespan, schedule) = schedule_spider(&spider, n);
        prop_assert_eq!(schedule.n(), n);
        prop_assert_eq!(schedule.makespan(), makespan);
        // The searched deadline is tight: one tick less fits fewer tasks.
        prop_assert!(schedule_spider_by_deadline(&spider, n, makespan - 1).n() < n);
    }

    /// A pooled batch equals instance-by-instance serial solving.
    #[test]
    fn pooled_batch_equals_serial(seed_base in 0u64..5000) {
        let instances: Vec<Instance> = (0..24).map(|i| {
            let seed = seed_base + i;
            let kind = [TopologyKind::Chain, TopologyKind::Fork, TopologyKind::Spider]
                [(seed % 3) as usize];
            Instance::generate(
                kind,
                HeterogeneityProfile::ALL[(seed % 5) as usize],
                seed,
                1 + (seed % 4) as usize,
                1 + (seed % 6) as usize,
            )
        }).collect();
        let batch = Batch::default();
        let pooled = batch.solve_all(&instances);
        for (instance, result) in instances.iter().zip(pooled) {
            let serial = batch.registry().solve(batch.solver(), instance);
            prop_assert_eq!(result, serial);
        }
    }
}

/// One `Batch`, three consecutive `solve_all` calls: identical results,
/// one worker set, no new threads (the job counter proves the same pool
/// served every sweep).
#[test]
fn batch_reuses_its_pool_across_three_sweeps() {
    let pool = Arc::new(WorkerPool::with_workers(2));
    let batch = Batch::default().with_pool(Arc::clone(&pool));
    let instances: Vec<Instance> = (0..120u64)
        .map(|seed| {
            let kind = [TopologyKind::Chain, TopologyKind::Fork, TopologyKind::Spider]
                [(seed % 3) as usize];
            Instance::generate(
                kind,
                HeterogeneityProfile::ALL[(seed % 5) as usize],
                seed,
                1 + (seed % 5) as usize,
                1 + (seed % 7) as usize,
            )
        })
        .collect();
    let first = batch.solve_all(&instances);
    assert!(first.iter().all(|r| r.is_ok()));
    for _ in 0..2 {
        assert_eq!(batch.solve_all(&instances), first);
    }
    assert_eq!(pool.workers(), 2);
    assert_eq!(pool.jobs_submitted(), 3, "three sweeps through one persistent pool");
}

/// The empty-items edge under the pool: immediate return, no worker
/// wakeup, and the shared `run_parallel` front door agrees.
#[test]
fn empty_sweeps_cost_nothing_and_wake_nobody() {
    let pool = Arc::new(WorkerPool::with_workers(2));
    let batch = Batch::default().with_pool(Arc::clone(&pool));
    let empty: Vec<Instance> = vec![];
    assert!(batch.solve_all(&empty).is_empty());
    assert!(batch.solve_all_by_deadline(&empty, 10).is_empty());
    assert_eq!(pool.jobs_submitted(), 0, "empty sweeps must not wake the pool");
    let none: Vec<u64> = vec![];
    assert!(run_parallel(&none, |&x| x).is_empty());
}

/// Panics inside a pooled sweep stay loud: the closure's panic reaches
/// the caller (after the sweep drains) instead of yielding truncated or
/// reordered results.
#[test]
fn pool_panics_stay_loud() {
    let pool = WorkerPool::with_workers(2);
    let items: Vec<u64> = (0..64).collect();
    let executed = AtomicUsize::new(0);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.run(&items, |&x| {
            executed.fetch_add(1, Ordering::Relaxed);
            assert!(x != 17, "injected failure");
            x
        })
    }));
    assert!(outcome.is_err(), "the panic must propagate");
    // All claimed items finish before the unwind; the unclaimed tail is
    // drained without running once the failure is recorded.
    assert!(executed.load(Ordering::Relaxed) <= 64);
    // The pool remains serviceable afterwards.
    assert_eq!(pool.run(&items, |&x| x + 1)[0], 1);
}
