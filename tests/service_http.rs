//! End-to-end tests of the `mst-serve` HTTP front-end over real
//! `TcpStream`s: wire-layer robustness (malformed, truncated and
//! oversized bodies answer structured 4xx — never a panic or a hang),
//! solver parity with the direct `Batch` path under 32 concurrent
//! clients, and graceful shutdown that leaves no stuck threads.

use master_slave_tasking::api::wire::{instance_to_json, solution_to_json, Json};
use master_slave_tasking::prelude::*;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

/// Binds a server on an ephemeral port and runs it on a background
/// thread. Returns the address, the shutdown handle and the runner.
fn start_server() -> (SocketAddr, ServerHandle, std::thread::JoinHandle<mst_serve::ServeReport>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        conn_threads: 8,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, runner)
}

/// Sends raw bytes, returns `(status, body)`. The read timeout
/// guarantees these tests fail loudly instead of hanging when the
/// server stops responding.
fn raw_request(addr: SocketAddr, raw: &[u8], half_close: bool) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    stream.write_all(raw).expect("send request");
    if half_close {
        stream.shutdown(Shutdown::Write).expect("half-close");
    }
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read response");
    let reply = String::from_utf8_lossy(&reply).to_string();
    let status: u16 = reply
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {reply:?}"));
    let body = reply.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    raw_request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        false,
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    raw_request(addr, raw.as_bytes(), false)
}

/// The `error.kind` field of a structured error body.
fn error_kind_of(body: &str) -> String {
    Json::parse(body)
        .ok()
        .and_then(|j| j.get("error")?.get("kind")?.as_str().map(String::from))
        .unwrap_or_else(|| panic!("no error kind in {body:?}"))
}

#[test]
fn read_endpoints_round_trip() {
    let (addr, handle, runner) = start_server();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    let (status, body) = get(addr, "/solvers");
    assert_eq!(status, 200);
    let solvers = Json::parse(&body).unwrap();
    let names: Vec<String> = solvers
        .get("solvers")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|s| s.get("name").unwrap().as_str().unwrap().to_string())
        .collect();
    assert_eq!(names, SolverRegistry::global().names(), "registry listing must match");

    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let metrics = Json::parse(&body).unwrap();
    for key in
        ["uptime_secs", "requests_total", "solved_total", "instances_per_sec", "pool_workers"]
    {
        assert!(metrics.get(key).is_some(), "missing {key} in {body}");
    }

    let (status, body) = get(addr, "/");
    assert_eq!(status, 200);
    assert!(body.contains("mst-serve"), "{body}");

    // Unknown paths and wrong methods answer structured errors.
    let (status, body) = get(addr, "/nope");
    assert_eq!(status, 404);
    assert_eq!(error_kind_of(&body), "not-found");
    let (status, body) = post(addr, "/healthz", "{}");
    assert_eq!(status, 405);
    assert_eq!(error_kind_of(&body), "method-not-allowed");

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn solve_round_trip_matches_the_direct_path_and_verifies() {
    let (addr, handle, runner) = start_server();
    let instance = Instance::new(Platform::parse("chain\n2 3\n3 5\n").unwrap(), 5);

    let mut request = match instance_to_json(&instance) {
        Json::Obj(members) => members,
        _ => unreachable!(),
    };
    request.push(("verify".to_string(), Json::Bool(true)));
    let (status, body) = post(addr, "/solve", &Json::Obj(request).to_string());
    assert_eq!(status, 200, "{body}");

    let reply = Json::parse(&body).unwrap();
    assert_eq!(reply.get("makespan").and_then(Json::as_i64), Some(14));
    assert_eq!(reply.get("scheduled").and_then(Json::as_i64), Some(5));
    assert_eq!(reply.get("feasible").and_then(Json::as_bool), Some(true));

    // Everything except the appended verification flag must be exactly
    // the wire encoding of the direct library solve.
    let direct = SolverRegistry::global().solve("optimal", &instance).unwrap();
    let mut members = match reply {
        Json::Obj(members) => members,
        _ => panic!("object expected"),
    };
    assert_eq!(members.pop().map(|(k, _)| k), Some("feasible".to_string()));
    assert_eq!(Json::Obj(members), solution_to_json(&direct));

    // The deadline (T_lim) variant rides the same endpoint.
    let (status, body) = post(
        addr,
        "/solve",
        r#"{"platform": "chain\n2 3\n3 5\n", "tasks": 9, "deadline": 14, "verify": true}"#,
    );
    assert_eq!(status, 200, "{body}");
    let reply = Json::parse(&body).unwrap();
    assert_eq!(reply.get("scheduled").and_then(Json::as_i64), Some(5));
    assert!(reply.get("makespan").and_then(Json::as_i64).unwrap() <= 14);

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn wire_layer_rejects_bad_bodies_with_structured_4xx() {
    let (addr, handle, runner) = start_server();

    // Not JSON at all.
    let (status, body) = post(addr, "/solve", "{{{never json");
    assert_eq!(status, 400, "{body}");
    assert_eq!(error_kind_of(&body), "bad-json");

    // Valid JSON, not a valid instance.
    for bad in [
        "{}",
        r#"{"platform": 7, "tasks": 3}"#,
        r#"{"platform": "chain\n2 3\n", "tasks": 0}"#,
        r#"{"platform": "ring\n2 3\n", "tasks": 3}"#,
        r#"{"platform": "chain\n2 3\n"}"#,
    ] {
        let (status, body) = post(addr, "/solve", bad);
        assert_eq!(status, 400, "{bad} -> {body}");
        assert_eq!(error_kind_of(&body), "bad-instance", "{bad}");
    }

    // Unknown solver names are a structured 404.
    let (status, body) =
        post(addr, "/solve", r#"{"platform": "chain\n2 3\n", "tasks": 3, "solver": "nope"}"#);
    assert_eq!(status, 404, "{body}");
    assert_eq!(error_kind_of(&body), "unknown-solver");

    // Wrongly-typed option fields.
    let (status, body) =
        post(addr, "/solve", r#"{"platform": "chain\n2 3\n", "tasks": 3, "deadline": -4}"#);
    assert_eq!(status, 400);
    assert_eq!(error_kind_of(&body), "bad-request", "{body}");

    // Resource caps: a bare number must not buy unbounded work. The
    // default config caps tasks per instance and generated platform
    // sizes; exceeding either is a structured 400, not an allocation.
    let (status, body) =
        post(addr, "/solve", r#"{"platform": "chain\n2 3\n", "tasks": 100000000000}"#);
    assert_eq!(status, 400, "{body}");
    assert_eq!(error_kind_of(&body), "too-many-tasks");
    let (status, body) = post(
        addr,
        "/batch",
        r#"{"generate": {"kind": "chain", "count": 1, "size": 100000000000}}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert_eq!(error_kind_of(&body), "too-many-processors");
    let (status, body) = post(
        addr,
        "/batch",
        r#"{"generate": {"kind": "chain", "count": 1, "tasks": 100000000000}}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert_eq!(error_kind_of(&body), "too-many-tasks");
    let (status, body) = post(
        addr,
        "/batch",
        r#"{"instances": [{"platform": "chain\n2 3\n", "tasks": 100000000000}]}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert_eq!(error_kind_of(&body), "too-many-tasks");

    // A declared body that never arrives: truncated, answered 400, no
    // hang (the request helper enforces a read timeout).
    let (status, body) =
        raw_request(addr, b"POST /solve HTTP/1.1\r\nContent-Length: 400\r\n\r\n{\"plat", true);
    assert_eq!(status, 400, "{body}");

    // A body bigger than the cap is refused up front.
    let (status, body) =
        raw_request(addr, b"POST /solve HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n", true);
    assert_eq!(status, 413, "{body}");

    // Empty and non-HTTP requests answer 400 instead of wedging a
    // handler thread.
    let (status, _) = raw_request(addr, b"\r\n\r\n", true);
    assert_eq!(status, 400);
    let (status, _) = raw_request(addr, b"FROB / SPDY/3\r\n\r\n", true);
    assert_eq!(status, 400);

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn batch_endpoint_sweeps_generates_and_verifies() {
    let (addr, handle, runner) = start_server();

    let (status, body) = post(
        addr,
        "/batch",
        r#"{"generate": {"kind": "chain", "count": 64, "size": 3, "tasks": 6},
            "verify": true}"#,
    );
    assert_eq!(status, 200, "{body}");
    let reply = Json::parse(&body).unwrap();
    assert_eq!(reply.get("count").and_then(Json::as_i64), Some(64));
    assert_eq!(reply.get("solved").and_then(Json::as_i64), Some(64));
    assert_eq!(reply.get("failed").and_then(Json::as_i64), Some(0));
    assert_eq!(reply.get("infeasible").and_then(Json::as_i64), Some(0));
    assert_eq!(reply.get("verified").and_then(Json::as_bool), Some(true));
    assert!(reply.get("results").is_none(), "results only on request");

    // Explicit instance lists with results; entries match direct solves.
    let fig2 = Instance::new(Platform::parse("chain\n2 3\n3 5\n").unwrap(), 5);
    let body_json = Json::obj([
        ("instances", Json::Arr(vec![instance_to_json(&fig2)])),
        ("include_results", Json::Bool(true)),
    ]);
    let (status, body) = post(addr, "/batch", &body_json.to_string());
    assert_eq!(status, 200, "{body}");
    let reply = Json::parse(&body).unwrap();
    let results = reply.get("results").unwrap().as_arr().unwrap();
    let direct = SolverRegistry::global().solve("optimal", &fig2).unwrap();
    assert_eq!(results, [solution_to_json(&direct)]);

    // Caps and bad specs are structured 400s.
    let (status, body) =
        post(addr, "/batch", r#"{"generate": {"kind": "chain", "count": 999999999}}"#);
    assert_eq!(status, 400);
    assert_eq!(error_kind_of(&body), "too-many-instances");
    for bad in [
        r#"{"generate": {"kind": "ring", "count": 2}}"#,
        r#"{"generate": {"kind": "chain", "count": 0}}"#,
        r#"{"generate": {"kind": "chain", "count": 2, "profile": "alien"}}"#,
        r#"{"generate": {"count": 2}}"#,
        r#"{"instances": 3}"#,
        r#"{}"#,
    ] {
        let (status, _) = post(addr, "/batch", bad);
        assert_eq!(status, 400, "{bad}");
    }
    let (status, body) =
        post(addr, "/batch", r#"{"generate": {"kind": "chain", "count": 2}, "solver": "nope"}"#);
    assert_eq!(status, 404);
    assert_eq!(error_kind_of(&body), "unknown-solver");

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn thirty_two_concurrent_clients_match_direct_batch_results() {
    let (addr, handle, runner) = start_server();

    // A mixed fleet, solved directly through the library Batch engine...
    let instances: Vec<Instance> = (0..32)
        .map(|seed| {
            let kind = TopologyKind::ALL[(seed % 3) as usize];
            Instance::generate(
                kind,
                HeterogeneityProfile::ALL[(seed % 5) as usize],
                seed,
                1 + (seed % 4) as usize,
                1 + (seed % 6) as usize,
            )
        })
        .collect();
    let direct = Batch::default().solve_all(&instances);

    // ...and concurrently over HTTP by 32 clients, one instance each.
    std::thread::scope(|scope| {
        let handles: Vec<_> = instances
            .iter()
            .zip(&direct)
            .map(|(instance, expected)| {
                scope.spawn(move || {
                    let mut request = match instance_to_json(instance) {
                        Json::Obj(members) => members,
                        _ => unreachable!(),
                    };
                    request.push(("verify".to_string(), Json::Bool(true)));
                    let (status, body) = post(addr, "/solve", &Json::Obj(request).to_string());
                    assert_eq!(status, 200, "{instance}: {body}");
                    let mut members = match Json::parse(&body).unwrap() {
                        Json::Obj(members) => members,
                        _ => panic!("object expected"),
                    };
                    assert_eq!(members.pop().map(|(k, _)| k), Some("feasible".to_string()));
                    let expected = expected.as_ref().expect("fleet solves cleanly");
                    // The service solves the *canonical* form of the
                    // instance (the solution-cache key) and restores it,
                    // so tie-breaks may legitimately differ from a
                    // direct solve of the raw instance. The contract is
                    // semantic: same optimal makespan, same task count,
                    // and a witness the oracle accepted against the
                    // original instance (the "feasible" flag above).
                    let served = Json::Obj(members);
                    assert_eq!(
                        served.get("makespan").and_then(Json::as_i64),
                        Some(expected.makespan()),
                        "served makespan diverges from the direct Batch result for {instance}"
                    );
                    assert_eq!(
                        served.get("scheduled").and_then(Json::as_i64),
                        Some(expected.n() as i64),
                        "served task count diverges from the direct Batch result for {instance}"
                    );
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });

    // The metrics saw all 32 solves.
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let metrics = Json::parse(&body).unwrap();
    assert!(metrics.get("solved_total").and_then(Json::as_i64).unwrap() >= 32, "{body}");

    handle.shutdown();
    let report = runner.join().unwrap();
    assert!(report.solved >= 32);
}

/// Reads exactly one HTTP response (headers + `Content-Length` body)
/// off a keep-alive stream.
fn read_one_response(stream: &mut TcpStream) -> (u16, String, String) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("response head");
        head.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&head).to_string();
    let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("length header")
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).expect("response body");
    (status, head, String::from_utf8_lossy(&body).to_string())
}

#[test]
fn keep_alive_stream_reuse_matches_fresh_connections() {
    let (addr, handle, runner) = start_server();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();

    // Three sequential solves over ONE TcpStream.
    let mut makespans = Vec::new();
    for tasks in [1, 3, 5] {
        let body = format!(r#"{{"platform": "chain\n2 3\n3 5\n", "tasks": {tasks}}}"#);
        write!(
            stream,
            "POST /solve HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("send over reused stream");
        let (status, head, body) = read_one_response(&mut stream);
        assert_eq!(status, 200, "{body}");
        assert!(head.contains("Connection: keep-alive"), "{head}");
        makespans.push(Json::parse(&body).unwrap().get("makespan").unwrap().as_i64().unwrap());
    }
    assert_eq!(makespans, vec![5, 10, 14], "reused connections solve like fresh ones");

    // An explicit close is honoured.
    write!(stream, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
    let (status, head, _) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "{head}");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("EOF after close");
    assert!(rest.is_empty(), "server must close after Connection: close");

    handle.shutdown();
    let report = runner.join().unwrap();
    assert_eq!(report.connections, 1, "all four requests shared one connection");
    assert_eq!(report.requests, 4);
}

#[test]
fn per_request_registries_pin_tenant_solver_sets() {
    let config_text = r#"{
        "default": {"solvers": [{"solver": "random", "name": "random-7", "seed": 7}]},
        "registries": {
            "lean": {"base": "empty", "solvers": [
                {"solver": "optimal"},
                {"solver": "alias", "name": "best", "target": "optimal"}
            ]}
        }
    }"#;
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        registries: Some(RegistrySet::parse(config_text).expect("valid config")),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run().expect("server run"));

    // The default registry gained the configured overlay solver.
    let (status, body) = get(addr, "/solvers");
    assert_eq!(status, 200);
    let listing = Json::parse(&body).unwrap();
    let names: Vec<&str> = listing
        .get("solvers")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|s| s.get("name").unwrap().as_str().unwrap())
        .collect();
    assert!(names.contains(&"random-7"), "{names:?}");
    let registries = listing.get("registries").unwrap().as_arr().unwrap();
    assert_eq!(registries, [Json::str("lean")]);

    // The tenant view lists exactly its pinned set.
    let (status, body) = get(addr, "/solvers?registry=lean");
    assert_eq!(status, 200, "{body}");
    let listing = Json::parse(&body).unwrap();
    let names: Vec<&str> = listing
        .get("solvers")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|s| s.get("name").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(names, ["optimal", "best"]);

    // Solving through the tenant registry: aliases resolve...
    let (status, body) = post(
        addr,
        "/solve",
        r#"{"platform": "chain\n2 3\n3 5\n", "tasks": 5, "solver": "best",
            "registry": "lean", "verify": true}"#,
    );
    assert_eq!(status, 200, "{body}");
    let reply = Json::parse(&body).unwrap();
    assert_eq!(reply.get("makespan").and_then(Json::as_i64), Some(14));
    assert_eq!(reply.get("feasible").and_then(Json::as_bool), Some(true));

    // ...unpinned solvers do not exist for the tenant...
    let (status, body) = post(
        addr,
        "/solve",
        r#"{"platform": "chain\n2 3\n3 5\n", "tasks": 5, "solver": "eager", "registry": "lean"}"#,
    );
    assert_eq!(status, 404, "{body}");
    assert_eq!(error_kind_of(&body), "unknown-solver");

    // ...but still exist in the default registry.
    let (status, _) =
        post(addr, "/solve", r#"{"platform": "chain\n2 3\n3 5\n", "tasks": 5, "solver": "eager"}"#);
    assert_eq!(status, 200);

    // Unknown registries are a structured 404, on /batch too.
    let (status, body) =
        post(addr, "/batch", r#"{"generate": {"kind": "chain", "count": 2}, "registry": "nope"}"#);
    assert_eq!(status, 404, "{body}");
    assert_eq!(error_kind_of(&body), "unknown-registry");
    let (status, body) = get(addr, "/solvers?registry=nope");
    assert_eq!(status, 404, "{body}");
    assert_eq!(error_kind_of(&body), "unknown-registry");

    // A tenant /batch sweep solves through the pinned set.
    let (status, body) = post(
        addr,
        "/batch",
        r#"{"generate": {"kind": "spider", "count": 16, "size": 3, "tasks": 5},
            "registry": "lean", "solver": "best", "verify": true}"#,
    );
    assert_eq!(status, 200, "{body}");
    let reply = Json::parse(&body).unwrap();
    assert_eq!(reply.get("solved").and_then(Json::as_i64), Some(16));
    assert_eq!(reply.get("infeasible").and_then(Json::as_i64), Some(0));

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn exact_tree_solves_serve_checkable_witnesses() {
    use master_slave_tasking::api::wire::tree_schedule_from_json;
    let (addr, handle, runner) = start_server();

    let (status, body) = post(
        addr,
        "/solve",
        r#"{"platform": "tree\nnode 0 1 9\nnode 1 1 3\nnode 1 1 3\n", "tasks": 5,
            "solver": "exact", "verify": true}"#,
    );
    assert_eq!(status, 200, "{body}");
    let reply = Json::parse(&body).unwrap();
    assert_eq!(reply.get("witnessed").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("feasible").and_then(Json::as_bool), Some(true));
    let schedule = reply.get("schedule").unwrap();
    assert_eq!(schedule.get("repr").and_then(Json::as_str), Some("tree"));
    // The served witness reconstructs losslessly and re-verifies
    // client-side against the platform.
    let decoded = tree_schedule_from_json(schedule).unwrap();
    let tree = mst_platform::Tree::from_triples(&[(0, 1, 9), (1, 1, 3), (1, 1, 3)]).unwrap();
    let report = mst_schedule::check_tree(&tree, &decoded);
    report.assert_feasible();
    assert_eq!(Some(report.makespan), reply.get("makespan").and_then(Json::as_i64));

    handle.shutdown();
    runner.join().unwrap();
}

/// The `--io threads` fallback drives the exact same [`Service`]
/// boundary as the event loop: the full request surface — reads,
/// solves, keep-alive reuse, structured errors, half-closed sockets —
/// must behave identically on both transports.
#[test]
fn the_threads_fallback_transport_serves_the_same_api() {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        io: mst_serve::IoModel::Threads,
        conn_threads: 8,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run().expect("server run"));

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");

    // Same solve, same wire answer as the event transport.
    let (status, body) =
        post(addr, "/solve", r#"{"platform": "chain\n2 3\n3 5\n", "tasks": 5, "verify": true}"#);
    assert_eq!(status, 200, "{body}");
    let reply = Json::parse(&body).unwrap();
    assert_eq!(reply.get("makespan").and_then(Json::as_i64), Some(14));
    assert_eq!(reply.get("feasible").and_then(Json::as_bool), Some(true));

    // Keep-alive reuse works on the thread-per-connection path too.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    for tasks in [1, 3] {
        let body = format!(r#"{{"platform": "chain\n2 3\n3 5\n", "tasks": {tasks}}}"#);
        write!(
            stream,
            "POST /solve HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let (status, head, _) = read_one_response(&mut stream);
        assert_eq!(status, 200);
        assert!(head.contains("Connection: keep-alive"), "{head}");
    }
    drop(stream);

    // Structured errors and half-closed clients behave the same.
    let (status, body) = post(addr, "/solve", "{{{never json");
    assert_eq!(status, 400, "{body}");
    assert_eq!(error_kind_of(&body), "bad-json");
    let (status, body) = get(addr, "/nope");
    assert_eq!(status, 404);
    assert_eq!(error_kind_of(&body), "not-found");
    let solve = r#"{"platform": "chain\n2 3\n3 5\n", "tasks": 5}"#;
    let raw = format!(
        "POST /solve HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{solve}",
        solve.len()
    );
    let (status, body) = raw_request(addr, raw.as_bytes(), true);
    assert_eq!(status, 200, "half-closed client still answered: {body}");
    assert!(body.contains("\"makespan\":14"), "{body}");

    handle.shutdown();
    let report = runner.join().expect("threads transport joins cleanly");
    assert!(report.requests >= 6, "{report:?}");
}

#[test]
fn graceful_shutdown_drains_and_joins_every_thread() {
    let (addr, handle, runner) = start_server();
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);

    handle.shutdown();
    // `run` only returns once the accept loop stopped and every handler
    // thread joined — a stuck thread would hang this join (and the
    // test harness would flag it), not leak silently.
    let report = runner.join().expect("no stuck threads");
    assert_eq!(report.connections, 1);
    assert_eq!(report.requests, 1);

    // A second shutdown is a no-op, and the handle stays usable.
    handle.shutdown();
    assert!(handle.state().shutdown_requested());
    assert_eq!(handle.addr(), addr);
}
