//! Failure injection: mutate feasible schedules and check that the two
//! independent validators (the pairwise Definition-1 oracle and the
//! event-driven replay) agree on every mutant.
//!
//! This is a test of the *testing machinery itself*: if the oracle and
//! the simulator ever disagree on a schedule's feasibility, one of them
//! misimplements the model and every optimality validation in the
//! workspace becomes suspect.

use master_slave_tasking::prelude::*;
use mst_core::schedule_chain;
use mst_schedule::schedule::ChainSchedule as CS;
use mst_schedule::{check_chain, CommVector, TaskAssignment};
use mst_sim::replay_chain;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Applies one random structural mutation to a schedule; returns `None`
/// when the mutation is a no-op (e.g. zero shift).
fn mutate(schedule: &CS, chain: &Chain, rng: &mut StdRng) -> Option<CS> {
    if schedule.is_empty() {
        return None;
    }
    let mut tasks: Vec<TaskAssignment> = schedule.tasks().to_vec();
    let victim = rng.gen_range(0..tasks.len());
    let t = &tasks[victim];
    match rng.gen_range(0..4) {
        // Shift one emission by a small delta.
        0 => {
            let link = rng.gen_range(1..=t.proc);
            let delta = *[-3i64, -2, -1, 1, 2, 3].get(rng.gen_range(0usize..6)).expect("index");
            let mut times = t.comms.times().to_vec();
            times[link - 1] += delta;
            tasks[victim] = TaskAssignment::new(t.proc, t.start, CommVector::new(times), t.work);
        }
        // Shift the execution start.
        1 => {
            let delta = *[-3i64, -2, -1, 1, 2, 3].get(rng.gen_range(0usize..6)).expect("index");
            tasks[victim] = TaskAssignment::new(t.proc, t.start + delta, t.comms.clone(), t.work);
        }
        // Truncate the route: run the task one hop earlier, keeping times.
        2 => {
            if t.proc < 2 {
                return None;
            }
            let new_proc = t.proc - 1;
            let times = t.comms.times()[..new_proc].to_vec();
            tasks[victim] =
                TaskAssignment::new(new_proc, t.start, CommVector::new(times), chain.w(new_proc));
        }
        // Duplicate a task verbatim (guaranteed resource conflicts).
        _ => {
            let clone = t.clone();
            tasks.push(clone);
        }
    }
    tasks.sort_by_key(|t| t.comms.first());
    Some(CS::new(tasks))
}

#[test]
fn oracle_and_replay_agree_on_mutants() {
    let mut rng = StdRng::seed_from_u64(2003);
    let mut checked = 0;
    let mut rejected = 0;
    for seed in 0..30u64 {
        let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
        let chain = g.chain(1 + (seed % 5) as usize);
        let n = 2 + (seed % 7) as usize;
        let base = schedule_chain(&chain, n);
        for _ in 0..40 {
            let Some(mutant) = mutate(&base, &chain, &mut rng) else { continue };
            let oracle_ok = check_chain(&chain, &mutant).is_feasible();
            let replay_ok = replay_chain(&chain, &mutant).is_ok();
            assert_eq!(oracle_ok, replay_ok, "oracle and replay disagree (seed {seed}):\n{mutant}");
            checked += 1;
            if !oracle_ok {
                rejected += 1;
            }
        }
    }
    assert!(checked > 500, "mutation harness produced too few mutants ({checked})");
    // Small perturbations of tight optimal schedules are almost always
    // infeasible; if most mutants pass, the mutator is too gentle to
    // exercise the validators.
    assert!(rejected * 2 > checked, "only {rejected}/{checked} mutants were rejected");
}

#[test]
fn duplicated_tasks_are_always_caught() {
    for seed in 0..10u64 {
        let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
        let chain = g.chain(1 + (seed % 4) as usize);
        let base = schedule_chain(&chain, 3);
        let mut tasks = base.tasks().to_vec();
        tasks.push(tasks[0].clone());
        tasks.sort_by_key(|t| t.comms.first());
        let mutant = CS::new(tasks);
        assert!(!check_chain(&chain, &mutant).is_feasible(), "seed {seed}");
        assert!(replay_chain(&chain, &mutant).is_err(), "seed {seed}");
    }
}

#[test]
fn single_tick_tightening_breaks_optimal_schedules() {
    // Optimal schedules are tight: advancing the LAST task's execution by
    // one tick must always break something (otherwise the makespan could
    // improve, contradicting Theorem 1's validated optimality).
    for seed in 0..20u64 {
        let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
        let chain = g.chain(1 + (seed % 5) as usize);
        let n = 1 + (seed % 6) as usize;
        let base = schedule_chain(&chain, n);
        let last_end = base.makespan();
        let mut tasks = base.tasks().to_vec();
        // Find a task finishing at the makespan and pull it one tick in.
        let idx = tasks.iter().position(|t| t.end() == last_end).expect("some task ends last");
        let t = &tasks[idx];
        tasks[idx] = TaskAssignment::new(t.proc, t.start - 1, t.comms.clone(), t.work);
        let mutant = CS::new(tasks);
        // It may *occasionally* stay feasible (the last task had slack in
        // front of it only if the schedule could be compressed, which
        // optimality forbids when it is the unique argmax... it is not
        // always unique, so only assert agreement of the two validators).
        let oracle_ok = check_chain(&chain, &mutant).is_feasible();
        let replay_ok = replay_chain(&chain, &mutant).is_ok();
        assert_eq!(oracle_ok, replay_ok, "seed {seed}");
    }
}
