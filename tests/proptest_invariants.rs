//! Property-based tests over the core data structures and algorithms.
//!
//! Strategies draw random platforms and task counts; the properties are
//! the paper's invariants:
//!
//! * Definition 3 is a total order (antisymmetric, transitive, total);
//! * the chain algorithm always emits feasible, normalised schedules;
//! * it never loses to any forward heuristic and exactly matches the
//!   exhaustive optimum on small instances (Theorem 1);
//! * deadline schedules are suffix-closed and deadline-monotone;
//! * Jackson's incremental set agrees with the from-scratch checker;
//! * the fast candidate front is bit-identical to the reference.

use mst_baselines::{asap_chain, eager_chain, optimal_chain_makespan};
use mst_core::{schedule_chain, schedule_chain_by_deadline, schedule_chain_fast};
use mst_fork::jackson::{feasible, EddSet, Item};
use mst_platform::{Chain, Spider, Time};
use mst_schedule::{check_chain, check_spider, CommVector};
use mst_spider::schedule_spider;
use proptest::prelude::*;

fn chain_strategy(max_p: usize) -> impl Strategy<Value = Chain> {
    prop::collection::vec((1i64..=8, 1i64..=8), 1..=max_p)
        .prop_map(|pairs| Chain::from_pairs(&pairs).expect("positive pairs"))
}

fn spider_strategy() -> impl Strategy<Value = Spider> {
    prop::collection::vec(prop::collection::vec((1i64..=6, 1i64..=6), 1..=3), 1..=3).prop_map(
        |legs| {
            let refs: Vec<&[(Time, Time)]> = legs.iter().map(|l| l.as_slice()).collect();
            Spider::from_legs(&refs).expect("positive legs")
        },
    )
}

fn comm_vector_strategy() -> impl Strategy<Value = CommVector> {
    prop::collection::vec(-20i64..=20, 1..=5).prop_map(CommVector::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn def3_order_is_total_and_lawful(
        a in comm_vector_strategy(),
        b in comm_vector_strategy(),
        c in comm_vector_strategy(),
    ) {
        use std::cmp::Ordering;
        // Totality + antisymmetry.
        let ab = a.def3_cmp(&b);
        let ba = b.def3_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        prop_assert_eq!(ab == Ordering::Equal, a == b);
        // Transitivity through sorting three elements.
        let mut v = [a.clone(), b.clone(), c.clone()];
        v.sort();
        for w in v.windows(2) {
            prop_assert!(w[0].def3_cmp(&w[1]) != Ordering::Greater);
        }
    }

    #[test]
    fn chain_schedules_are_feasible_and_normalised(
        chain in chain_strategy(6),
        n in 1usize..=10,
    ) {
        let s = schedule_chain(&chain, n);
        prop_assert_eq!(s.n(), n);
        prop_assert_eq!(s.start_time(), Some(0));
        let report = check_chain(&chain, &s);
        prop_assert!(report.is_feasible(), "{:?}", report.violations);
    }

    #[test]
    fn fast_variant_is_bit_identical(
        chain in chain_strategy(6),
        n in 1usize..=10,
    ) {
        prop_assert_eq!(schedule_chain_fast(&chain, n), schedule_chain(&chain, n));
    }

    #[test]
    fn algorithm_never_loses_to_eager(
        chain in chain_strategy(5),
        n in 1usize..=8,
    ) {
        prop_assert!(schedule_chain(&chain, n).makespan() <= eager_chain(&chain, n).makespan());
    }

    #[test]
    fn deadline_variant_is_monotone_and_safe(
        chain in chain_strategy(4),
        d1 in 0i64..=30,
        extra in 0i64..=15,
    ) {
        let s1 = schedule_chain_by_deadline(&chain, 50, d1);
        let s2 = schedule_chain_by_deadline(&chain, 50, d1 + extra);
        prop_assert!(s1.n() <= s2.n());
        for t in s1.tasks() {
            prop_assert!(t.end() <= d1);
            prop_assert!(t.comms.first() >= 0);
        }
    }

    #[test]
    fn deadline_schedules_are_suffix_closed(
        chain in chain_strategy(4),
        deadline in 5i64..=35,
        k in 0usize..=6,
    ) {
        let full = schedule_chain_by_deadline(&chain, 10, deadline);
        let partial = schedule_chain_by_deadline(&chain, k, deadline);
        let keep = k.min(full.n());
        prop_assert_eq!(partial.n(), keep);
        prop_assert_eq!(partial.tasks(), &full.tasks()[full.n() - keep..]);
    }

    #[test]
    fn jackson_incremental_matches_reference(
        deadline in 5i64..=40,
        items in prop::collection::vec((1i64..=6, 1i64..=25), 1..=10),
    ) {
        let mut set = EddSet::new(deadline);
        let mut kept: Vec<Item<()>> = Vec::new();
        for (comm, proc_time) in items {
            let item = Item { comm, proc_time, payload: () };
            let mut probe = kept.clone();
            probe.push(item);
            let expected = feasible(deadline, &probe);
            let got = set.try_insert(item);
            prop_assert_eq!(got, expected);
            if got {
                kept.push(item);
            }
        }
    }

    #[test]
    fn arbitrary_sequences_evaluate_feasibly(
        chain in chain_strategy(5),
        raw_seq in prop::collection::vec(0usize..5, 1..=10),
    ) {
        let p = chain.len();
        let seq: Vec<usize> = raw_seq.iter().map(|r| (r % p) + 1).collect();
        let s = asap_chain(&chain, &seq);
        let report = check_chain(&chain, &s);
        prop_assert!(report.is_feasible(), "{:?}", report.violations);
    }
}

proptest! {
    // Exhaustive-search-backed properties are pricier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn theorem1_on_random_small_instances(
        chain in chain_strategy(3),
        n in 1usize..=5,
    ) {
        prop_assert_eq!(
            schedule_chain(&chain, n).makespan(),
            optimal_chain_makespan(&chain, n)
        );
    }

    #[test]
    fn spider_schedules_are_feasible_and_exact_count(
        spider in spider_strategy(),
        n in 1usize..=6,
    ) {
        let (makespan, s) = schedule_spider(&spider, n);
        prop_assert_eq!(s.n(), n);
        let report = check_spider(&spider, &s);
        prop_assert!(report.is_feasible(), "{:?}", report.violations);
        prop_assert_eq!(s.makespan(), makespan);
    }
}
