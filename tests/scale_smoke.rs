//! Large-instance smoke tests: the polynomial algorithms must stay
//! correct (feasible, bound-respecting, replayable) and comfortably fast
//! well beyond the sizes the exhaustive validators can reach.

use master_slave_tasking::prelude::*;
use mst_baselines::bounds::chain_lower_bound;
use mst_core::schedule_chain_fast;
use mst_schedule::{check_chain, check_spider};
use mst_sim::{replay_chain, replay_spider};
use std::time::Instant;

#[test]
fn chain_at_scale_n2000_p64() {
    let chain = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 99).chain(64);
    let n = 2000;
    let started = Instant::now();
    let s = schedule_chain(&chain, n);
    let elapsed = started.elapsed();
    assert_eq!(s.n(), n);
    // O(n p^2) with tiny constants: seconds would indicate a regression.
    assert!(elapsed.as_secs() < 30, "scheduling took {elapsed:?}");

    check_chain(&chain, &s).assert_feasible();
    let trace = replay_chain(&chain, &s).expect("replays");
    assert_eq!(trace.end_time(), s.makespan());

    // Sandwiched between the analytic bound and the master-only pipeline.
    assert!(s.makespan() >= chain_lower_bound(&chain, n));
    assert!(s.makespan() <= chain.t_infinity(n));

    // The fast variant agrees bit for bit even at this size.
    assert_eq!(schedule_chain_fast(&chain, n), s);
}

#[test]
fn spider_at_scale_n500_8legs() {
    let spider = GeneratorConfig::new(HeterogeneityProfile::ALL[4], 7).spider(8, 2, 5);
    let n = 500;
    let started = Instant::now();
    let (makespan, s) = schedule_spider(&spider, n);
    let elapsed = started.elapsed();
    assert_eq!(s.n(), n);
    assert!(elapsed.as_secs() < 60, "spider scheduling took {elapsed:?}");

    check_spider(&spider, &s).assert_feasible();
    let trace = replay_spider(&spider, &s).expect("replays");
    assert_eq!(trace.end_time(), makespan);
    assert!(makespan <= spider.makespan_upper_bound(n));
}

#[test]
fn deadline_variant_at_scale_counts_thousands() {
    let chain = GeneratorConfig::new(HeterogeneityProfile::ComputeBound, 3).chain(32);
    // A generous deadline admits a large batch; the count must stay
    // consistent with re-solving the makespan for that exact batch.
    let deadline = 4000;
    let s = schedule_chain_by_deadline(&chain, 100_000, deadline);
    assert!(s.n() > 500, "expected a large batch, got {}", s.n());
    check_chain(&chain, &s).assert_feasible();
    for t in s.tasks().iter().step_by(97) {
        assert!(t.end() <= deadline);
    }
    // Optimality linkage: the n-task optimum fits the deadline, and
    // n + 1 tasks do not.
    let n = s.n();
    assert!(schedule_chain(&chain, n).makespan() <= deadline);
    assert!(schedule_chain(&chain, n + 1).makespan() > deadline);
}
