//! The validation triangle on randomized instances:
//!
//! ```text
//!    backward algorithm  ==  exhaustive optimum        (Theorems 1 & 3)
//!    analytic schedule   ==  pairwise oracle == replay (Definition 1)
//! ```
//!
//! Every arrow is checked on seeded random platforms across all
//! heterogeneity profiles.

use master_slave_tasking::prelude::*;
use mst_baselines::{
    eager_chain, master_only_chain, max_tasks_by_deadline, optimal_chain_makespan,
    round_robin_chain,
};
use mst_platform::Tree;
use mst_schedule::{check_chain, check_spider, gantt, metrics};
use mst_sim::{replay_chain, replay_spider};

fn profiles(seed: u64) -> HeterogeneityProfile {
    HeterogeneityProfile::ALL[(seed % 5) as usize]
}

#[test]
fn chain_triangle_holds_across_profiles() {
    for seed in 0..80u64 {
        let g = GeneratorConfig::new(profiles(seed), seed);
        let chain = g.chain(1 + (seed % 6) as usize);
        let n = 1 + (seed % 10) as usize;
        let schedule = schedule_chain(&chain, n);

        // Oracle.
        check_chain(&chain, &schedule).assert_feasible();
        // Replay.
        let trace = replay_chain(&chain, &schedule)
            .unwrap_or_else(|e| panic!("seed {seed}: replay failed: {e}"));
        assert_eq!(trace.end_time(), schedule.makespan(), "seed {seed}");
        assert_eq!(trace.completed_tasks(), n, "seed {seed}");
        // Rendering never conflicts on a feasible schedule.
        assert!(!gantt::render_chain(&chain, &schedule).contains('#'), "seed {seed}");
    }
}

#[test]
fn chain_optimality_against_exhaustive_small() {
    for seed in 0..50u64 {
        let g = GeneratorConfig::new(profiles(seed), seed * 7 + 1);
        let chain = g.chain(1 + (seed % 4) as usize);
        let n = 1 + (seed % 6) as usize;
        let algo = schedule_chain(&chain, n).makespan();
        let exact = optimal_chain_makespan(&chain, n);
        assert_eq!(algo, exact, "seed {seed}, chain {chain}, n {n}");
    }
}

#[test]
fn spider_triangle_holds_across_profiles() {
    for seed in 0..50u64 {
        let g = GeneratorConfig::new(profiles(seed), seed);
        let spider = g.spider(1 + (seed % 4) as usize, 1, 3);
        let n = 1 + (seed % 8) as usize;
        let (makespan, schedule) = schedule_spider(&spider, n);

        check_spider(&spider, &schedule).assert_feasible();
        let trace = replay_spider(&spider, &schedule)
            .unwrap_or_else(|e| panic!("seed {seed}: replay failed: {e}"));
        assert_eq!(trace.end_time(), makespan, "seed {seed}");
        assert_eq!(trace.completed_tasks(), n, "seed {seed}");
        assert!(!gantt::render_spider(&spider, &schedule).contains('#'), "seed {seed}");
    }
}

#[test]
fn spider_count_optimality_against_exhaustive_small() {
    for seed in 0..30u64 {
        let g = GeneratorConfig::new(profiles(seed), seed * 3 + 2);
        let spider = g.spider(1 + (seed % 3) as usize, 1, 2);
        let tree = Tree::from_spider(&spider);
        for deadline in [5, 11, 17] {
            let algo = mst_spider::schedule_spider_by_deadline(&spider, 4, deadline).n();
            let exact = max_tasks_by_deadline(&tree, deadline, 4);
            assert_eq!(algo, exact, "seed {seed}, deadline {deadline}");
        }
    }
}

#[test]
fn heuristics_bracket_the_optimum() {
    for seed in 0..40u64 {
        let g = GeneratorConfig::new(profiles(seed), seed + 11);
        let chain = g.chain(1 + (seed % 5) as usize);
        let n = 1 + (seed % 9) as usize;
        let opt = schedule_chain(&chain, n).makespan();
        for s in
            [eager_chain(&chain, n), round_robin_chain(&chain, n), master_only_chain(&chain, n)]
        {
            assert!(s.makespan() >= opt, "seed {seed}");
            check_chain(&chain, &s).assert_feasible();
            // And they replay too — the simulator accepts any feasible
            // schedule, not only the optimal one.
            let trace = replay_chain(&chain, &s).expect("heuristic schedule replays");
            assert_eq!(trace.end_time(), s.makespan());
        }
    }
}

#[test]
fn metrics_are_consistent_with_schedules() {
    for seed in 0..30u64 {
        let g = GeneratorConfig::new(profiles(seed), seed + 23);
        let chain = g.chain(1 + (seed % 5) as usize);
        let n = 1 + (seed % 8) as usize;
        let s = schedule_chain(&chain, n);
        let m = metrics::chain_metrics(&chain, &s);
        assert_eq!(m.tasks, n);
        assert_eq!(m.makespan, s.makespan());
        assert_eq!(m.tasks_per_proc.iter().sum::<usize>(), n);
        // Busy time never exceeds the horizon per resource.
        for k in 1..=chain.len() {
            assert!(m.proc_busy[k - 1] <= m.makespan, "seed {seed}");
            assert!(m.link_busy[k - 1] <= m.makespan, "seed {seed}");
        }
    }
}

#[test]
fn instance_files_round_trip_through_schedulers() {
    use mst_platform::format::{parse, to_text, Instance};
    for seed in 0..20u64 {
        let g = GeneratorConfig::new(profiles(seed), seed + 31);
        let chain = g.chain(1 + (seed % 4) as usize);
        let text = to_text(&Instance::Chain(chain.clone()));
        let parsed = match parse(&text).expect("round trip") {
            Instance::Chain(c) => c,
            other => panic!("wrong topology {other:?}"),
        };
        // Scheduling the parsed instance gives identical results.
        assert_eq!(schedule_chain(&parsed, 5), schedule_chain(&chain, 5), "seed {seed}");
    }
}
