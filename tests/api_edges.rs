//! Edge-case coverage of the public API surface that the main test
//! suites exercise only incidentally.

use master_slave_tasking::prelude::*;
use mst_fork::jackson::EddSet;
use mst_fork::{max_tasks_fork_by_deadline, schedule_fork};
use mst_platform::presets;
use mst_platform::Fork;
use mst_schedule::metrics::spider_metrics;
use mst_schedule::CommVector as CV;

#[test]
fn comm_vector_conversions_and_hash() {
    use std::collections::HashSet;
    let v: CV = vec![1i64, 2, 3].into();
    assert_eq!(v, CV::new(vec![1, 2, 3]));
    let mut set = HashSet::new();
    set.insert(v.clone());
    set.insert(CV::new(vec![1, 2, 3]));
    assert_eq!(set.len(), 1, "equal vectors must hash equally");
    assert!(set.contains(&v));
}

#[test]
fn single_processor_platforms_across_all_apis() {
    // The smallest possible platform must work everywhere.
    let chain = Chain::from_pairs(&[(3, 4)]).unwrap();
    assert_eq!(schedule_chain(&chain, 1).makespan(), 7);
    let fork = Fork::from_pairs(&[(3, 4)]).unwrap();
    assert_eq!(schedule_fork(&fork, 1).0, 7);
    let spider = Spider::from_legs(&[&[(3, 4)]]).unwrap();
    assert_eq!(schedule_spider(&spider, 1).0, 7);
}

#[test]
fn empty_edd_set_reports_cleanly() {
    let set: EddSet<()> = EddSet::new(10);
    assert!(set.is_empty());
    assert_eq!(set.len(), 0);
    assert!(set.emission_times().is_empty());
    assert!(set.items().is_empty());
}

#[test]
fn zero_cap_fork_request_yields_empty_outcome() {
    let fork = Fork::from_pairs(&[(1, 1)]).unwrap();
    let out = max_tasks_fork_by_deadline(&fork, 0, 100);
    assert_eq!(out.n(), 0);
    assert!(out.schedule.is_empty());
}

#[test]
fn spider_metrics_on_empty_schedule() {
    let spider = presets::lab_federation(2);
    let m = spider_metrics(&spider, &mst_schedule::SpiderSchedule::empty());
    assert_eq!(m.tasks, 0);
    assert_eq!(m.master_port_busy, 0);
    assert_eq!(m.master_port_utilization(), 0.0);
    assert_eq!(m.tasks_per_leg, vec![0, 0]);
}

#[test]
fn presets_schedule_end_to_end() {
    // Every preset must be consumable by its natural scheduler.
    let chain = presets::layered_network(4);
    assert!(schedule_chain(&chain, 6).makespan() <= chain.t_infinity(6));

    let pool = presets::volunteer_pool(2, 3);
    let (makespan, out) = schedule_fork(&pool, 6);
    assert_eq!(out.n(), 6);
    assert!(makespan <= pool.makespan_upper_bound(6));

    let federation = presets::lab_federation(3);
    let (makespan, s) = schedule_spider(&federation, 6);
    assert_eq!(s.n(), 6);
    assert!(makespan <= federation.makespan_upper_bound(6));

    let cluster = presets::campus_cluster(4, 2, 2);
    // Homogeneous bus: with c == w the port saturates; n tasks take
    // about (n + 1) * c once the pipeline is full.
    let (makespan, _) = schedule_fork(&cluster, 8);
    assert_eq!(makespan, 2 * 8 + 2);
}

#[test]
fn one_task_deadline_edge_is_exact() {
    // The minimal completion c1 + w1 (or deeper) gates the first task.
    let chain = Chain::from_pairs(&[(2, 9), (1, 1)]).unwrap();
    // Best single task: via proc 2: 2 + 1 + 1 = 4.
    assert!(schedule_chain_by_deadline(&chain, 1, 3).is_empty());
    assert_eq!(schedule_chain_by_deadline(&chain, 1, 4).n(), 1);
    assert_eq!(schedule_chain(&chain, 1).makespan(), 4);
}

#[test]
fn gantt_glyphs_wrap_after_35_tasks() {
    use mst_schedule::gantt::render_chain;
    let chain = Chain::from_pairs(&[(1, 1)]).unwrap();
    let s = schedule_chain(&chain, 40);
    let chart = render_chain(&chain, &s);
    // Task 37 reuses glyph '1': no panic, no '#' conflicts.
    assert!(!chart.contains('#'));
    assert!(chart.contains('z'), "late tasks use letter glyphs");
}

// ---------------------------------------------------------------------------
// Unified-API edge cases (mst-api surface).
// ---------------------------------------------------------------------------

#[test]
fn unified_single_processor_platforms_across_all_solvers() {
    // The smallest possible platform must work through every applicable
    // registry solver — and they must all agree on a one-task makespan.
    let registry = SolverRegistry::with_defaults();
    let platforms = [
        Platform::chain(&[(3, 4)]).unwrap(),
        Platform::fork(&[(3, 4)]).unwrap(),
        Platform::spider(&[&[(3, 4)]]).unwrap(),
        Platform::tree(&[(0, 3, 4)]).unwrap(),
    ];
    for platform in platforms {
        let instance = Instance::new(platform, 1);
        for solver in registry.supporting(instance.kind()) {
            let solution = solver.solve(&instance).unwrap();
            if solution.is_witnessed() {
                assert_eq!(solution.makespan(), 7, "{} on {}", solver.name(), instance.kind());
            }
            assert!(verify(&instance, &solution).unwrap().is_feasible());
        }
    }
}

#[test]
fn unified_errors_are_precise() {
    let registry = SolverRegistry::with_defaults();
    let chain = Instance::new(Chain::paper_figure2(), 5);
    let tree = Instance::new(Tree::from_triples(&[(0, 1, 1)]).unwrap(), 1);

    assert!(matches!(
        registry.solve("does-not-exist", &chain),
        Err(SolveError::UnknownSolver { .. })
    ));
    assert!(matches!(
        registry.solve("divisible", &chain),
        Err(SolveError::UnsupportedTopology { .. })
    ));
    assert!(matches!(
        registry.solve("optimal", &Instance::new(Chain::paper_figure2(), 0)),
        Err(SolveError::ZeroTasks)
    ));
    assert!(matches!(
        registry.solve_by_deadline("eager", &chain, 10),
        Err(SolveError::DeadlineUnsupported { .. })
    ));
    assert!(matches!(
        registry.solve("chain-optimal", &tree),
        Err(SolveError::UnsupportedTopology { .. })
    ));
}

#[test]
fn unified_text_round_trip_through_instance() {
    for text in ["chain\n2 3\n3 5\n", "fork\n1 2\n3 4\n", "spider\nleg 2 3\nleg 1 4\n"] {
        let instance = Instance::parse(text, 3).unwrap();
        let reparsed = Platform::parse(&instance.platform.to_text()).unwrap();
        assert_eq!(reparsed, instance.platform);
    }
    assert!(Instance::parse("ring\n1 2\n", 3).is_err());
}

#[test]
fn zero_deadline_fits_nothing_across_topologies() {
    let registry = SolverRegistry::with_defaults();
    for text in ["chain\n2 3\n", "fork\n1 2\n", "spider\nleg 2 3\nleg 1 4\n"] {
        let instance = Instance::parse(text, 10).unwrap();
        let solution = registry.solve_by_deadline("optimal", &instance, 0).unwrap();
        assert_eq!(solution.n(), 0, "{text}");
        assert_eq!(solution.makespan(), 0);
        assert!(verify(&instance, &solution).unwrap().is_feasible());
    }
}
