//! Robustness tests of the epoll event transport (`--io event`, the
//! default): thousands of idle keep-alive connections must cost
//! nothing, hostile clients (slowloris header drips, one-byte writers,
//! half-closed and vanished sockets) must be contained by policy
//! rather than by luck, and the accept-loop overflow / streamed-batch
//! backpressure behaviors must survive any rebuild of the serving
//! core.

use master_slave_tasking::api::wire::Json;
use master_slave_tasking::prelude::*;
use mst_serve::IoModel;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Binds an event-transport server on an ephemeral port with the
/// given tweaks applied over the defaults.
fn start_with(
    tweak: impl FnOnce(&mut ServeConfig),
) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<mst_serve::ServeReport>) {
    let mut config = ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() };
    assert_eq!(config.io, IoModel::Event, "the event loop is the default transport");
    tweak(&mut config);
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, runner)
}

/// Reads one HTTP response (head + `Content-Length` body) off a
/// keep-alive stream; returns `(status, head, body)`.
fn read_one_response(stream: &mut TcpStream) -> (u16, String, String) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("response head");
        head.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&head).to_string();
    let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("length header")
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).expect("response body");
    (status, head, String::from_utf8_lossy(&body).to_string())
}

/// A keep-alive `POST /solve` request for the Figure-2 chain.
fn solve_request(tasks: usize) -> Vec<u8> {
    let body = format!(r#"{{"platform": "chain\n2 3\n3 5\n", "tasks": {tasks}}}"#);
    format!("POST /solve HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}", body.len())
        .into_bytes()
}

const KEEP_ALIVE_HEALTHZ: &[u8] = b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";

/// The acceptance bar of the event transport: 5,000 established idle
/// keep-alive connections — half the default `max_connections` — held
/// open simultaneously, while `/solve` latency through the same loop
/// stays bounded. A thread-per-connection transport would need 5,000
/// stacks for this; the event loop needs 5,000 idle slab entries.
#[test]
fn five_thousand_idle_keep_alive_connections_leave_solves_fast() {
    let (addr, handle, runner) = start_with(|c| {
        // Long keep-alive so the herd stays *open* for the whole test
        // rather than being reaped while it builds up.
        c.keep_alive_timeout = Duration::from_secs(120);
    });

    // Establish the herd: each connection completes one real request
    // (so the server has seen it as a keep-alive client, not just an
    // accepted socket) and then goes idle.
    let mut herd = Vec::with_capacity(5_000);
    for i in 0..5_000 {
        let mut stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("conn {i}: {e}"));
        stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
        stream.write_all(KEEP_ALIVE_HEALTHZ).unwrap_or_else(|e| panic!("conn {i}: {e}"));
        herd.push(stream);
        // Reading the replies in batches keeps the handshake phase
        // pipelined instead of ping-ponging 5,000 times.
        if herd.len() % 500 == 0 {
            let from = herd.len() - 500;
            for (j, stream) in herd.iter_mut().enumerate().skip(from) {
                let (status, head, _) = read_one_response(stream);
                assert_eq!(status, 200, "conn {j}");
                assert!(head.contains("Connection: keep-alive"), "conn {j}: {head}");
            }
        }
    }
    assert_eq!(herd.len(), 5_000);

    // With the herd idling, solve latency through the same event loop
    // must stay bounded: every request answered well within a second,
    // not queued behind 5,000 parked sockets.
    let mut stream = TcpStream::connect(addr).expect("solver connection");
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut worst = Duration::ZERO;
    for round in 0..20 {
        let begun = Instant::now();
        stream.write_all(&solve_request(5)).unwrap();
        let (status, _, body) = read_one_response(&mut stream);
        let took = begun.elapsed();
        worst = worst.max(took);
        assert_eq!(status, 200, "round {round}: {body}");
        assert_eq!(
            Json::parse(&body).unwrap().get("makespan").and_then(Json::as_i64),
            Some(14),
            "round {round}"
        );
        assert!(took < Duration::from_secs(2), "round {round} took {took:?} with 5k idle conns");
    }

    // The herd is still alive: a sample of parked connections can
    // still issue a request after the solve burst.
    for i in [0usize, 2_499, 4_999] {
        herd[i].write_all(KEEP_ALIVE_HEALTHZ).unwrap_or_else(|e| panic!("parked conn {i}: {e}"));
        let (status, _, _) = read_one_response(&mut herd[i]);
        assert_eq!(status, 200, "parked conn {i} died while idling");
    }

    drop(herd);
    handle.shutdown();
    let report = runner.join().expect("event loop joins with a 5k-conn herd");
    assert!(report.connections >= 5_001, "report: {report:?}");
    assert!(worst < Duration::from_secs(2), "worst solve {worst:?}");
}

#[test]
fn slow_header_drips_get_408_while_other_clients_are_served() {
    let (addr, handle, runner) = start_with(|c| {
        c.io_timeout = Duration::from_millis(300);
    });

    // The slowloris peer: drip a valid-looking request head a few
    // bytes at a time, never finishing it. The io_timeout is armed
    // when the request starts — continued dripping must NOT reset it.
    let mut slow = TcpStream::connect(addr).expect("connect");
    slow.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    slow.write_all(b"POST /solve HTTP/1.1\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(120));
    slow.write_all(b"Host: sl").unwrap();
    std::thread::sleep(Duration::from_millis(120));
    let _ = slow.write_all(b"owloris\r\nConte"); // may race the 408

    // Meanwhile ordinary clients are not blocked behind the drip.
    let mut ok = TcpStream::connect(addr).expect("connect");
    ok.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    ok.write_all(&solve_request(3)).unwrap();
    let (status, _, body) = read_one_response(&mut ok);
    assert_eq!(status, 200, "{body}");

    // The dripper is answered 408 and closed, within a small multiple
    // of the configured io_timeout rather than at the server's leisure.
    let waited = Instant::now();
    let mut reply = Vec::new();
    slow.read_to_end(&mut reply).expect("the server answers or closes, never hangs");
    let reply = String::from_utf8_lossy(&reply);
    assert!(reply.starts_with("HTTP/1.1 408"), "{reply}");
    assert!(reply.contains("Connection: close"), "{reply}");
    assert!(waited.elapsed() < Duration::from_secs(5), "408 took {:?}", waited.elapsed());

    handle.shutdown();
    runner.join().expect("no stuck slowloris state");
}

#[test]
fn one_byte_writes_parse_like_a_single_write() {
    let (addr, handle, runner) = start_with(|_| {});

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    // Head and body arrive one byte per syscall — maximal fragmentation
    // of the read path, still one request.
    for byte in solve_request(5) {
        stream.write_all(&[byte]).expect("byte write");
    }
    let (status, _, body) = read_one_response(&mut stream);
    assert_eq!(status, 200, "{body}");
    assert_eq!(Json::parse(&body).unwrap().get("makespan").and_then(Json::as_i64), Some(14));

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn half_closed_clients_still_get_their_answer() {
    let (addr, handle, runner) = start_with(|_| {});

    // The client half-closes after sending a complete keep-alive
    // request (no `Connection: close` header): FIN while the solve is
    // in flight means "no more requests", not "discard my answer".
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    stream.write_all(&solve_request(5)).unwrap();
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("full response after FIN");
    let reply = String::from_utf8_lossy(&reply);
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    assert!(reply.contains("\"makespan\":14"), "{reply}");

    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn streamed_batches_absorb_slow_consumers_and_vanished_ones() {
    let (addr, handle, runner) = start_with(|c| {
        // A tiny high-water mark so the mailbox backpressure (not
        // buffering) is what carries a slow reader.
        c.stream_high_water = 4 * 1024;
    });
    let request_body = r#"{"generate": {"kind": "chain", "count": 256, "size": 3, "tasks": 5},
                           "stream": true}"#;
    let raw = format!(
        "POST /batch HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{request_body}",
        request_body.len()
    );

    // A slow consumer: read the chunked NDJSON stream in small sips.
    // Backpressure must pace the producer without corrupting the
    // stream or dropping lines.
    let mut slow = TcpStream::connect(addr).expect("connect");
    slow.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    slow.write_all(raw.as_bytes()).unwrap();
    let mut reply = Vec::new();
    let mut sip = [0u8; 512];
    loop {
        match slow.read(&mut sip) {
            Ok(0) => break,
            Ok(n) => {
                reply.extend_from_slice(&sip[..n]);
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => panic!("mid-stream read failed: {e}"),
        }
    }
    let reply = String::from_utf8_lossy(&reply);
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    assert!(reply.contains("Transfer-Encoding: chunked"), "{reply}");
    assert!(reply.contains("0\r\n\r\n"), "stream must terminate: {reply}");
    assert_eq!(reply.matches("\"makespan\"").count(), 256, "every instance line arrived");

    // A vanished consumer: start the same stream, read a little, then
    // disappear. The handler must observe the dead client and unwind
    // instead of solving into a void forever.
    let mut gone = TcpStream::connect(addr).expect("connect");
    gone.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    gone.write_all(raw.as_bytes()).unwrap();
    let mut first = [0u8; 1024];
    let n = gone.read(&mut first).expect("stream began");
    assert!(n > 0);
    drop(gone);

    // The server stays healthy after both consumers...
    let mut check = TcpStream::connect(addr).expect("connect");
    check.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    check.write_all(KEEP_ALIVE_HEALTHZ).unwrap();
    let (status, _, _) = read_one_response(&mut check);
    assert_eq!(status, 200);

    // ...and shutting down joins every thread — a handler wedged on a
    // vanished consumer would hang this join.
    handle.shutdown();
    runner.join().expect("no handler wedged on a dead stream");
}

#[test]
fn the_connection_cap_answers_503_with_retry_after_and_recovers() {
    let (addr, handle, runner) = start_with(|c| {
        c.max_connections = 2;
        c.keep_alive_timeout = Duration::from_secs(60);
    });

    // Fill the two slots with established keep-alive connections.
    let mut holders = Vec::new();
    for _ in 0..2 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
        stream.write_all(KEEP_ALIVE_HEALTHZ).unwrap();
        let (status, _, _) = read_one_response(&mut stream);
        assert_eq!(status, 200);
        holders.push(stream);
    }

    // The third client is refused with the load-shedding contract:
    // 503, machine-readable kind, and an honest Retry-After.
    let mut refused = TcpStream::connect(addr).expect("TCP accept still works");
    refused.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut reply = Vec::new();
    refused.read_to_end(&mut reply).expect("refusal then close");
    let reply = String::from_utf8_lossy(&reply);
    assert!(reply.starts_with("HTTP/1.1 503"), "{reply}");
    assert!(reply.contains("Retry-After: 1"), "{reply}");
    assert!(reply.contains("overloaded"), "{reply}");

    // Releasing a slot makes the cap recover: retrying per the hint
    // eventually succeeds.
    drop(holders.pop());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut retry = TcpStream::connect(addr).expect("connect");
        retry.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
        retry.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
        let mut reply = Vec::new();
        // A refusal may surface as a reset instead of a readable 503
        // when the server closes with our request bytes unread — both
        // just mean "not yet", so only a 200 ends the loop.
        let answered = retry.read_to_end(&mut reply).is_ok()
            && String::from_utf8_lossy(&reply).starts_with("HTTP/1.1 200");
        if answered {
            break;
        }
        assert!(Instant::now() < deadline, "cap never released: {reply:?}");
        std::thread::sleep(Duration::from_millis(100));
    }

    drop(holders);
    handle.shutdown();
    runner.join().unwrap();
}

#[test]
fn pipelined_requests_answer_in_order_on_one_connection() {
    let (addr, handle, runner) = start_with(|_| {});

    // Two solves written back-to-back before reading anything: the
    // loop must answer both, in order, on the one connection.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut pipelined = solve_request(1);
    pipelined.extend_from_slice(&solve_request(3));
    stream.write_all(&pipelined).unwrap();

    let (status, _, body) = read_one_response(&mut stream);
    assert_eq!(status, 200, "{body}");
    assert_eq!(Json::parse(&body).unwrap().get("makespan").and_then(Json::as_i64), Some(5));
    let (status, _, body) = read_one_response(&mut stream);
    assert_eq!(status, 200, "{body}");
    assert_eq!(Json::parse(&body).unwrap().get("makespan").and_then(Json::as_i64), Some(10));

    handle.shutdown();
    let report = runner.join().unwrap();
    assert_eq!(report.connections, 1);
    assert_eq!(report.requests, 2);
}

#[test]
fn graceful_shutdown_sweeps_idle_connections() {
    let (addr, handle, runner) = start_with(|c| {
        c.keep_alive_timeout = Duration::from_secs(60);
    });

    // A mix of parked clients: some mid-keep-alive, some that never
    // sent a byte. None of them may hold the shutdown hostage.
    let mut parked = Vec::new();
    for i in 0..8 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
        if i % 2 == 0 {
            stream.write_all(KEEP_ALIVE_HEALTHZ).unwrap();
            let (status, _, _) = read_one_response(&mut stream);
            assert_eq!(status, 200);
        }
        parked.push(stream);
    }

    handle.shutdown();
    runner.join().expect("shutdown must not wait on idle sockets");

    // Every parked socket observes the close.
    for (i, mut stream) in parked.into_iter().enumerate() {
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap_or_else(|e| panic!("conn {i}: {e}"));
        assert!(rest.is_empty(), "conn {i} got unexpected bytes: {rest:?}");
    }
}
