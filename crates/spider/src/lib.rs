//! # mst-spider — optimal scheduling on spider graphs (Section 7)
//!
//! A spider is a tree whose only node of arity greater than two is the
//! master. The paper's algorithm composes the two substrates:
//!
//! 1. run the **chain algorithm's `T_lim` variant** on every leg
//!    independently (as if each leg had the master to itself);
//! 2. **transform** (Figure 7) each leg schedule into single-task virtual
//!    slaves: the task emitted at `C^i_1` becomes a slave with link
//!    latency `c_1` (the leg's first link) and processing time
//!    `T_lim - C^i_1 - c_1` — everything that must happen after its
//!    master emission is folded into one opaque "processing" interval;
//! 3. run the **fork-graph selection** (Jackson greedy) over the pooled
//!    virtual slaves to decide how many tasks each leg receives and when
//!    the master's shared out-port serves them;
//! 4. **revert**: each selected virtual slave maps back to its chain
//!    task, which keeps its in-leg schedule but adopts the (earlier or
//!    equal) master emission chosen by the fork algorithm — Lemma 3
//!    shows the result stays feasible, Lemma 4 that no schedule does
//!    better.
//!
//! [`schedule_spider_by_deadline`] implements steps 1–4 (optimal task
//! count by Theorem 3); [`schedule_spider`] wraps a binary search over
//! `T_lim` to obtain the minimum makespan for exactly `n` tasks, in
//! `O(n^2 p^2 log)` overall.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithm;
pub mod transform;

pub use algorithm::{schedule_spider, schedule_spider_by_deadline};
pub use transform::{transform_leg, transform_leg_into, ChainVirtualSlave};
