//! The spider algorithm: per-leg chains, fork selection, revert.
//!
//! The deadline search is incremental: binary-search probes run the
//! selection (steps (1)–(4)) through a reusable `SpiderScratch`
//! without materialising a witness, and step (5)'s revert runs **once**,
//! on the final deadline — the same hot-path structure as
//! `mst_fork::schedule_fork`.

use crate::transform::{transform_leg_into, ChainVirtualSlave};
use mst_core::schedule_chain_by_deadline;
use mst_fork::jackson::{EddSet, Item};
use mst_fork::search_min_deadline;
use mst_platform::{NodeId, Spider, Time};
use mst_schedule::{ChainSchedule, CommVector, SpiderSchedule, SpiderTask};
use std::cell::RefCell;

thread_local! {
    /// Per-thread scratch backing the buffer-less entry points, so batch
    /// traffic reuses one set of buffers per worker thread.
    static SCRATCH: RefCell<SpiderScratch> = RefCell::new(SpiderScratch::new());
}

/// Reusable working memory for the spider selection: the per-leg chain
/// schedules, the pooled virtual-slave buffer and the greedy's feasible
/// set, kept across binary-search probes and across instances.
#[derive(Debug, Clone)]
struct SpiderScratch {
    leg_schedules: Vec<ChainSchedule>,
    virtuals: Vec<ChainVirtualSlave>,
    set: EddSet<ChainVirtualSlave>,
}

impl SpiderScratch {
    fn new() -> SpiderScratch {
        SpiderScratch { leg_schedules: Vec::new(), virtuals: Vec::new(), set: EddSet::new(0) }
    }
}

/// Steps (1)–(4): per-leg `T_lim` chains, pooled transformation, greedy
/// selection. Leaves the selection in `scratch` (the revert needs the
/// leg schedules too) and returns the task count — the binary-search
/// probe, with no witness built.
fn select_into(
    spider: &Spider,
    max_tasks: usize,
    deadline: Time,
    scratch: &mut SpiderScratch,
) -> usize {
    // (2) optimal T_lim chain schedule per leg.
    scratch.leg_schedules.clear();
    scratch.leg_schedules.extend(
        spider.legs().iter().map(|chain| schedule_chain_by_deadline(chain, max_tasks, deadline)),
    );

    // (3) pooled fork graph of virtual slaves.
    scratch.virtuals.clear();
    for (l, chain) in spider.legs().iter().enumerate() {
        let (schedules, virtuals) = (&scratch.leg_schedules, &mut scratch.virtuals);
        transform_leg_into(l, chain, &schedules[l], deadline, virtuals);
    }
    scratch.virtuals.sort_by_key(|v| (v.comm, v.proc_time));

    // (4) bandwidth-centric greedy selection under Jackson's rule.
    scratch.set.reset(deadline);
    for &v in &scratch.virtuals {
        if scratch.set.len() == max_tasks {
            break;
        }
        scratch.set.try_insert(Item { comm: v.comm, proc_time: v.proc_time, payload: v });
    }
    scratch.set.len()
}

/// Step (5): revert the selection sitting in `scratch` to a spider
/// schedule — every selected virtual slave is its original chain task,
/// with the master emission moved to the slot the fork algorithm chose
/// (never later than the original — Lemma 3).
fn revert(scratch: &SpiderScratch) -> SpiderSchedule {
    let emissions = scratch.set.emission_times();
    let mut tasks = Vec::with_capacity(scratch.set.len());
    for (item, emit) in scratch.set.items().iter().zip(emissions) {
        let v = item.payload;
        let chain_task = scratch.leg_schedules[v.leg].task(v.task_index);
        debug_assert!(
            emit <= chain_task.comms.first(),
            "fork emission must not be later than the chain emission"
        );
        let mut times = chain_task.comms.times().to_vec();
        times[0] = emit;
        tasks.push(SpiderTask::new(
            NodeId { leg: v.leg, depth: chain_task.proc },
            chain_task.start,
            CommVector::new(times),
            chain_task.work,
        ));
    }
    SpiderSchedule::new(tasks)
}

/// The `T_lim` spider algorithm (Section 7, steps (1)–(5)): schedules
/// the **maximum number of tasks** — at most `max_tasks` — on `spider`,
/// all completing by `deadline`. Optimal in task count by Theorem 3.
///
/// Complexity: `O(n p^2)` for the per-leg chain schedules plus
/// `O((n k)^2)` for the fork selection (`k` legs), i.e. the paper's
/// `O(n^2 p^2)` bound.
pub fn schedule_spider_by_deadline(
    spider: &Spider,
    max_tasks: usize,
    deadline: Time,
) -> SpiderSchedule {
    SCRATCH.with_borrow_mut(|scratch| {
        select_into(spider, max_tasks, deadline, scratch);
        revert(scratch)
    })
}

/// Minimum-makespan schedule of exactly `n` tasks on a spider, by binary
/// search over the deadline of [`schedule_spider_by_deadline`]. Returns
/// `(makespan, schedule)`.
///
/// Monotonicity of the optimal task count in the deadline (Theorem 3)
/// makes the binary search exact; the upper bound runs everything on the
/// best single leg.
///
/// ```
/// use mst_platform::Spider;
/// use mst_spider::schedule_spider;
/// let spider = Spider::from_legs(&[&[(2, 3), (3, 5)], &[(1, 4)]]).unwrap();
/// let (makespan, schedule) = schedule_spider(&spider, 5);
/// assert_eq!(schedule.n(), 5);
/// // The extra leg can only improve on the lone Figure-2 chain (14).
/// assert!(makespan <= 14);
/// ```
pub fn schedule_spider(spider: &Spider, n: usize) -> (Time, SpiderSchedule) {
    assert!(n >= 1, "schedule_spider requires at least one task");
    SCRATCH.with_borrow_mut(|scratch| {
        let (makespan, cached) = search_min_deadline(1, spider.makespan_upper_bound(n), n, |d| {
            select_into(spider, n, d, scratch)
        });
        if !cached {
            select_into(spider, n, makespan, scratch);
        }
        (makespan, revert(scratch))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_baselines::{max_tasks_by_deadline, optimal_spider_makespan};
    use mst_core::schedule_chain;
    use mst_platform::{Chain, GeneratorConfig, HeterogeneityProfile, Tree};
    use mst_schedule::check_spider;

    #[test]
    fn deadline_schedules_are_feasible_and_meet_deadline() {
        for seed in 0..30u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let spider = g.spider(1 + (seed % 3) as usize, 1, 3);
            for deadline in [3, 8, 15, 30] {
                let s = schedule_spider_by_deadline(&spider, 20, deadline);
                check_spider(&spider, &s).assert_feasible();
                for t in s.tasks() {
                    assert!(t.end() <= deadline, "seed {seed}: task past deadline");
                    assert!(t.comms.first() >= 0);
                }
            }
        }
    }

    #[test]
    fn theorem3_task_count_matches_exhaustive_optimum() {
        // The headline spider claim: the algorithm schedules as many
        // tasks by T_lim as ANY feasible spider schedule.
        for seed in 0..25u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let spider = g.spider(1 + (seed % 3) as usize, 1, 2);
            let tree = Tree::from_spider(&spider);
            for deadline in [4, 9, 14, 20] {
                let algo = schedule_spider_by_deadline(&spider, 5, deadline).n();
                let exact = max_tasks_by_deadline(&tree, deadline, 5);
                assert_eq!(algo, exact, "seed {seed}, deadline {deadline}, {spider}");
            }
        }
    }

    #[test]
    fn spider_makespan_matches_exhaustive_optimum() {
        for seed in 0..20u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let spider = g.spider(1 + (seed % 3) as usize, 1, 2);
            let n = 1 + (seed % 4) as usize;
            let (makespan, s) = schedule_spider(&spider, n);
            assert_eq!(s.n(), n);
            check_spider(&spider, &s).assert_feasible();
            let exact = optimal_spider_makespan(&spider, n);
            assert_eq!(makespan, exact, "seed {seed}, n {n}, {spider}");
            assert_eq!(s.makespan(), makespan, "schedule must realise the searched deadline");
        }
    }

    #[test]
    fn single_leg_spider_equals_chain_algorithm() {
        for seed in 0..15u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let chain = g.chain(1 + (seed % 4) as usize);
            let spider = Spider::from_chain(chain.clone());
            for n in 1..6 {
                let chain_makespan = schedule_chain(&chain, n).makespan();
                let (spider_makespan, _) = schedule_spider(&spider, n);
                assert_eq!(spider_makespan, chain_makespan, "seed {seed}, n {n}");
            }
        }
    }

    #[test]
    fn fork_shaped_spider_equals_fork_algorithm() {
        use mst_fork::schedule_fork;
        for seed in 0..15u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let fork = g.fork(1 + (seed % 4) as usize);
            let spider = Spider::from_fork(&fork);
            for n in 1..5 {
                let (fm, _) = schedule_fork(&fork, n);
                let (sm, _) = schedule_spider(&spider, n);
                assert_eq!(fm, sm, "seed {seed}, n {n}");
            }
        }
    }

    #[test]
    fn figure2_as_spider() {
        let spider = Spider::from_chain(Chain::paper_figure2());
        let (makespan, s) = schedule_spider(&spider, 5);
        assert_eq!(makespan, 14);
        check_spider(&spider, &s).assert_feasible();
        assert_eq!(s.n(), 5);
    }

    #[test]
    fn task_count_monotone_in_deadline() {
        let spider = Spider::from_legs(&[&[(2, 3), (3, 5)], &[(1, 4)], &[(2, 2)]]).unwrap();
        let mut prev = 0;
        for deadline in 0..40 {
            let k = schedule_spider_by_deadline(&spider, 50, deadline).n();
            assert!(k >= prev, "deadline {deadline}");
            prev = k;
        }
        assert!(prev > 10, "40 ticks should fit many tasks on three legs");
    }

    #[test]
    fn master_port_is_the_bottleneck_when_legs_are_fast() {
        // Three fast legs behind c1 = 2 links: the port serialises
        // emissions, so ~deadline/2 tasks fit regardless of leg count.
        let spider = Spider::from_legs(&[&[(2, 1)], &[(2, 1)], &[(2, 1)]]).unwrap();
        let k = schedule_spider_by_deadline(&spider, 100, 21).n();
        assert!((9..=10).contains(&k), "port-bound count, got {k}");
    }
}
