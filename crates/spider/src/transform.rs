//! The chain-to-fork transformation of the paper's Figure 7.

use mst_platform::{Chain, Time};
use mst_schedule::ChainSchedule;

/// A single-task virtual slave derived from one task of a leg's
/// `T_lim`-anchored chain schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainVirtualSlave {
    /// Link latency seen by the master: the leg's `c_1`.
    pub comm: Time,
    /// Virtual processing time `T_lim - C^i_1 - c_1`: the whole tail of
    /// the task's in-leg life (travel past link 1, buffering, execution),
    /// folded into one opaque interval ending at `T_lim`.
    pub proc_time: Time,
    /// Leg index (0-based) the slave belongs to.
    pub leg: usize,
    /// Index (**1-based**) of the corresponding task in the leg's chain
    /// schedule.
    pub task_index: usize,
}

/// Transforms a leg's deadline-anchored chain schedule into virtual
/// slaves (Figure 7). The schedule must be produced by
/// [`mst_core::schedule_chain_by_deadline`] with the same `deadline` —
/// its emission times are absolute, which is what the formula needs.
pub fn transform_leg(
    leg: usize,
    chain: &Chain,
    schedule: &ChainSchedule,
    deadline: Time,
) -> Vec<ChainVirtualSlave> {
    let mut out = Vec::with_capacity(schedule.n());
    transform_leg_into(leg, chain, schedule, deadline, &mut out);
    out
}

/// [`transform_leg`] appending into a caller-owned buffer — the
/// allocation-free form the spider selection pools legs through.
pub fn transform_leg_into(
    leg: usize,
    chain: &Chain,
    schedule: &ChainSchedule,
    deadline: Time,
    out: &mut Vec<ChainVirtualSlave>,
) {
    let c1 = chain.c(1);
    out.extend(schedule.tasks().iter().enumerate().map(|(idx, t)| {
        let proc_time = deadline - t.comms.first() - c1;
        debug_assert!(proc_time >= chain.w(t.proc), "virtual time below real work");
        ChainVirtualSlave { comm: c1, proc_time, leg, task_index: idx + 1 }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_core::schedule_chain_by_deadline;

    #[test]
    fn figure7_transformation_reproduced_exactly() {
        // The paper's Figure 7: the Figure-2 instance anchored at
        // T_lim = 14 yields five virtual slaves, all with communication
        // time 2, with processing times {12, 10, 8, 6, 3} — and the task
        // mapped to processor 2 is the node of processing time 8.
        let chain = Chain::paper_figure2();
        let schedule = schedule_chain_by_deadline(&chain, 5, 14);
        assert_eq!(schedule.n(), 5);
        let slaves = transform_leg(0, &chain, &schedule, 14);
        let comms: Vec<Time> = slaves.iter().map(|s| s.comm).collect();
        assert_eq!(comms, vec![2; 5]);
        let mut procs: Vec<Time> = slaves.iter().map(|s| s.proc_time).collect();
        assert_eq!(procs, vec![12, 10, 8, 6, 3], "emission order {{0,2,4,6,9}}");
        procs.sort_unstable();
        assert_eq!(procs, vec![3, 6, 8, 10, 12], "the multiset drawn in Figure 7");
        // The processor-2 task is the node with processing time 8.
        let on2 = schedule.tasks_on(2);
        assert_eq!(on2.len(), 1);
        assert_eq!(slaves[on2[0] - 1].proc_time, 8);
    }

    #[test]
    fn virtual_time_dominates_real_work() {
        use mst_platform::{GeneratorConfig, HeterogeneityProfile};
        for seed in 0..20u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let chain = g.chain(1 + (seed % 4) as usize);
            let deadline = 25;
            let schedule = schedule_chain_by_deadline(&chain, 10, deadline);
            for s in transform_leg(0, &chain, &schedule, deadline) {
                let task = schedule.task(s.task_index);
                assert!(s.proc_time >= chain.w(task.proc));
                // The virtual slave finishing by `deadline` with emission
                // at the original C^i_1 is exactly the original tail:
                assert_eq!(task.comms.first() + s.comm + s.proc_time, deadline);
            }
        }
    }

    #[test]
    fn empty_schedule_transforms_to_nothing() {
        let chain = Chain::paper_figure2();
        let schedule = schedule_chain_by_deadline(&chain, 5, 4); // too tight
        assert!(transform_leg(0, &chain, &schedule, 4).is_empty());
    }
}
