//! T2 (chain half): the `O(n p^2)` complexity claim, measured.
//!
//! Two sweeps — runtime vs `n` at fixed `p` (expected linear) and vs `p`
//! at fixed `n` (expected quadratic) — plus the reference-vs-fast
//! candidate-evaluation ablation (same asymptotics, smaller constant on
//! heterogeneous instances).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mst_core::{schedule_chain, schedule_chain_fast};
use mst_platform::{GeneratorConfig, HeterogeneityProfile};
use std::hint::black_box;
use std::time::Duration;

fn configure(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_scaling_in_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain/scaling_in_n_p16");
    group.sample_size(10).warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    let chain = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 42).chain(16);
    for n in [64usize, 128, 256, 512, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| schedule_chain(black_box(&chain), black_box(n)));
        });
    }
    group.finish();
}

fn bench_scaling_in_p(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain/scaling_in_p_n256");
    group.sample_size(10).warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for p in [4usize, 8, 16, 32, 64] {
        let chain = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 42).chain(p);
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| schedule_chain(black_box(&chain), black_box(256)));
        });
    }
    group.finish();
}

fn bench_fast_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain/ablation_fast_front");
    group.sample_size(10).warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    let chain = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 42).chain(32);
    group.bench_function("reference_p32_n512", |b| {
        b.iter(|| schedule_chain(black_box(&chain), black_box(512)));
    });
    group.bench_function("prefix_min_p32_n512", |b| {
        b.iter(|| schedule_chain_fast(black_box(&chain), black_box(512)));
    });
    // Tie-heavy homogeneous chain: the fast path degrades gracefully.
    let homo = GeneratorConfig::new(HeterogeneityProfile::Homogeneous { c: 2, w: 3 }, 1).chain(32);
    group.bench_function("prefix_min_homogeneous_p32_n512", |b| {
        b.iter(|| schedule_chain_fast(black_box(&homo), black_box(512)));
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    let c = configure(c);
    bench_scaling_in_n(c);
    bench_scaling_in_p(c);
    bench_fast_ablation(c);
}

criterion_group!(chain_scaling, benches);
criterion_main!(chain_scaling);
