//! Cost of the verification oracles: the pairwise Definition-1 checker
//! (`O(n^2 p)`) and the event-driven replay (`O(n log n)`-ish), relative
//! to producing the schedule itself. Documents that validating every
//! schedule in CI is affordable.

use criterion::{criterion_group, criterion_main, Criterion};
use mst_core::schedule_chain;
use mst_platform::{GeneratorConfig, HeterogeneityProfile};
use mst_schedule::check_chain;
use mst_sim::replay_chain;
use std::hint::black_box;
use std::time::Duration;

fn bench_oracles(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle/n256_p16");
    group.sample_size(10).warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    let chain = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 5).chain(16);
    let schedule = schedule_chain(&chain, 256);
    group.bench_function("schedule_chain", |b| {
        b.iter(|| schedule_chain(black_box(&chain), black_box(256)));
    });
    group.bench_function("pairwise_checker", |b| {
        b.iter(|| check_chain(black_box(&chain), black_box(&schedule)));
    });
    group.bench_function("event_replay", |b| {
        b.iter(|| replay_chain(black_box(&chain), black_box(&schedule)).expect("feasible"));
    });
    group.finish();
}

criterion_group!(oracle_overhead, bench_oracles);
criterion_main!(oracle_overhead);
