//! Runtime of the baselines relative to the optimal algorithm: the
//! forward heuristics are not meaningfully cheaper than the exact
//! polynomial algorithm, and the exhaustive search explodes — the
//! practical argument for adopting the paper's construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mst_baselines::{eager_chain, optimal_chain_makespan, round_robin_chain};
use mst_core::schedule_chain;
use mst_platform::{GeneratorConfig, HeterogeneityProfile};
use std::hint::black_box;
use std::time::Duration;

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline/schedulers_p8_n128");
    group.sample_size(10).warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    let chain = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 13).chain(8);
    group.bench_function("optimal_backward", |b| {
        b.iter(|| schedule_chain(black_box(&chain), black_box(128)));
    });
    group.bench_function("eager_min_completion", |b| {
        b.iter(|| eager_chain(black_box(&chain), black_box(128)));
    });
    group.bench_function("round_robin", |b| {
        b.iter(|| round_robin_chain(black_box(&chain), black_box(128)));
    });
    group.finish();
}

fn bench_exact_explosion(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline/exhaustive_search_p3");
    group.sample_size(10).warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(800));
    let chain = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 13).chain(3);
    for n in [4usize, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| optimal_chain_makespan(black_box(&chain), black_box(n)));
        });
    }
    group.finish();
}

criterion_group!(baseline_cost, bench_schedulers, bench_exact_explosion);
criterion_main!(baseline_cost);
