//! Measures what the unified API costs over calling the algorithms
//! directly: `SolverRegistry::solve` resolves a name, validates the
//! instance, dispatches on the topology and wraps the result in a
//! `Solution` — all of which must be noise next to the `O(n p^2)`
//! scheduling work itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mst_api::{Batch, Instance, SolverRegistry, TopologyKind};
use mst_core::schedule_chain;
use mst_platform::{GeneratorConfig, HeterogeneityProfile};
use std::hint::black_box;
use std::time::Duration;

/// The batch fast path: construction through the `OnceLock` global
/// registry vs re-instantiating all solvers, and a small sweep where the
/// solver is resolved once per batch (not once per instance).
fn bench_batch_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_fast_path");
    group.sample_size(10).warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    group.bench_function("registry_with_defaults", |b| {
        b.iter(SolverRegistry::with_defaults);
    });
    group.bench_function("registry_global_clone", |b| {
        b.iter(|| SolverRegistry::global().clone());
    });
    let instances: Vec<Instance> = (0..64u64)
        .map(|seed| {
            Instance::generate(
                TopologyKind::Chain,
                HeterogeneityProfile::ALL[(seed % 5) as usize],
                seed,
                4,
                6,
            )
        })
        .collect();
    let batch = Batch::default();
    group.bench_function("solve_all_64_chains", |b| {
        b.iter(|| batch.solve_all(black_box(&instances)));
    });
    group.finish();
}

fn bench_dispatch(c: &mut Criterion) {
    let registry = SolverRegistry::with_defaults();
    let mut group = c.benchmark_group("dispatch_overhead");
    group.sample_size(10).warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for n in [16usize, 256] {
        let chain = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 42).chain(8);
        let instance = Instance::new(chain.clone(), n);
        group.bench_with_input(BenchmarkId::new("direct_schedule_chain", n), &n, |b, &n| {
            b.iter(|| schedule_chain(black_box(&chain), black_box(n)));
        });
        group.bench_with_input(BenchmarkId::new("registry_chain_optimal", n), &n, |b, _| {
            b.iter(|| registry.solve(black_box("chain-optimal"), black_box(&instance)));
        });
        group.bench_with_input(BenchmarkId::new("registry_optimal_dispatch", n), &n, |b, _| {
            b.iter(|| registry.solve(black_box("optimal"), black_box(&instance)));
        });
    }
    group.finish();
}

criterion_group!(dispatch_overhead, bench_dispatch, bench_batch_paths);
criterion_main!(dispatch_overhead);
