//! T2 (spider half): the `O(n^2 p^2)`-ish spider cost, measured — the
//! deadline pass and the full binary-searched makespan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mst_platform::{GeneratorConfig, HeterogeneityProfile};
use mst_spider::{schedule_spider, schedule_spider_by_deadline};
use std::hint::black_box;
use std::time::Duration;

fn bench_deadline_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("spider/deadline_pass_legs4");
    group.sample_size(10).warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    let spider = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 7).spider(4, 2, 4);
    for n in [32usize, 64, 128, 256] {
        let deadline = spider.makespan_upper_bound(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| schedule_spider_by_deadline(black_box(&spider), n, black_box(deadline)));
        });
    }
    group.finish();
}

fn bench_full_makespan(c: &mut Criterion) {
    let mut group = c.benchmark_group("spider/binary_searched_makespan");
    group.sample_size(10).warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(800));
    for legs in [2usize, 4, 8] {
        let spider = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 7).spider(legs, 2, 4);
        group.bench_with_input(BenchmarkId::from_parameter(legs), &legs, |b, _| {
            b.iter(|| schedule_spider(black_box(&spider), black_box(64)));
        });
    }
    group.finish();
}

criterion_group!(spider_scaling, bench_deadline_pass, bench_full_makespan);
criterion_main!(spider_scaling);
