//! The fork substrate's quadratic selection cost (paper: line 4 of the
//! spider algorithm is quadratic in the number of single-task slaves).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mst_fork::{
    count_tasks_fork_by_deadline, expand_fork, expand_fork_sorted, max_tasks_fork_by_deadline,
    schedule_fork, ForkScratch,
};
use mst_platform::{GeneratorConfig, HeterogeneityProfile};
use std::hint::black_box;
use std::time::Duration;

/// The expansion guard: the merging iterator must never lose to the
/// reference materialise-and-sort it replaced on the hot path.
fn bench_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("fork/expand_fork_slaves16");
    group.sample_size(10).warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    let fork = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 11).fork(16);
    for n in [64usize, 256] {
        let deadline = fork.makespan_upper_bound(n);
        group.bench_with_input(BenchmarkId::new("reference_sort", n), &n, |b, &n| {
            b.iter(|| {
                let mut v = expand_fork(black_box(&fork), black_box(deadline), n);
                v.sort_by_key(|s| (s.comm, s.proc_time));
                v
            });
        });
        group.bench_with_input(BenchmarkId::new("merged", n), &n, |b, &n| {
            b.iter(|| expand_fork_sorted(black_box(&fork), black_box(deadline), n));
        });
        group.bench_with_input(BenchmarkId::new("counting_probe", n), &n, |b, &n| {
            let mut scratch = ForkScratch::new();
            b.iter(|| {
                count_tasks_fork_by_deadline(black_box(&fork), n, black_box(deadline), &mut scratch)
            });
        });
    }
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("fork/selection_slaves16");
    group.sample_size(10).warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    let fork = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 11).fork(16);
    for n in [32usize, 64, 128, 256] {
        let deadline = fork.makespan_upper_bound(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| max_tasks_fork_by_deadline(black_box(&fork), n, black_box(deadline)));
        });
    }
    group.finish();
}

fn bench_makespan(c: &mut Criterion) {
    let mut group = c.benchmark_group("fork/binary_searched_makespan_n64");
    group.sample_size(10).warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for slaves in [4usize, 16, 64] {
        let fork = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 11).fork(slaves);
        group.bench_with_input(BenchmarkId::from_parameter(slaves), &slaves, |b, _| {
            b.iter(|| schedule_fork(black_box(&fork), black_box(64)));
        });
    }
    group.finish();
}

criterion_group!(fork_scaling, bench_expansion, bench_selection, bench_makespan);
criterion_main!(fork_scaling);
