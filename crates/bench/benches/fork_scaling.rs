//! The fork substrate's quadratic selection cost (paper: line 4 of the
//! spider algorithm is quadratic in the number of single-task slaves).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mst_fork::{max_tasks_fork_by_deadline, schedule_fork};
use mst_platform::{GeneratorConfig, HeterogeneityProfile};
use std::hint::black_box;
use std::time::Duration;

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("fork/selection_slaves16");
    group.sample_size(10).warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    let fork = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 11).fork(16);
    for n in [32usize, 64, 128, 256] {
        let deadline = fork.makespan_upper_bound(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| max_tasks_fork_by_deadline(black_box(&fork), n, black_box(deadline)));
        });
    }
    group.finish();
}

fn bench_makespan(c: &mut Criterion) {
    let mut group = c.benchmark_group("fork/binary_searched_makespan_n64");
    group.sample_size(10).warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for slaves in [4usize, 16, 64] {
        let fork = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 11).fork(slaves);
        group.bench_with_input(BenchmarkId::from_parameter(slaves), &slaves, |b, _| {
            b.iter(|| schedule_fork(black_box(&fork), black_box(64)));
        });
    }
    group.finish();
}

criterion_group!(fork_scaling, bench_selection, bench_makespan);
criterion_main!(fork_scaling);
