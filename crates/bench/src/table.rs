//! Minimal fixed-width table formatting for experiment reports.

use std::fmt;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row; its arity must match the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, "| {cell:>w$} ")?;
            }
            writeln!(f, "|")
        };
        line(f, &self.header)?;
        for (w, _) in widths.iter().zip(&self.header) {
            write!(f, "|{}", "-".repeat(w + 2))?;
        }
        writeln!(f, "|")?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["n", "makespan"]);
        t.row(vec!["5", "14"]);
        t.row(vec!["100", "202"]);
        let s = t.to_string();
        assert!(s.contains("|   n | makespan |"));
        assert!(s.contains("| 100 |      202 |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new(vec!["a", "b"]).row(vec!["1"]);
    }
}
