//! Regenerates the validation and comparison tables of EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p mst-bench --release --bin tables                # all tables
//! cargo run -p mst-bench --release --bin tables -- --optimality
//! cargo run -p mst-bench --release --bin tables -- --quick     # small sample counts
//! ```

use mst_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let all = args.iter().all(|a| a == "--quick");
    let want = |flag: &str| all || args.iter().any(|a| a == flag);
    let n_small = if quick { 20 } else { 200 };
    let n_tiny = if quick { 10 } else { 60 };

    if want("--optimality") {
        println!("== T1: Theorem 1 — chain algorithm vs exhaustive optimum ==");
        println!("{}", experiments::optimality_table(n_small));
    }
    if want("--spider") {
        println!("== T3: Theorem 3 — spider task count vs exhaustive optimum ==");
        println!("{}", experiments::spider_table(n_tiny));
    }
    if want("--gap") {
        println!("== E1: heuristic-to-optimal makespan ratios (p=8, n=64) ==");
        println!("{}", experiments::heuristic_gap_table(n_small, 8, 64));
        println!("== E1b: small batches (p=4, n=8) ==");
        println!("{}", experiments::heuristic_gap_table(n_small, 4, 8));
    }
    if want("--steady") {
        println!("== E2: steady-state convergence (2-leg spider, seed 3) ==");
        println!("{}", experiments::steady_state_table(3, 2));
        println!("== E2b: wider spider (4 legs, seed 7) ==");
        println!("{}", experiments::steady_state_table(7, 4));
    }
    if want("--lemma1") {
        println!("== F4: Lemma 1 (no crossing) and Lemma 2 (sub-chain) checks ==");
        println!("{}", experiments::lemma_table(n_small));
    }
    if want("--staircase") {
        println!("== E4: T_lim staircase on the Figure-2 chain ==");
        println!("{}", experiments::staircase_table());
    }
    if want("--curve") {
        println!("== E5: makespan curve and distribution crossover ==");
        println!("{}", experiments::makespan_curve_table());
    }
    if want("--fluid") {
        println!("== E6: quantised vs divisible-load on a star (8 slaves, seed 11) ==");
        println!("{}", experiments::fluid_vs_quantised_table(11, 8));
    }
    if want("--buffers") {
        println!("== E6b: finite-buffer ablation of the platform model ==");
        println!("{}", experiments::buffer_ablation_table(n_small));
    }
    if want("--registry") {
        println!("== E7: unified solver registry across all topologies ==");
        println!("{}", experiments::registry_table(n_tiny));
    }
    if want("--tree") {
        println!("== E3: tree covering vs true tree optimum ==");
        println!("{}", experiments::tree_table(n_tiny));
        println!("== E3b: covering strategies head to head (size 7, n 6) ==");
        println!("{}", experiments::tree_strategy_table(n_tiny, 7, 6));
    }
}
