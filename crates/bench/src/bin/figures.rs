//! Regenerates the paper's figures from live algorithm runs.
//!
//! ```text
//! cargo run -p mst-bench --bin figures            # all figures
//! cargo run -p mst-bench --bin figures -- --f2    # one figure
//! ```

use mst_core::{schedule_chain, schedule_chain_by_deadline};
use mst_fork::expand_slave;
use mst_platform::{Chain, Processor, Spider};
use mst_schedule::gantt;
use mst_spider::{schedule_spider, transform_leg};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |flag: &str| args.is_empty() || args.iter().any(|a| a == flag);

    if want("--f1") {
        figure1();
    }
    if want("--f2") {
        figure2();
    }
    if want("--f5") {
        figure5();
    }
    if want("--f6") {
        figure6();
    }
    if want("--f7") {
        figure7();
    }
}

/// Figure 1: the chain platform model.
fn figure1() {
    println!("== Figure 1: chain where the first node is the master ==");
    let chain = Chain::paper_figure2();
    println!("{chain}");
    println!("p = {}, T_infinity(5) = {}\n", chain.len(), chain.t_infinity(5));
}

/// Figure 2: the worked schedule (c = (2,3), w = (3,5), n = 5).
fn figure2() {
    println!("== Figure 2: the paper's example schedule ==");
    let chain = Chain::paper_figure2();
    let schedule = schedule_chain(&chain, 5);
    println!("{schedule}");
    println!("{}", gantt::render_chain(&chain, &schedule));
    println!("makespan = {} (paper: 14)\n", schedule.makespan());
}

/// Figure 5: a spider and its optimal schedule.
fn figure5() {
    println!("== Figure 5: a spider graph ==");
    let spider = Spider::from_legs(&[&[(2, 3), (3, 5)], &[(1, 4)], &[(2, 2), (2, 2)]])
        .expect("valid spider");
    println!("{spider}");
    let (makespan, schedule) = schedule_spider(&spider, 8);
    println!("optimal makespan for 8 tasks = {makespan}");
    println!("{}", gantt::render_spider(&spider, &schedule));
}

/// Figure 6: expansion of a single node into single-task virtual slaves.
fn figure6() {
    println!("== Figure 6: node expansion (c_i, w_i) -> w_i + q * max(c_i, w_i) ==");
    for (c, w) in [(2, 5), (5, 2)] {
        let p = Processor::of(c, w);
        let slaves = expand_slave(p, 1, 30, 6);
        let times: Vec<String> = slaves.iter().map(|v| v.proc_time.to_string()).collect();
        println!("node (c={c}, w={w}), m = {}: virtual times {}", p.period(), times.join(", "));
    }
    println!();
}

/// Figure 7: the chain-to-fork transformation of the Figure-2 instance.
fn figure7() {
    println!("== Figure 7: transformation of the Figure-2 example (T_lim = 14) ==");
    let chain = Chain::paper_figure2();
    let schedule = schedule_chain_by_deadline(&chain, 5, 14);
    let slaves = transform_leg(0, &chain, &schedule, 14);
    for s in &slaves {
        let task = schedule.task(s.task_index);
        println!(
            "task emitted at C_1 = {:>2} (runs on processor {}) -> virtual slave (c = {}, t = {:>2})",
            task.comms.first(),
            task.proc,
            s.comm,
            s.proc_time
        );
    }
    println!("paper: communication times all 2, processing times {{12, 10, 8, 6, 3}}");
    println!("       the processor-2 task is the node of processing time 8\n");
}
