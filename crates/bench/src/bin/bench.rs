//! `bench` — the perf-trajectory tracker.
//!
//! Times the two service-critical hot paths and writes the numbers to
//! `BENCH_batch.json` so every PR can compare against the recorded
//! trajectory:
//!
//! * **batch throughput** — `Batch::solve_all` over a mixed fleet of
//!   chain/fork/spider/tree instances (the `mst batch` / service
//!   workload), reported as instances per second;
//! * **tree exact** — `Batch::solve_all` with the `exact`
//!   branch-and-bound over a fleet of small general trees (the witness
//!   reconstruction path guarded end-to-end), instances per second;
//! * **cached sweep** — a repeat-heavy stream (200 distinct instances
//!   tiled out to the fleet size) answered by the canonical-form
//!   [`SolutionCache`], instances per second, with the same stream
//!   solved directly as the uncached reference — the cached number must
//!   stay at least 5× the reference;
//! * **repair vs re-solve** — after a processor failure, repairing the
//!   running schedule ([`mst_api::repair()`]: keep the committed prefix,
//!   re-solve only the surviving suffix through the solution cache)
//!   against solving the degraded instance from scratch; reported as
//!   the speedup ratio, guarded so repair must stay faster;
//! * **observability overhead** — the full per-request `mst-obs` span
//!   lifecycle (trace allocation, six stage spans, one kernel histogram
//!   sample, the finish record), nanoseconds per request and as a
//!   fraction of the committed `BENCH_serve.json` median request time,
//!   guarded at 5%;
//! * **fork expansion** — one `max_tasks_fork_by_deadline` selection on
//!   a 16-slave star (the inner loop of every deadline sweep), reported
//!   as nanoseconds per op;
//! * **deadline search** — one full `schedule_fork` binary search
//!   (expansion machinery reused across probes), nanoseconds per op.
//!
//! ```text
//! cargo run --release -p mst-bench --bin bench            # full run (10k instances)
//! cargo run --release -p mst-bench --bin bench -- --smoke # CI smoke (500 instances)
//! ```
//!
//! Flags:
//!
//! * `--smoke` — the small CI configuration (500 instances);
//! * `--out <path>` — where to write the JSON (default
//!   `BENCH_batch.json`; CI writes elsewhere so a smoke run never
//!   clobbers the committed baseline);
//! * `--check <baseline.json>` — regression guard: compare the fresh
//!   throughput numbers against a recorded baseline and exit non-zero
//!   when either drops by more than the tolerance;
//! * `--tolerance <fraction>` — allowed drop for `--check`
//!   (default 0.30).
//!
//! The JSON is flat `{"key": number}` pairs — no serde dependency, just
//! formatted text (read back via `mst_api::wire::Json`).

use mst_api::cache::solve_through;
use mst_api::fleet::{exact_tree_fleet, mixed_fleet};
use mst_api::repair::{degrade, repair, FailureEvent};
use mst_api::wire::Json;
use mst_api::{Batch, SolutionCache, SolverRegistry};
use mst_fork::{max_tasks_fork_by_deadline, schedule_fork};
use mst_platform::{GeneratorConfig, HeterogeneityProfile};
use std::hint::black_box;
use std::time::Instant;

/// Median of `runs` timings of `f`, in seconds.
fn median_secs<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// The throughput keys guarded by `--check` (higher is better; the
/// ns-per-op keys are too noisy on shared CI boxes to gate on).
const GUARDED_KEYS: [&str; 5] = [
    "solve_all_instances_per_sec",
    "solve_all_by_deadline_instances_per_sec",
    "tree_exact_instances_per_sec",
    "cached_sweep_instances_per_sec",
    "repair_vs_resolve_speedup",
];

/// Compares fresh results against a recorded baseline; returns the
/// regressions as `(key, fresh, floor)` triples.
fn regressions_against(
    baseline: &Json,
    fresh: &Json,
    tolerance: f64,
) -> Vec<(&'static str, f64, f64)> {
    let mut failures = Vec::new();
    for key in GUARDED_KEYS {
        let Some(recorded) = baseline.get(key).and_then(Json::as_f64) else {
            continue; // older baselines may lack a key; nothing to guard
        };
        let measured = fresh.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        let floor = recorded * (1.0 - tolerance);
        if measured < floor {
            failures.push((key, measured, floor));
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // A value-taking flag must be followed by an actual value — silently
    // consuming the next `--flag` would e.g. skip the regression check.
    let flag_value = |name: &str| -> Option<&str> {
        let i = args.iter().position(|a| a == name)?;
        match args.get(i + 1).map(String::as_str) {
            Some(value) if !value.starts_with("--") => Some(value),
            _ => {
                eprintln!("{name} expects a value");
                std::process::exit(2);
            }
        }
    };
    let out_path = flag_value("--out").unwrap_or("BENCH_batch.json").to_string();
    let check_path = flag_value("--check").map(str::to_string);
    let tolerance: f64 = match flag_value("--tolerance") {
        None => 0.30,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("--tolerance expects a fraction, got {raw:?}");
            std::process::exit(2);
        }),
    };
    let (instances_n, runs, expansion_iters) =
        if smoke { (500u64, 3, 200u64) } else { (10_000u64, 5, 5_000u64) };

    // --- Batch throughput: solve_all over the shared mixed fleet
    // (`mst_api::fleet::mixed_fleet` — the same stream the service's
    // `/batch` generator path builds on). ------------------------------
    let instances = mixed_fleet(instances_n);
    let batch = Batch::new(SolverRegistry::with_defaults());
    // Warm-up pass (pool construction, page faults) before measuring.
    let warm = batch.solve_all(&instances);
    assert!(warm.iter().all(|r| r.is_ok()), "the benchmark fleet must solve cleanly");
    let secs = median_secs(runs, || {
        black_box(batch.solve_all(black_box(&instances)));
    });
    let solve_throughput = instances_n as f64 / secs;

    // Deadline sweeps: the T_lim service path over the same fleet.
    let secs = median_secs(runs, || {
        black_box(batch.solve_all_by_deadline(black_box(&instances), 19));
    });
    let deadline_throughput = instances_n as f64 / secs;

    // --- Exact branch-and-bound on general trees (witnessed). ----------
    let exact_n = instances_n / 5;
    let exact_instances = exact_tree_fleet(exact_n);
    let exact_batch = batch.clone().with_solver("exact");
    let warm = exact_batch.solve_all(&exact_instances);
    assert!(warm.iter().all(|r| r.is_ok()), "the exact tree fleet must solve cleanly");
    let secs = median_secs(runs, || {
        black_box(exact_batch.solve_all(black_box(&exact_instances)));
    });
    let exact_throughput = exact_n as f64 / secs;

    // --- Canonical-form cache: a repeat-heavy sweep. -------------------
    // 200 distinct instances tiled out to the fleet size — the shape of
    // parameter scans and dashboard refreshes. The cache is warmed
    // outside the timed region; the timed sweep is pure hits (lookup +
    // restore). The same tiled stream solved directly, sequentially, is
    // the apples-to-apples uncached reference.
    let distinct = mixed_fleet(200.min(instances_n));
    let tiled: Vec<&mst_api::Instance> =
        (0..instances_n as usize).map(|i| &distinct[i % distinct.len()]).collect();
    let registry = SolverRegistry::with_defaults();
    let cache = SolutionCache::new(1024);
    for inst in &distinct {
        solve_through(&cache, &registry, "optimal", inst, None).expect("warm-up solves cleanly");
    }
    let secs = median_secs(runs, || {
        for inst in &tiled {
            black_box(solve_through(&cache, &registry, "optimal", black_box(inst), None))
                .expect("cached sweep solves cleanly");
        }
    });
    let cached_throughput = instances_n as f64 / secs;
    let secs = median_secs(runs, || {
        for inst in &tiled {
            black_box(registry.solve("optimal", black_box(inst)))
                .expect("uncached sweep solves cleanly");
        }
    });
    let uncached_throughput = instances_n as f64 / secs;
    assert!(
        cached_throughput >= 5.0 * uncached_throughput,
        "cached sweep must be at least 5x the uncached reference \
         (cached {cached_throughput:.0}/s vs uncached {uncached_throughput:.0}/s)"
    );

    // --- Schedule repair vs full re-solve after a processor failure. ---
    // For every distinct instance: fail its last processor halfway
    // through the verified schedule, then compare `repair` (committed
    // prefix kept, surviving suffix re-solved through the warm solution
    // cache) against solving the degraded instance from scratch. The
    // repair side is timed end-to-end — degrade, committed-front scan,
    // canonicalization, cache lookup, restore — and must still beat the
    // bare re-solve (pre-degraded outside the timed loop, so the
    // comparison is conservative).
    let repair_pool: Vec<(&mst_api::Instance, mst_api::Solution, FailureEvent)> = distinct
        .iter()
        .filter(|inst| inst.platform.num_processors() >= 2)
        .map(|inst| {
            let solution = solve_through(&cache, &registry, "optimal", inst, None)
                .expect("fleet solves cleanly")
                .solution;
            let event = FailureEvent {
                processor: inst.platform.num_processors(),
                at: solution.makespan() / 2,
            };
            (inst, solution, event)
        })
        .collect();
    // Warm pass: the degraded suffixes enter the solution cache, the
    // steady state a long-lived session reaches.
    for (inst, solution, event) in &repair_pool {
        repair(inst, solution, event, &registry, &cache, "optimal")
            .expect("losing the last processor is always repairable");
    }
    let secs = median_secs(runs, || {
        for (inst, solution, event) in &repair_pool {
            black_box(repair(black_box(inst), solution, event, &registry, &cache, "optimal"))
                .expect("repair stays clean");
        }
    });
    let repair_ns = secs * 1e9 / repair_pool.len() as f64;
    let degraded: Vec<mst_api::Instance> = repair_pool
        .iter()
        .map(|(inst, _, event)| {
            let platform = degrade(&inst.platform, event.processor).expect("degradable");
            mst_api::Instance::new(platform, inst.tasks)
        })
        .collect();
    let secs = median_secs(runs, || {
        for inst in &degraded {
            black_box(registry.solve("optimal", black_box(inst))).expect("re-solves cleanly");
        }
    });
    let resolve_ns = secs * 1e9 / degraded.len() as f64;
    let repair_speedup = resolve_ns / repair_ns;
    assert!(
        repair_speedup > 1.0,
        "schedule repair must beat a from-scratch re-solve \
         (repair {repair_ns:.0} ns/op vs re-solve {resolve_ns:.0} ns/op)"
    );

    // --- Observability overhead: the full per-request span lifecycle. --
    // One serve request costs a trace allocation, six stage spans, one
    // kernel histogram sample and the finish record. Timed here as a
    // tight loop and expressed as a fraction of the committed
    // `BENCH_serve.json` median request time — the tracing tax on a
    // served request must stay within the 5% budget the baseline gates
    // allow, independent of how noisy this box is.
    let obs_iters = expansion_iters * 10;
    let secs = median_secs(runs, || {
        for _ in 0..obs_iters {
            let trace = mst_obs::begin_trace();
            let scope = mst_obs::enter_trace(trace);
            for stage in [
                mst_obs::Stage::Parse,
                mst_obs::Stage::Queue,
                mst_obs::Stage::Admit,
                mst_obs::Stage::Cache,
                mst_obs::Stage::Solve,
                mst_obs::Stage::Write,
            ] {
                drop(black_box(mst_obs::span(stage)));
            }
            mst_obs::kernel_observe(mst_obs::Kernel::Solve, "optimal", 42);
            drop(scope);
            mst_obs::finish_trace(mst_obs::TraceMeta {
                id: trace,
                route: "/solve".to_string(),
                status: 200,
                start_ns: 0,
                total_ns: 1,
                notes: mst_obs::take_notes(),
            });
        }
    });
    let obs_ns = secs * 1e9 / obs_iters as f64;
    // Denominator: the committed serve baseline's median request time
    // (1 ms when the baseline is absent — still far above the real
    // cost, so the guard cannot silently vanish).
    let serve_p50_ns =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json"))
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .and_then(|baseline| baseline.get("p50_ms").and_then(Json::as_f64))
            .map_or(1e6, |p50_ms| p50_ms * 1e6);
    let obs_overhead_frac = obs_ns / serve_p50_ns;
    assert!(
        obs_overhead_frac <= 0.05,
        "the span lifecycle must cost at most 5% of the baseline request time \
         (obs {obs_ns:.0} ns/request vs p50 {serve_p50_ns:.0} ns)"
    );

    // --- Fork expansion + selection: the deadline-sweep inner loop. ----
    let fork = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 11).fork(16);
    let n = 256usize;
    let deadline = fork.makespan_upper_bound(n);
    let secs = median_secs(runs, || {
        for _ in 0..expansion_iters {
            black_box(max_tasks_fork_by_deadline(black_box(&fork), n, black_box(deadline)));
        }
    });
    let expansion_ns = secs * 1e9 / expansion_iters as f64;

    // --- Full binary-searched makespan (the schedule_fork sweep). ------
    let search_iters = expansion_iters / 10;
    let secs = median_secs(runs, || {
        for _ in 0..search_iters {
            black_box(schedule_fork(black_box(&fork), black_box(64)));
        }
    });
    let search_ns = secs * 1e9 / search_iters as f64;

    let json = format!(
        "{{\n  \"instances\": {instances_n},\n  \"solve_all_instances_per_sec\": {solve_throughput:.0},\n  \"solve_all_by_deadline_instances_per_sec\": {deadline_throughput:.0},\n  \"tree_exact_instances\": {exact_n},\n  \"tree_exact_instances_per_sec\": {exact_throughput:.0},\n  \"cached_sweep_instances_per_sec\": {cached_throughput:.0},\n  \"repeat_sweep_uncached_instances_per_sec\": {uncached_throughput:.0},\n  \"repair_ns_per_op\": {repair_ns:.0},\n  \"resolve_ns_per_op\": {resolve_ns:.0},\n  \"repair_vs_resolve_speedup\": {repair_speedup:.2},\n  \"obs_span_lifecycle_ns_per_request\": {obs_ns:.0},\n  \"obs_overhead_frac_of_request\": {obs_overhead_frac:.4},\n  \"fork_selection_ns_per_op\": {expansion_ns:.0},\n  \"schedule_fork_ns_per_op\": {search_ns:.0}\n}}\n"
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    print!("{json}");

    if let Some(baseline_path) = check_path {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let baseline = Json::parse(&text)
            .unwrap_or_else(|e| panic!("baseline {baseline_path} is not valid JSON: {e}"));
        let fresh = Json::parse(&json).expect("own output is valid JSON");
        let failures = regressions_against(&baseline, &fresh, tolerance);
        if failures.is_empty() {
            println!(
                "regression check passed against {baseline_path} (tolerance {:.0}%)",
                tolerance * 100.0
            );
        } else {
            for (key, measured, floor) in &failures {
                eprintln!(
                    "PERF REGRESSION {key}: {measured:.0} instances/s is below the \
                     {floor:.0} floor ({:.0}% of the recorded baseline)",
                    (1.0 - tolerance) * 100.0
                );
            }
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results(solve: f64, deadline: f64) -> Json {
        Json::obj([
            ("solve_all_instances_per_sec", Json::Num(solve)),
            ("solve_all_by_deadline_instances_per_sec", Json::Num(deadline)),
        ])
    }

    #[test]
    fn within_tolerance_passes() {
        let baseline = results(100_000.0, 400_000.0);
        // A 25% drop stays inside the 30% budget.
        assert!(regressions_against(&baseline, &results(75_000.0, 300_000.0), 0.30).is_empty());
        // Improvements obviously pass.
        assert!(regressions_against(&baseline, &results(150_000.0, 500_000.0), 0.30).is_empty());
    }

    #[test]
    fn deep_drops_fail_per_key() {
        let baseline = results(100_000.0, 400_000.0);
        let failures = regressions_against(&baseline, &results(60_000.0, 390_000.0), 0.30);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "solve_all_instances_per_sec");
        // A missing key in the fresh run counts as zero throughput.
        let failures = regressions_against(&baseline, &Json::obj([]), 0.30);
        assert_eq!(failures.len(), 2);
    }

    #[test]
    fn missing_baseline_keys_are_not_guarded() {
        let baseline = Json::obj([("unrelated", Json::Num(1.0))]);
        assert!(regressions_against(&baseline, &results(1.0, 1.0), 0.30).is_empty());
    }

    #[test]
    fn committed_baseline_parses_and_has_the_guarded_keys() {
        let text =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json"))
                .expect("committed baseline exists");
        let baseline = Json::parse(&text).expect("baseline is valid JSON");
        for key in GUARDED_KEYS {
            assert!(baseline.get(key).and_then(Json::as_f64).is_some(), "missing {key}");
        }
    }
}
