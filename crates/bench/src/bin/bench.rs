//! `bench` — the perf-trajectory tracker.
//!
//! Times the two service-critical hot paths and writes the numbers to
//! `BENCH_batch.json` so every PR can compare against the recorded
//! trajectory:
//!
//! * **batch throughput** — `Batch::solve_all` over a mixed fleet of
//!   chain/fork/spider instances (the `mst batch` / service workload),
//!   reported as instances per second;
//! * **fork expansion** — one `max_tasks_fork_by_deadline` selection on
//!   a 16-slave star (the inner loop of every deadline sweep), reported
//!   as nanoseconds per op;
//! * **deadline search** — one full `schedule_fork` binary search
//!   (expansion machinery reused across probes), nanoseconds per op.
//!
//! ```text
//! cargo run --release -p mst-bench --bin bench            # full run (10k instances)
//! cargo run --release -p mst-bench --bin bench -- --smoke # CI smoke (500 instances)
//! ```
//!
//! The JSON is flat `{"key": number}` pairs written to the working
//! directory — no serde dependency, just formatted text.

use mst_api::{Batch, Instance, SolverRegistry, TopologyKind};
use mst_fork::{max_tasks_fork_by_deadline, schedule_fork};
use mst_platform::{GeneratorConfig, HeterogeneityProfile};
use std::hint::black_box;
use std::time::Instant;

/// The reproducible mixed fleet every batch measurement uses: chains,
/// forks and spiders over all five heterogeneity profiles.
fn fleet(count: u64) -> Vec<Instance> {
    (0..count)
        .map(|seed| {
            let kind = [TopologyKind::Chain, TopologyKind::Fork, TopologyKind::Spider]
                [(seed % 3) as usize];
            Instance::generate(
                kind,
                HeterogeneityProfile::ALL[(seed % 5) as usize],
                seed,
                1 + (seed % 5) as usize,
                1 + (seed % 9) as usize,
            )
        })
        .collect()
}

/// Median of `runs` timings of `f`, in seconds.
fn median_secs<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (instances_n, runs, expansion_iters) =
        if smoke { (500u64, 3, 200u64) } else { (10_000u64, 5, 5_000u64) };

    // --- Batch throughput: solve_all over the mixed fleet. -------------
    let instances = fleet(instances_n);
    let batch = Batch::new(SolverRegistry::with_defaults());
    // Warm-up pass (pool construction, page faults) before measuring.
    let warm = batch.solve_all(&instances);
    assert!(warm.iter().all(|r| r.is_ok()), "the benchmark fleet must solve cleanly");
    let secs = median_secs(runs, || {
        black_box(batch.solve_all(black_box(&instances)));
    });
    let solve_throughput = instances_n as f64 / secs;

    // Deadline sweeps: the T_lim service path over the same fleet.
    let secs = median_secs(runs, || {
        black_box(batch.solve_all_by_deadline(black_box(&instances), 19));
    });
    let deadline_throughput = instances_n as f64 / secs;

    // --- Fork expansion + selection: the deadline-sweep inner loop. ----
    let fork = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 11).fork(16);
    let n = 256usize;
    let deadline = fork.makespan_upper_bound(n);
    let secs = median_secs(runs, || {
        for _ in 0..expansion_iters {
            black_box(max_tasks_fork_by_deadline(black_box(&fork), n, black_box(deadline)));
        }
    });
    let expansion_ns = secs * 1e9 / expansion_iters as f64;

    // --- Full binary-searched makespan (the schedule_fork sweep). ------
    let search_iters = expansion_iters / 10;
    let secs = median_secs(runs, || {
        for _ in 0..search_iters {
            black_box(schedule_fork(black_box(&fork), black_box(64)));
        }
    });
    let search_ns = secs * 1e9 / search_iters as f64;

    let json = format!(
        "{{\n  \"instances\": {instances_n},\n  \"solve_all_instances_per_sec\": {solve_throughput:.0},\n  \"solve_all_by_deadline_instances_per_sec\": {deadline_throughput:.0},\n  \"fork_selection_ns_per_op\": {expansion_ns:.0},\n  \"schedule_fork_ns_per_op\": {search_ns:.0}\n}}\n"
    );
    std::fs::write("BENCH_batch.json", &json).expect("write BENCH_batch.json");
    print!("{json}");
}
