//! The experiment implementations behind every table of EXPERIMENTS.md.
//!
//! Validation and comparison experiments run through the unified
//! [`mst_api`] surface: instance sets are built once, then swept through
//! registry solvers by the [`Batch`] engine (which fans out over all
//! cores); only the structural analyses (lemma checks, candidate
//! curves) still reach for the per-crate entry points directly.

use crate::table::Table;
use mst_api::{Batch, Instance, Solution, SolveError, SolverRegistry, TopologyKind};
use mst_baselines::bounds::{chain_lower_bound, spider_steady_state_rate};
use mst_baselines::{max_tasks_by_deadline, optimal_tree_makespan};
use mst_core::lemmas::{check_lemma1_no_crossing, check_lemma2_subchain, Lemma2Outcome};
use mst_core::schedule_chain_by_deadline;
use mst_platform::{Chain, GeneratorConfig, HeterogeneityProfile, Spider, Tree};
use mst_sim::{run_parallel, simulate_online, OnlinePolicy};
use mst_spider::schedule_spider;
use mst_tree::{best_cover_schedule, schedule_tree, PathStrategy};

/// Sweeps `instances` through one registry solver and returns the
/// makespans, panicking loudly on any per-instance failure (experiments
/// must not silently drop cases).
fn makespans(registry: &SolverRegistry, solver: &str, instances: &[Instance]) -> Vec<i64> {
    sweep(registry, solver, instances).into_iter().map(|s| s.makespan()).collect()
}

/// Sweeps `instances` through one registry solver via [`Batch`].
fn sweep(registry: &SolverRegistry, solver: &str, instances: &[Instance]) -> Vec<Solution> {
    Batch::new(registry.clone())
        .with_solver(solver)
        .solve_all(instances)
        .into_iter()
        .collect::<Result<Vec<_>, SolveError>>()
        .expect("experiment sweep failed")
}

/// T1 — Theorem 1 validation: the chain algorithm against the exhaustive
/// optimum, per heterogeneity profile. The `optimal ratio` column must be
/// `1.000` everywhere (and `mismatches` zero): the algorithm is exact.
pub fn optimality_table(instances_per_profile: u64) -> Table {
    let registry = SolverRegistry::with_defaults();
    let mut table = Table::new(vec![
        "profile",
        "instances",
        "mismatches",
        "max ratio",
        "mean eager ratio",
        "mean round-robin ratio",
    ]);
    for profile in HeterogeneityProfile::ALL {
        let instances: Vec<Instance> = (0..instances_per_profile)
            .map(|seed| {
                let g = GeneratorConfig::new(profile, seed);
                Instance::new(g.chain(1 + (seed % 4) as usize), 1 + (seed % 6) as usize)
            })
            .collect();
        let algo = makespans(&registry, "chain-optimal", &instances);
        let exact = makespans(&registry, "exact", &instances);
        let eager = makespans(&registry, "eager", &instances);
        let rr = makespans(&registry, "round-robin", &instances);

        let mismatches = algo.iter().zip(&exact).filter(|(a, e)| a != e).count();
        let max_ratio =
            algo.iter().zip(&exact).map(|(a, e)| *a as f64 / *e as f64).fold(0.0f64, f64::max);
        let mean_vs_exact = |xs: &[i64]| {
            xs.iter().zip(&exact).map(|(x, e)| *x as f64 / *e as f64).sum::<f64>()
                / exact.len() as f64
        };
        table.row(vec![
            profile.name().to_string(),
            instances.len().to_string(),
            mismatches.to_string(),
            format!("{max_ratio:.3}"),
            format!("{:.3}", mean_vs_exact(&eager)),
            format!("{:.3}", mean_vs_exact(&rr)),
        ]);
    }
    table
}

/// T3 — Theorem 3 validation: spider task counts by deadline against the
/// exhaustive optimum. `mismatches` must be zero.
pub fn spider_table(instances: u64) -> Table {
    let registry = SolverRegistry::with_defaults();
    let mut table = Table::new(vec!["deadline", "instances", "mismatches", "mean tasks (algo)"]);
    for deadline in [5i64, 10, 15, 20] {
        let cases: Vec<Instance> = (0..instances)
            .map(|seed| {
                let spider =
                    GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed)
                        .spider(1 + (seed % 3) as usize, 1, 2);
                Instance::new(spider, 5)
            })
            .collect();
        let algo: Vec<usize> = Batch::new(registry.clone())
            .with_solver("spider-optimal")
            .solve_all_by_deadline(&cases, deadline)
            .into_iter()
            .map(|r| r.expect("spider deadline sweep").n())
            .collect();
        let exact = run_parallel(&cases, |instance| {
            let spider = instance.platform.as_spider().expect("spider case");
            max_tasks_by_deadline(&Tree::from_spider(spider), deadline, 5)
        });
        let mismatches = algo.iter().zip(&exact).filter(|(a, e)| a != e).count();
        let mean = algo.iter().map(|&a| a as f64).sum::<f64>() / algo.len() as f64;
        table.row(vec![
            deadline.to_string(),
            algo.len().to_string(),
            mismatches.to_string(),
            format!("{mean:.2}"),
        ]);
    }
    table
}

/// E1 — the value of optimality: heuristic-to-optimal makespan ratios on
/// larger chains, per heterogeneity regime. Shows where the backward
/// construction wins (comm-bound platforms, long chains) and where
/// heuristics are nearly free (compute-bound platforms).
pub fn heuristic_gap_table(instances_per_profile: u64, p: usize, n: usize) -> Table {
    let mut table = Table::new(vec![
        "profile",
        "p",
        "n",
        "optimal mean",
        "eager/opt",
        "round-robin/opt",
        "master-only/opt",
        "lower-bound/opt",
    ]);
    let registry = SolverRegistry::with_defaults();
    for profile in HeterogeneityProfile::ALL {
        let instances: Vec<Instance> = (0..instances_per_profile)
            .map(|seed| Instance::new(GeneratorConfig::new(profile, seed).chain(p), n))
            .collect();
        let opt = makespans(&registry, "chain-optimal", &instances);
        let k = opt.len() as f64;
        let mean_opt = opt.iter().map(|&m| m as f64).sum::<f64>() / k;
        let mean_ratio = |solver: &str| {
            makespans(&registry, solver, &instances)
                .iter()
                .zip(&opt)
                .map(|(h, o)| *h as f64 / *o as f64)
                .sum::<f64>()
                / k
        };
        let mean_lb = instances
            .iter()
            .zip(&opt)
            .map(|(instance, o)| {
                let chain = instance.platform.as_chain().expect("chain case");
                chain_lower_bound(chain, n) as f64 / *o as f64
            })
            .sum::<f64>()
            / k;
        table.row(vec![
            profile.name().to_string(),
            p.to_string(),
            n.to_string(),
            format!("{mean_opt:.1}"),
            format!("{:.3}", mean_ratio("eager")),
            format!("{:.3}", mean_ratio("round-robin")),
            format!("{:.3}", mean_ratio("master-only")),
            format!("{mean_lb:.3}"),
        ]);
    }
    table
}

/// E2 — steady-state convergence: offline-optimal and online throughput
/// against the bandwidth-centric rate bound, as the batch grows. Both
/// throughputs must converge towards (and never exceed) the bound.
pub fn steady_state_table(seed: u64, legs: usize) -> Table {
    let spider = GeneratorConfig::new(HeterogeneityProfile::ALL[0], seed).spider(legs, 1, 3);
    let rate = spider_steady_state_rate(&spider);
    let mut table = Table::new(vec![
        "n",
        "optimal makespan",
        "optimal rate",
        "online-eager rate",
        "online-bc rate",
        "rate bound",
    ]);
    for n in [2usize, 5, 10, 20, 40, 80] {
        let (opt, _) = schedule_spider(&spider, n);
        let eager = simulate_online(&spider, n, OnlinePolicy::EarliestCompletion).makespan();
        let bc = simulate_online(&spider, n, OnlinePolicy::BandwidthCentric).makespan();
        table.row(vec![
            n.to_string(),
            opt.to_string(),
            format!("{:.4}", n as f64 / opt as f64),
            format!("{:.4}", n as f64 / eager as f64),
            format!("{:.4}", n as f64 / bc as f64),
            format!("{rate:.4}"),
        ]);
    }
    table
}

/// F4 — Lemma 1 and Lemma 2 structural checks over random instances:
/// both `violations` columns must be zero.
pub fn lemma_table(instances: u64) -> Table {
    let mut table =
        Table::new(vec!["profile", "instances", "lemma1 violations", "lemma2 mismatches"]);
    for profile in HeterogeneityProfile::ALL {
        let cases: Vec<(Chain, usize)> = (0..instances)
            .map(|seed| {
                let g = GeneratorConfig::new(profile, seed);
                (g.chain(2 + (seed % 4) as usize), 1 + (seed % 7) as usize)
            })
            .collect();
        let rows = run_parallel(&cases, |(chain, n)| {
            let l1 = check_lemma1_no_crossing(chain, *n).len();
            let l2 = match check_lemma2_subchain(chain, *n) {
                Lemma2Outcome::Consistent { .. } => 0,
                Lemma2Outcome::Mismatch(_) => 1,
            };
            (l1, l2)
        });
        table.row(vec![
            profile.name().to_string(),
            rows.len().to_string(),
            rows.iter().map(|r| r.0).sum::<usize>().to_string(),
            rows.iter().map(|r| r.1).sum::<usize>().to_string(),
        ]);
    }
    table
}

/// E3 — tree covering: best-strategy cover makespan against the true
/// tree optimum on small random trees; ratio 1.0 means the cover was
/// lossless (always the case for spider-shaped trees).
pub fn tree_table(instances: u64) -> Table {
    let mut table =
        Table::new(vec!["tree size", "instances", "mean cover/opt", "max cover/opt", "lossless %"]);
    for size in [3usize, 5, 7] {
        let cases: Vec<Tree> = (0..instances)
            .map(|seed| {
                GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed + 1000)
                    .tree(size)
            })
            .collect();
        let n = 4;
        let rows = run_parallel(&cases, |tree| {
            let opt = optimal_tree_makespan(tree, n) as f64;
            let cover = best_cover_schedule(tree, n).makespan as f64;
            cover / opt
        });
        let mean = rows.iter().sum::<f64>() / rows.len() as f64;
        let max = rows.iter().fold(0.0f64, |a, &b| a.max(b));
        let lossless = rows.iter().filter(|&&r| r <= 1.0).count() as f64 / rows.len() as f64;
        table.row(vec![
            size.to_string(),
            rows.len().to_string(),
            format!("{mean:.3}"),
            format!("{max:.3}"),
            format!("{:.0}%", lossless * 100.0),
        ]);
    }
    table
}

/// E4 — the `T_lim` staircase: tasks schedulable by each deadline on the
/// Figure-2 chain (the monotone staircase the spider algorithm walks).
pub fn staircase_table() -> Table {
    let chain = Chain::paper_figure2();
    let mut table = Table::new(vec!["deadline", "tasks", "first emission"]);
    for deadline in (0..=20).step_by(2) {
        let s = schedule_chain_by_deadline(&chain, 100, deadline);
        table.row(vec![
            deadline.to_string(),
            s.n().to_string(),
            s.start_time().map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
        ]);
    }
    table
}

/// E5 — the makespan curve and the distribution crossover: how the
/// optimal makespan, the marginal cost per task and the deepest used
/// processor evolve with the batch size on the Figure-2 chain and on a
/// deeper compute-bound chain.
pub fn makespan_curve_table() -> Table {
    use mst_core::analysis::{depth_usage, makespan_curve, marginal_costs};
    let mut table = Table::new(vec!["chain", "n", "makespan", "marginal", "deepest proc"]);
    let deep = GeneratorConfig::new(HeterogeneityProfile::ComputeBound, 5).chain(6);
    for (name, chain) in [("figure-2", Chain::paper_figure2()), ("compute-bound p=6", deep)] {
        let curve = makespan_curve(&chain, 32);
        let costs = marginal_costs(&curve);
        for n in [1usize, 2, 4, 8, 16, 32] {
            table.row(vec![
                name.to_string(),
                n.to_string(),
                curve[n - 1].to_string(),
                costs[n - 1].to_string(),
                depth_usage(&chain, n).to_string(),
            ]);
        }
    }
    table
}

/// E6 — quantised vs fluid (divisible-load) models on a star: per-task
/// cost of the paper's quantised optimum against the single-installment
/// divisible-load solution. Fluid wins tiny loads (it splits tasks),
/// quantised wins long batches (it pipelines), with the crossover in
/// between.
pub fn fluid_vs_quantised_table(seed: u64, slaves: usize) -> Table {
    use mst_baselines::{divisible_star, divisible_star_period};
    use mst_fork::schedule_fork;
    let fork = GeneratorConfig::new(HeterogeneityProfile::ALL[0], seed).fork(slaves);
    let period = divisible_star_period(&fork);
    let mut table = Table::new(vec![
        "n",
        "quantised makespan",
        "quantised per-task",
        "fluid time",
        "fluid period",
    ]);
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let (makespan, _) = schedule_fork(&fork, n);
        let fluid = divisible_star(&fork, n as f64).time;
        table.row(vec![
            n.to_string(),
            makespan.to_string(),
            format!("{:.3}", makespan as f64 / n as f64),
            format!("{fluid:.2}"),
            format!("{period:.3}"),
        ]);
    }
    table
}

/// E6b — the finite-buffer ablation: online makespans as the per-node
/// waiting capacity shrinks, relative to the unbounded-buffer model the
/// paper's Definition 1 assumes.
pub fn buffer_ablation_table(instances: u64) -> Table {
    use mst_sim::simulate_online_buffered;
    let mut table = Table::new(vec![
        "policy",
        "instances",
        "cap 0 / unbounded",
        "cap 1 / unbounded",
        "cap 2 / unbounded",
        "strict gaps (cap 0)",
    ]);
    for policy in [
        OnlinePolicy::EarliestCompletion,
        OnlinePolicy::BandwidthCentric,
        OnlinePolicy::RoundRobinLegs,
    ] {
        let cases: Vec<Spider> =
            (0..instances)
                .map(|seed| {
                    GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed)
                        .spider(1 + (seed % 4) as usize, 1, 1)
                })
                .collect();
        let rows = run_parallel(&cases, |spider| {
            let unbounded =
                simulate_online_buffered(spider, 16, policy, usize::MAX).makespan() as f64;
            let caps: Vec<f64> = [0usize, 1, 2]
                .iter()
                .map(|&c| {
                    simulate_online_buffered(spider, 16, policy, c).makespan() as f64 / unbounded
                })
                .collect();
            (caps[0], caps[1], caps[2])
        });
        let k = rows.len() as f64;
        let strict = rows.iter().filter(|r| r.0 > 1.0 + 1e-9).count();
        table.row(vec![
            format!("{policy:?}"),
            rows.len().to_string(),
            format!("{:.3}", rows.iter().map(|r| r.0).sum::<f64>() / k),
            format!("{:.3}", rows.iter().map(|r| r.1).sum::<f64>() / k),
            format!("{:.3}", rows.iter().map(|r| r.2).sum::<f64>() / k),
            strict.to_string(),
        ]);
    }
    table
}

/// Strategy comparison for tree covering (part of E3).
pub fn tree_strategy_table(instances: u64, size: usize, n: usize) -> Table {
    let mut table = Table::new(vec!["strategy", "mean makespan", "wins"]);
    let cases: Vec<Tree> = (0..instances)
        .map(|seed| {
            GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed + 500)
                .tree(size)
        })
        .collect();
    let per_case: Vec<Vec<(PathStrategy, i64)>> = run_parallel(&cases, |tree| {
        PathStrategy::ALL.iter().map(|&s| (s, schedule_tree(tree, n, s).makespan)).collect()
    });
    for (idx, strategy) in PathStrategy::ALL.iter().enumerate() {
        let mean = per_case.iter().map(|r| r[idx].1 as f64).sum::<f64>() / per_case.len() as f64;
        let wins = per_case
            .iter()
            .filter(|r| {
                let best = r.iter().map(|(_, m)| *m).min().expect("non-empty");
                r[idx].1 == best
            })
            .count();
        table.row(vec![strategy.name().to_string(), format!("{mean:.1}"), wins.to_string()]);
    }
    table
}

/// E7 — the unified-registry sweep: every registry solver against every
/// topology it supports, one shared seeded instance set per topology,
/// all dispatched through [`Batch`]. The `infeasible` column must stay
/// zero: every witnessed solution passes the [`mst_api::verify`] oracle.
pub fn registry_table(instances_per_topology: u64) -> Table {
    let registry = SolverRegistry::with_defaults();
    let mut table =
        Table::new(vec!["solver", "topology", "instances", "mean makespan", "infeasible"]);
    for kind in TopologyKind::ALL {
        let instances: Vec<Instance> = (0..instances_per_topology)
            .map(|seed| {
                Instance::generate(
                    kind,
                    HeterogeneityProfile::ALL[(seed % 5) as usize],
                    seed,
                    3,
                    1 + (seed % 5) as usize, // small enough for `exact`
                )
            })
            .collect();
        for solver in registry.supporting(kind) {
            let solutions = sweep(&registry, solver.name(), &instances);
            let infeasible = instances
                .iter()
                .zip(&solutions)
                .filter(|(instance, solution)| {
                    !mst_api::verify(instance, solution).map(|r| r.is_feasible()).unwrap_or(false)
                })
                .count();
            let mean =
                solutions.iter().map(|s| s.makespan() as f64).sum::<f64>() / solutions.len() as f64;
            table.row(vec![
                solver.name().to_string(),
                kind.name().to_string(),
                solutions.len().to_string(),
                format!("{mean:.1}"),
                infeasible.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimality_table_reports_zero_mismatches() {
        let t = optimality_table(8);
        let s = t.to_string();
        // every profile row must carry a 0 mismatch count
        for line in s.lines().skip(2) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            assert_eq!(cells[3], "0", "mismatch in {line}");
            assert_eq!(cells[4], "1.000", "ratio in {line}");
        }
    }

    #[test]
    fn spider_table_reports_zero_mismatches() {
        let t = spider_table(6);
        for line in t.to_string().lines().skip(2) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            assert_eq!(cells[3], "0", "mismatch in {line}");
        }
    }

    #[test]
    fn registry_table_is_fully_feasible() {
        let t = registry_table(5);
        let s = t.to_string();
        let mut rows = 0;
        for line in s.lines().skip(2) {
            let last =
                line.split('|').map(str::trim).rfind(|c| !c.is_empty()).expect("infeasible cell");
            assert_eq!(last, "0", "infeasible in {line}");
            rows += 1;
        }
        // Every topology must be served by several solvers.
        assert!(rows >= 4 * 3, "registry sweep covered only {rows} (solver, topology) pairs");
    }

    #[test]
    fn heuristic_gaps_are_at_least_one() {
        let t = heuristic_gap_table(6, 5, 12);
        for line in t.to_string().lines().skip(2) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            for idx in [5, 6, 7] {
                let ratio: f64 = cells[idx].parse().expect("ratio cell");
                assert!(ratio >= 1.0, "heuristic ratio below 1 in {line}");
            }
            let lb: f64 = cells[8].parse().expect("lb cell");
            assert!(lb <= 1.0, "lower bound above optimum in {line}");
        }
    }

    #[test]
    fn lemma_table_is_clean() {
        let t = lemma_table(6);
        for line in t.to_string().lines().skip(2) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            assert_eq!(cells[3], "0");
            assert_eq!(cells[4], "0");
        }
    }

    #[test]
    fn staircase_is_monotone() {
        let t = staircase_table();
        let s = t.to_string();
        let mut prev = 0;
        for line in s.lines().skip(2) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            let tasks: usize = cells[2].parse().expect("task cell");
            assert!(tasks >= prev);
            prev = tasks;
        }
        assert!(prev >= 5, "20 ticks fit at least the Figure-2 batch");
    }

    #[test]
    fn steady_state_rates_never_exceed_bound() {
        let t = steady_state_table(3, 2);
        for line in t.to_string().lines().skip(2) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            let opt_rate: f64 = cells[3].parse().expect("rate");
            let bound: f64 = cells[6].parse().expect("bound");
            // Finite batches may not reach the bound but must not beat it
            // by more than the end-effect slack of one task.
            assert!(opt_rate <= bound * 1.35 + 0.05, "{line}");
        }
    }

    #[test]
    fn tree_tables_render() {
        let t = tree_table(4);
        assert_eq!(t.len(), 3);
        let t = tree_strategy_table(4, 5, 3);
        assert_eq!(t.len(), 4);
    }
}
