//! # mst-baselines — exact and heuristic baselines
//!
//! The paper *proves* its algorithms optimal; this crate lets the test
//! suite and the experiment harness *check* that claim empirically, and
//! quantifies how much optimality buys over the schedulers a practitioner
//! would otherwise write.
//!
//! * [`asap`] — the forward "as soon as possible" evaluator: given a
//!   platform (any out-tree) and an *assignment sequence* (which node
//!   each task is routed to, in master-emission order), computes the
//!   earliest feasible schedule. For identical tasks under the one-port
//!   model, per-resource orders can be taken equal to the emission order
//!   (a payload-exchange argument), so minimising over sequences is
//!   exact.
//! * [`exact`] — branch-and-bound exhaustive search over assignment
//!   sequences: the true optimum for small instances (the ground truth
//!   behind the Theorem 1 / Theorem 3 validation experiments).
//! * [`heuristics`] — forward heuristics (master-only, round-robin,
//!   random, eager min-completion) representing what one loses without
//!   the paper's backward construction.
//! * [`bounds`] — analytic lower bounds and steady-state rates.
//! * [`divisible`] — single-installment divisible-load theory on stars
//!   (the fluid relaxation of Robertazzi et al. that the paper's
//!   introduction contrasts with its quantised tasks).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod asap;
pub mod bounds;
pub mod divisible;
pub mod exact;
pub mod heuristics;

pub use asap::{asap_chain, asap_tree, TreeAsap};
pub use divisible::{divisible_star, divisible_star_period, DivisibleSolution};
pub use exact::{
    max_tasks_by_deadline, optimal_chain_makespan, optimal_spider_makespan, optimal_tree_makespan,
};
pub use heuristics::{eager_chain, master_only_chain, random_chain, round_robin_chain};
