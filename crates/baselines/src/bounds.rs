//! Analytic bounds: divisible-load style lower bounds and steady-state
//! rates.
//!
//! The paper situates itself against the divisible-load literature
//! (Robertazzi et al.) where the workload can be split in arbitrary
//! fractions: any divisible-load optimum lower-bounds the quantised
//! optimum, so these bounds sandwich the algorithms' results in the
//! experiment tables.

use mst_platform::{Chain, Spider, Time};

/// Lower bound on the makespan of `n` unit tasks on a chain: the link-1
/// serialisation bound `n * c_1 + min_k (c_2 + .. + c_k + w_k)` combined
/// with the best-processor pipeline bound.
pub fn chain_lower_bound(chain: &Chain, n: usize) -> Time {
    let serialisation = chain.makespan_lower_bound(n);
    // Pipeline bound per processor k: the k-th processor alone cannot
    // beat travel + (n-1) * w_k + w_k ... but tasks may be spread, so the
    // only per-processor bound valid globally is the serialisation one
    // plus the trivial single-task bound; we also add the steady-state
    // rate bound: n tasks need at least ceil((n - warmup) / rate) ticks.
    let (rate_tasks, rate_ticks) = chain.steady_state_rate();
    // makespan >= (n * rate_ticks) / rate_tasks is NOT valid in general
    // (warm-up can only help the bound); the safe form is
    // ceil(n * ticks / tasks) ignoring warm-up... which IS valid:
    // in any window of length L the platform completes at most
    // ceil(L * tasks / ticks) tasks, and every completion happens within
    // [0, makespan], so n <= ceil(makespan * tasks / ticks) hence
    // makespan >= floor-ish; we use the conservative integer form below.
    let rate_bound = div_ceil_i64(n as Time * rate_ticks as Time, rate_tasks as Time)
        .saturating_sub(rate_ticks as Time); // slack one period for boundary effects
    serialisation.max(rate_bound)
}

fn div_ceil_i64(a: Time, b: Time) -> Time {
    (a + b - 1) / b
}

/// Lower bound for a spider: every task occupies the master's out-port
/// for at least the smallest first-link latency, and the last task still
/// needs the cheapest completion tail.
pub fn spider_lower_bound(spider: &Spider, n: usize) -> Time {
    let min_c1 = spider.legs().iter().map(|l| l.c(1)).min().expect("legs");
    let min_tail = spider
        .legs()
        .iter()
        .map(|l| {
            (1..=l.len()).map(|k| l.travel_time(k) - l.c(1) + l.w(k)).min().expect("leg non-empty")
        })
        .min()
        .expect("legs");
    n as Time * min_c1 + min_tail
}

/// Aggregate steady-state throughput (tasks per tick) of a spider under
/// the bandwidth-centric port allocation: legs are served in increasing
/// first-link latency until the master's out-port saturates.
///
/// Returned as an `f64` because the greedy waterfall mixes incomparable
/// rationals; used for reporting only, never for correctness decisions.
pub fn spider_steady_state_rate(spider: &Spider) -> f64 {
    let mut legs: Vec<(f64, f64)> = spider
        .legs()
        .iter()
        .map(|l| {
            let (t, d) = l.steady_state_rate();
            (l.c(1) as f64, t as f64 / d as f64)
        })
        .collect();
    legs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("latencies are finite"));
    let mut port_budget = 1.0f64; // fraction of port time available
    let mut total_rate = 0.0f64;
    for (c1, leg_rate) in legs {
        if port_budget <= 0.0 {
            break;
        }
        // Serving a leg at rate r consumes port time r * c1 per tick.
        let feasible = (port_budget / c1).min(leg_rate);
        total_rate += feasible;
        port_budget -= feasible * c1;
    }
    total_rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{optimal_chain_makespan, optimal_spider_makespan};
    use mst_platform::{GeneratorConfig, HeterogeneityProfile};

    #[test]
    fn chain_bound_is_sound_on_small_instances() {
        for seed in 0..40u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let chain = g.chain(1 + (seed % 4) as usize);
            let n = 1 + (seed % 6) as usize;
            let lb = chain_lower_bound(&chain, n);
            let opt = optimal_chain_makespan(&chain, n);
            assert!(lb <= opt, "lower bound {lb} exceeds optimum {opt} (seed {seed}, {chain})");
        }
    }

    #[test]
    fn spider_bound_is_sound_on_small_instances() {
        for seed in 0..25u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let spider = g.spider(2, 1, 2);
            let n = 1 + (seed % 5) as usize;
            let lb = spider_lower_bound(&spider, n);
            let opt = optimal_spider_makespan(&spider, n);
            assert!(lb <= opt, "spider bound {lb} exceeds optimum {opt} (seed {seed})");
        }
    }

    #[test]
    fn figure2_bounds() {
        let chain = Chain::paper_figure2();
        let lb = chain_lower_bound(&chain, 5);
        assert!(lb <= 14);
        assert!(lb >= 10, "the serialisation term alone gives n*c1 = 10");
    }

    #[test]
    fn spider_rate_saturates_at_port_capacity() {
        // Two legs with c1 = 2 and infinite-ish compute: the port can
        // emit one task per 2 ticks, total rate 0.5.
        let spider = Spider::from_legs(&[&[(2, 1)], &[(2, 1)]]).unwrap();
        let r = spider_steady_state_rate(&spider);
        assert!((r - 0.5).abs() < 1e-9, "rate {r}");
    }

    #[test]
    fn spider_rate_respects_slow_legs() {
        // One leg, c1 = 1 but w = 10: leg rate min(1/1, 1/10) = 0.1.
        let spider = Spider::from_legs(&[&[(1, 10)]]).unwrap();
        let r = spider_steady_state_rate(&spider);
        assert!((r - 0.1).abs() < 1e-9);
    }
}
