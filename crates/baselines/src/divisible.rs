//! Single-installment divisible-load theory on stars — the fluid
//! relaxation the paper positions itself against.
//!
//! The paper's introduction contrasts its *quantised* tasks ("quantums of
//! workload") with the divisible-load literature (Robertazzi et al.,
//! references \[1], \[4], \[5], \[10]) where the workload splits into
//! fractions of any size. This module implements the classic
//! single-installment star solution so the experiments can show the two
//! models converging as the batch grows — and diverging for small
//! batches, which is precisely the regime the paper's algorithms win.
//!
//! Model: a total load of `L` task-units; sending `x` units to slave `i`
//! occupies the master's out-port for `x * c_i`, after which slave `i`
//! computes for `x * w_i` (communication first, single contiguous chunk
//! per slave, one-port master, overlap across slaves). For a fixed
//! participation order the optimum makes every participating slave
//! finish at the same instant `T`; fractions then follow a linear
//! recurrence in `T`, and the classic ordering result (serve faster
//! links first) picks the order.

use mst_platform::Fork;

/// The divisible-load solution for a star.
#[derive(Debug, Clone, PartialEq)]
pub struct DivisibleSolution {
    /// Common finish time of all participating slaves.
    pub time: f64,
    /// Load fraction per slave (**0-based**, aligned with
    /// [`Fork::slaves`]); zero for excluded slaves.
    pub fractions: Vec<f64>,
}

/// Solves single-installment divisible load of `load` task-units on the
/// star, serving slaves in ascending link latency and excluding slaves
/// that would receive a negative share.
///
/// Returns the finish time and per-slave unit fractions (summing to
/// `load` up to floating-point error).
///
/// ```
/// use mst_platform::Fork;
/// use mst_baselines::divisible_star;
/// let fork = Fork::from_pairs(&[(2, 5)]).unwrap();
/// // One slave: T = L * (c + w).
/// let sol = divisible_star(&fork, 3.0);
/// assert!((sol.time - 21.0).abs() < 1e-9);
/// ```
pub fn divisible_star(fork: &Fork, load: f64) -> DivisibleSolution {
    assert!(load > 0.0, "load must be positive");
    let p = fork.len();
    // Participation order: ascending c, ties by ascending w (the faster
    // CPU first absorbs more of the early port time).
    let mut order: Vec<usize> = (0..p).collect();
    order.sort_by_key(|&i| (fork.slaves()[i].comm, fork.slaves()[i].work));

    // Iteratively solve with the first `k` slaves of the order until all
    // fractions are non-negative (slaves too far down the order can be
    // useless for small loads only in degenerate cases; with zero
    // latencies every slave helps, but we keep the guard for robustness).
    for k in (1..=p).rev() {
        let active = &order[..k];
        if let Some(solution) = solve_fixed_order(fork, active, load) {
            return solution;
        }
    }
    unreachable!("a single slave always admits a solution");
}

/// Solves the all-finish-together system for a fixed participation
/// order; `None` if any fraction comes out negative.
fn solve_fixed_order(fork: &Fork, active: &[usize], load: f64) -> Option<DivisibleSolution> {
    // Port hand-off time t_j = a_j + b_j * T; chunk x_j = (T - t_{j-1}) /
    // (c_j + w_j). Total load is linear in T: X(T) = sum_a + sum_b * T.
    let mut a = 0.0f64; // t_{j-1} constant term
    let mut b = 0.0f64; // t_{j-1} T-coefficient
    let mut sum_a = 0.0f64;
    let mut sum_b = 0.0f64;
    // Record per-slave linear forms to evaluate fractions afterwards.
    let mut forms = Vec::with_capacity(active.len());
    for &i in active {
        let c = fork.slaves()[i].comm as f64;
        let w = fork.slaves()[i].work as f64;
        let denom = c + w;
        // x = (-a + (1 - b) T) / denom
        let xa = -a / denom;
        let xb = (1.0 - b) / denom;
        forms.push((i, xa, xb));
        sum_a += xa;
        sum_b += xb;
        // t_j = t_{j-1} + c * x
        a += c * xa;
        b += c * xb;
    }
    if sum_b <= 0.0 {
        return None;
    }
    let time = (load - sum_a) / sum_b;
    let mut fractions = vec![0.0; fork.len()];
    for &(i, xa, xb) in &forms {
        let x = xa + xb * time;
        if x < -1e-9 {
            return None;
        }
        fractions[i] = x.max(0.0);
    }
    Some(DivisibleSolution { time, fractions })
}

/// Per-unit asymptotic time of the divisible solution: `time / load` for
/// a large load — the fluid steady-state period of the star.
pub fn divisible_star_period(fork: &Fork) -> f64 {
    let big = 1e6;
    divisible_star(fork, big).time / big
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_fork::schedule_fork;
    use mst_platform::{GeneratorConfig, HeterogeneityProfile};

    #[test]
    fn single_slave_closed_form() {
        // One slave: T = L * (c + w).
        let fork = Fork::from_pairs(&[(2, 5)]).unwrap();
        let sol = divisible_star(&fork, 10.0);
        assert!((sol.time - 70.0).abs() < 1e-9);
        assert!((sol.fractions[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn two_identical_slaves_share_and_beat_one() {
        let one = Fork::from_pairs(&[(1, 3)]).unwrap();
        let two = Fork::from_pairs(&[(1, 3), (1, 3)]).unwrap();
        let t1 = divisible_star(&one, 12.0).time;
        let sol = divisible_star(&two, 12.0);
        assert!(sol.time < t1, "{} !< {t1}", sol.time);
        // First-served slave finishes its comm earlier so absorbs more.
        assert!(sol.fractions[0] >= sol.fractions[1]);
        let total: f64 = sol.fractions.iter().sum();
        assert!((total - 12.0).abs() < 1e-9);
    }

    #[test]
    fn all_participants_finish_simultaneously() {
        for seed in 0..15u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let fork = g.fork(1 + (seed % 5) as usize);
            let sol = divisible_star(&fork, 25.0);
            // Re-simulate the fluid schedule: sequential comms in the
            // ascending-c order, each slave finishing at T.
            let mut order: Vec<usize> = (0..fork.len()).collect();
            order.sort_by_key(|&i| (fork.slaves()[i].comm, fork.slaves()[i].work));
            let mut clock = 0.0;
            for &i in &order {
                let x = sol.fractions[i];
                if x <= 1e-12 {
                    continue;
                }
                let c = fork.slaves()[i].comm as f64;
                let w = fork.slaves()[i].work as f64;
                clock += x * c;
                let finish = clock + x * w;
                assert!(
                    (finish - sol.time).abs() < 1e-6,
                    "seed {seed}: slave {i} finishes at {finish}, T = {}",
                    sol.time
                );
            }
        }
    }

    #[test]
    fn time_is_monotone_in_load() {
        let fork = Fork::from_pairs(&[(1, 4), (2, 2), (3, 6)]).unwrap();
        let mut prev = 0.0;
        for load in [1.0, 2.0, 5.0, 10.0, 50.0] {
            let t = divisible_star(&fork, load).time;
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn quantised_and_fluid_models_cross_over() {
        // The headline model comparison. Single-installment divisible
        // load sends each slave ONE contiguous chunk: it may split a
        // task (impossible for the quantised model — wins for tiny
        // loads) but cannot pipeline chunks (the quantised schedule
        // interleaves per-task communications — wins for long batches).
        //
        // Fork (1,4),(2,3): fluid period = 25/9 ≈ 2.78 per unit, while
        // the quantised steady state sustains 7/12 tasks/tick, i.e.
        // ≈ 1.71 ticks per task.
        let fork = Fork::from_pairs(&[(1, 4), (2, 3)]).unwrap();
        let period = divisible_star_period(&fork);
        assert!((period - 25.0 / 9.0).abs() < 1e-3, "fluid period {period}");

        // Small load: fluid wins (it splits the single task).
        let fluid_1 = divisible_star(&fork, 1.0).time;
        let (quant_1, _) = schedule_fork(&fork, 1);
        assert!(fluid_1 < quant_1 as f64);

        // Long batch: the quantised optimum's per-task cost drops below
        // the fluid period, and keeps shrinking towards 12/7.
        let mut prev = f64::INFINITY;
        for n in [4usize, 16, 64] {
            let (makespan, _) = schedule_fork(&fork, n);
            let per_task = makespan as f64 / n as f64;
            assert!(per_task <= prev + 1e-9, "per-task cost must shrink with n");
            prev = per_task;
        }
        assert!(prev < period, "quantised per-task {prev} should beat fluid {period}");
        assert!(prev >= 12.0 / 7.0 - 1e-9, "cannot beat the steady-state rate");
    }

    #[test]
    fn divisible_is_faster_for_fractional_regimes() {
        // For a tiny load the fluid model splits one "task" across both
        // slaves — impossible for the quantised model. Shape check: the
        // divisible time for load 1 is below the quantised 1-task optimum.
        let fork = Fork::from_pairs(&[(2, 5), (3, 4)]).unwrap();
        let fluid = divisible_star(&fork, 1.0).time;
        let (quantised, _) = schedule_fork(&fork, 1);
        assert!(fluid < quantised as f64);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_load_panics() {
        let fork = Fork::from_pairs(&[(1, 1)]).unwrap();
        let _ = divisible_star(&fork, 0.0);
    }
}
