//! Exhaustive branch-and-bound search for the true optimum.
//!
//! For identical tasks under the one-port model, the optimum equals the
//! minimum ASAP makespan over all assignment sequences (see
//! [`crate::asap`] for the normalisation argument), so exhaustive search
//! over the `p^n` sequences — with branch-and-bound pruning — is exact.
//! Cost grows exponentially in `n`; these functions are meant for the
//! small instances of the optimality-validation experiments
//! (`n <= 8`, `p <= 5` stays well under a second).

use crate::asap::TreeAsap;
use mst_platform::{Chain, Spider, Time, Tree};

/// Minimum makespan of `n` tasks on an arbitrary out-tree platform, by
/// exhaustive search over assignment sequences.
pub fn optimal_tree_makespan(tree: &Tree, n: usize) -> Time {
    assert!(n >= 1, "need at least one task");
    // Initial incumbent: everything on the single best node.
    let mut best = (1..=tree.len())
        .map(|v| {
            let state = &mut TreeAsap::new(tree);
            let mut last = 0;
            for _ in 0..n {
                last = state.place(v).2;
            }
            last
        })
        .min()
        .expect("tree is non-empty");
    let mut state = TreeAsap::new(tree);
    search(tree, n, &mut state, &mut best);
    best
}

fn search(tree: &Tree, remaining: usize, state: &mut TreeAsap<'_>, best: &mut Time) {
    if remaining == 0 {
        *best = (*best).min(state.makespan());
        return;
    }
    if state.makespan() >= *best {
        return; // even with zero additional cost we cannot improve
    }
    for v in 1..=tree.len() {
        // Clone-and-descend: instance sizes are tiny, clarity wins over
        // an undo log.
        let mut child = state.clone();
        let (_, _, completion) = child.place(v);
        if completion >= *best {
            continue;
        }
        search(tree, remaining - 1, &mut child, best);
    }
}

/// Minimum makespan of `n` tasks on a chain (exhaustive). Ground truth
/// for Theorem 1.
///
/// ```
/// use mst_platform::Chain;
/// use mst_baselines::optimal_chain_makespan;
/// assert_eq!(optimal_chain_makespan(&Chain::paper_figure2(), 5), 14);
/// ```
pub fn optimal_chain_makespan(chain: &Chain, n: usize) -> Time {
    optimal_tree_makespan(&Tree::from_chain(chain), n)
}

/// Minimum makespan of `n` tasks on a spider (exhaustive). Ground truth
/// for the binary-searched spider makespan.
pub fn optimal_spider_makespan(spider: &Spider, n: usize) -> Time {
    optimal_tree_makespan(&Tree::from_spider(spider), n)
}

/// Maximum number of tasks (at most `cap`) that can all complete by
/// `deadline` on the tree, by exhaustive search. Ground truth for
/// Theorem 3 (the spider algorithm maximises tasks within `T_lim`).
pub fn max_tasks_by_deadline(tree: &Tree, deadline: Time, cap: usize) -> usize {
    let mut best = 0;
    let mut state = TreeAsap::new(tree);
    search_count(tree, deadline, cap, &mut state, 0, &mut best);
    best
}

fn search_count(
    tree: &Tree,
    deadline: Time,
    cap: usize,
    state: &mut TreeAsap<'_>,
    placed: usize,
    best: &mut usize,
) {
    *best = (*best).max(placed);
    if placed == cap {
        return;
    }
    for v in 1..=tree.len() {
        let mut child = state.clone();
        let (_, _, completion) = child.place(v);
        if completion > deadline {
            continue;
        }
        search_count(tree, deadline, cap, &mut child, placed + 1, best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_core::{schedule_chain, schedule_chain_by_deadline};
    use mst_platform::{GeneratorConfig, HeterogeneityProfile};

    #[test]
    fn figure2_optimum_is_14() {
        assert_eq!(optimal_chain_makespan(&Chain::paper_figure2(), 5), 14);
    }

    #[test]
    fn theorem1_chain_algorithm_matches_exhaustive_optimum() {
        // The central validation of the reproduction: on hundreds of
        // randomized small instances, the backward greedy equals the true
        // optimum exactly.
        for seed in 0..60u64 {
            let profile = HeterogeneityProfile::ALL[(seed % 5) as usize];
            let g = GeneratorConfig::new(profile, seed);
            let p = 1 + (seed % 4) as usize;
            let n = 1 + (seed % 6) as usize;
            let chain = g.chain(p);
            let algo = schedule_chain(&chain, n).makespan();
            let exact = optimal_chain_makespan(&chain, n);
            assert_eq!(algo, exact, "Theorem 1 violated: seed {seed}, p {p}, n {n}, {chain}");
        }
    }

    #[test]
    fn theorem1_holds_on_adversarial_shapes() {
        // Extreme heterogeneity shapes that stress the candidate order.
        let shapes: Vec<Chain> = vec![
            Chain::from_pairs(&[(1, 9), (1, 9), (1, 1)]).unwrap(),
            Chain::from_pairs(&[(9, 1), (1, 1)]).unwrap(),
            Chain::from_pairs(&[(1, 1), (9, 9)]).unwrap(),
            Chain::from_pairs(&[(2, 2), (2, 2), (2, 2)]).unwrap(),
            Chain::from_pairs(&[(5, 1), (1, 5), (5, 1)]).unwrap(),
            Chain::from_pairs(&[(1, 10)]).unwrap(),
        ];
        for chain in &shapes {
            for n in 1..=6 {
                assert_eq!(
                    schedule_chain(chain, n).makespan(),
                    optimal_chain_makespan(chain, n),
                    "chain {chain}, n {n}"
                );
            }
        }
    }

    #[test]
    fn deadline_variant_matches_exhaustive_count() {
        // The T_lim variant maximises the task count by the deadline.
        for seed in 0..25u64 {
            let profile = HeterogeneityProfile::ALL[(seed % 5) as usize];
            let g = GeneratorConfig::new(profile, seed);
            let p = 1 + (seed % 3) as usize;
            let chain = g.chain(p);
            let tree = Tree::from_chain(&chain);
            for deadline in [4, 9, 16, 25] {
                let algo = schedule_chain_by_deadline(&chain, 6, deadline).n();
                let exact = max_tasks_by_deadline(&tree, deadline, 6);
                assert_eq!(algo, exact, "seed {seed}, deadline {deadline}, {chain}");
            }
        }
    }

    #[test]
    fn spider_exact_agrees_with_chain_exact_on_single_leg() {
        let chain = Chain::paper_figure2();
        let spider = Spider::from_chain(chain.clone());
        for n in 1..=5 {
            assert_eq!(optimal_spider_makespan(&spider, n), optimal_chain_makespan(&chain, n));
        }
    }

    #[test]
    fn max_tasks_is_monotone_in_deadline() {
        let tree = Tree::from_triples(&[(0, 2, 3), (0, 3, 2), (1, 1, 2)]).unwrap();
        let mut prev = 0;
        for deadline in 0..30 {
            let k = max_tasks_by_deadline(&tree, deadline, 8);
            assert!(k >= prev);
            prev = k;
        }
        assert!(prev >= 4, "a 30-tick deadline fits several tasks");
    }

    #[test]
    fn zero_deadline_fits_nothing() {
        let tree = Tree::from_chain(&Chain::paper_figure2());
        assert_eq!(max_tasks_by_deadline(&tree, 0, 5), 0);
        assert_eq!(max_tasks_by_deadline(&tree, 4, 5), 0); // c1+w1 = 5
        assert_eq!(max_tasks_by_deadline(&tree, 5, 5), 1);
    }
}
