//! The forward ASAP evaluator over assignment sequences.
//!
//! An *assignment sequence* lists, in master-emission order, the node
//! each task is routed to. Given the sequence, the earliest feasible
//! schedule is computed greedily: each event (port use, execution) starts
//! as soon as its prerequisites allow, resources serving tasks in
//! sequence order.
//!
//! Why this is lossless: all tasks are identical, so at any node the
//! forwarding order can be normalised to arrival order by exchanging
//! payloads (Section 2 of the paper makes the same "WLOG emissions in
//! index order" move for the master). Arrival order along any path then
//! equals master-emission order, so *some* optimal schedule is greedy on
//! its own sequence — and minimising the ASAP makespan over all
//! sequences is exact. The evaluator is shared by the exhaustive search
//! ([`crate::exact`]) and the forward heuristics
//! ([`crate::heuristics`]).

use mst_platform::{Chain, Time, Tree};
use mst_schedule::{ChainSchedule, CommVector, TaskAssignment};

/// Incremental forward state over a [`Tree`] platform.
///
/// Node ids follow [`Tree`]: `0` is the master, `1..=len` the processors.
#[derive(Debug, Clone)]
pub struct TreeAsap<'a> {
    tree: &'a Tree,
    /// `out_port_free[v]` — first tick node `v`'s out-port is free.
    out_port_free: Vec<Time>,
    /// `proc_free[v - 1]` — first tick processor `v` is free.
    proc_free: Vec<Time>,
    /// Completion time of the latest-finishing task so far.
    makespan: Time,
}

impl<'a> TreeAsap<'a> {
    /// Fresh state: every resource free from time 0.
    pub fn new(tree: &'a Tree) -> Self {
        TreeAsap {
            tree,
            out_port_free: vec![0; tree.len() + 1],
            proc_free: vec![0; tree.len()],
            makespan: 0,
        }
    }

    /// Routes the next task to `node`, committing every hop and the
    /// execution at the earliest feasible times. Returns
    /// `(emissions, start, completion)` where `emissions[d]` is the
    /// emission time on the `d`-th link of the task's root path.
    pub fn place(&mut self, node: usize) -> (Vec<Time>, Time, Time) {
        let path = self.tree.path_from_root(node);
        let mut emissions = Vec::with_capacity(path.len());
        let mut available = 0; // when the task is ready at the current hop's sender
        for &hop in &path {
            let sender = self.tree.node(hop).parent;
            let emit = available.max(self.out_port_free[sender]);
            let latency = self.tree.node(hop).comm;
            self.out_port_free[sender] = emit + latency;
            emissions.push(emit);
            available = emit + latency;
        }
        let start = available.max(self.proc_free[node - 1]);
        let completion = start + self.tree.node(node).work;
        self.proc_free[node - 1] = completion;
        self.makespan = self.makespan.max(completion);
        (emissions, start, completion)
    }

    /// Completion time of the latest-finishing placed task.
    #[inline]
    pub fn makespan(&self) -> Time {
        self.makespan
    }
}

/// Evaluates a full assignment sequence on a tree; returns the makespan.
pub fn asap_tree(tree: &Tree, sequence: &[usize]) -> Time {
    let mut state = TreeAsap::new(tree);
    for &node in sequence {
        state.place(node);
    }
    state.makespan()
}

/// Evaluates an assignment sequence on a chain (`sequence[i]` is the
/// **1-based** processor of task `i + 1`), returning the full schedule.
pub fn asap_chain(chain: &Chain, sequence: &[usize]) -> ChainSchedule {
    let tree = Tree::from_chain(chain);
    let mut state = TreeAsap::new(&tree);
    let mut tasks = Vec::with_capacity(sequence.len());
    for &proc in sequence {
        let (emissions, start, _) = state.place(proc);
        tasks.push(TaskAssignment::new(proc, start, CommVector::new(emissions), chain.w(proc)));
    }
    ChainSchedule::new(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_platform::Chain;
    use mst_schedule::check_chain;

    #[test]
    fn single_task_travels_the_pipeline() {
        let chain = Chain::paper_figure2();
        let s = asap_chain(&chain, &[2]);
        check_chain(&chain, &s).assert_feasible();
        // emit 0, arrive p1 at 2, forward 2..5, arrive p2 at 5, run 5..10
        assert_eq!(s.task(1).comms.times(), &[0, 2]);
        assert_eq!(s.task(1).start, 5);
        assert_eq!(s.makespan(), 10);
    }

    #[test]
    fn master_only_sequence_matches_t_infinity() {
        for pairs in [&[(2, 5)], &[(5, 2)], &[(3, 3)]] {
            let chain = Chain::from_pairs(pairs.as_slice()).unwrap();
            for n in 1..8 {
                let seq = vec![1; n];
                let s = asap_chain(&chain, &seq);
                check_chain(&chain, &s).assert_feasible();
                assert_eq!(s.makespan(), chain.t_infinity(n));
            }
        }
    }

    #[test]
    fn figure2_sequence_reaches_14() {
        // The paper's Figure-2 assignment: tasks 1,2,4,5 on processor 1,
        // task 3 on processor 2 — forward ASAP recovers makespan 14.
        let chain = Chain::paper_figure2();
        let s = asap_chain(&chain, &[1, 1, 2, 1, 1]);
        check_chain(&chain, &s).assert_feasible();
        assert_eq!(s.makespan(), 14);
    }

    #[test]
    fn sequences_always_produce_feasible_schedules() {
        use mst_platform::{GeneratorConfig, HeterogeneityProfile};
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for seed in 0..30u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let p = 1 + (seed % 5) as usize;
            let chain = g.chain(p);
            let n = 1 + (seed % 8) as usize;
            let seq: Vec<usize> = (0..n).map(|_| rng.gen_range(1..=p)).collect();
            let s = asap_chain(&chain, &seq);
            check_chain(&chain, &s).assert_feasible();
        }
    }

    #[test]
    fn tree_shared_out_port_serialises_children() {
        // master -> {1, 2}: two tasks to different children still
        // serialise on the master's out-port.
        let tree = Tree::from_triples(&[(0, 3, 1), (0, 2, 1)]).unwrap();
        let mut state = TreeAsap::new(&tree);
        let (e1, s1, _) = state.place(1);
        let (e2, s2, _) = state.place(2);
        assert_eq!(e1, vec![0]);
        assert_eq!(e2, vec![3], "second emission waits for the port");
        assert_eq!(s1, 3);
        assert_eq!(s2, 5);
        assert_eq!(state.makespan(), 6);
    }

    #[test]
    fn tree_interior_port_shared_between_subtrees() {
        // master -> 1 -> {2, 3}: node 1 forwards to 2 then 3 over one port.
        let tree = Tree::from_triples(&[(0, 1, 10), (1, 2, 1), (1, 2, 1)]).unwrap();
        let m = asap_tree(&tree, &[2, 3]);
        // t1: master emits 0..1; node1 forwards 1..3; exec 3..4
        // t2: master emits 1..2; node1 forwards 3..5 (port busy till 3); exec 5..6
        assert_eq!(m, 6);
    }
}
