//! Forward heuristics — what a practitioner writes without the paper.
//!
//! All heuristics reuse the ASAP evaluator; they differ only in how the
//! assignment sequence is produced. Comparing their makespans against
//! `mst_core::schedule_chain` quantifies the value of the optimal
//! backward construction (experiment E1 in DESIGN.md).

use crate::asap::{asap_chain, TreeAsap};
use mst_platform::{Chain, Tree};
use mst_schedule::ChainSchedule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything on processor 1 — the paper's `T_infinity` baseline.
pub fn master_only_chain(chain: &Chain, n: usize) -> ChainSchedule {
    asap_chain(chain, &vec![1; n])
}

/// Tasks dealt to processors `1, 2, ..., p, 1, 2, ...` cyclically — the
/// naive load balancer, oblivious to heterogeneity.
pub fn round_robin_chain(chain: &Chain, n: usize) -> ChainSchedule {
    let p = chain.len();
    let seq: Vec<usize> = (0..n).map(|i| (i % p) + 1).collect();
    asap_chain(chain, &seq)
}

/// Uniformly random assignment (seeded) — the "no scheduler at all"
/// baseline.
pub fn random_chain(chain: &Chain, n: usize, seed: u64) -> ChainSchedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = chain.len();
    let seq: Vec<usize> = (0..n).map(|_| rng.gen_range(1..=p)).collect();
    asap_chain(chain, &seq)
}

/// Eager list scheduling: each task goes, in emission order, to the
/// processor on which *it* would complete earliest given the resources
/// committed so far. This is the strongest natural online heuristic (the
/// master-slave analogue of HEFT's earliest-finish rule) — and still
/// loses to the optimal backward construction, because finishing one
/// task early can burn link capacity that later tasks need.
pub fn eager_chain(chain: &Chain, n: usize) -> ChainSchedule {
    let tree = Tree::from_chain(chain);
    let mut state = TreeAsap::new(&tree);
    let mut seq = Vec::with_capacity(n);
    for _ in 0..n {
        // Probe every processor on a copy of the state.
        let best = (1..=chain.len())
            .min_by_key(|&v| {
                let mut probe = state.clone();
                probe.place(v).2
            })
            .expect("chain is non-empty");
        state.place(best);
        seq.push(best);
    }
    asap_chain(chain, &seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_platform::{GeneratorConfig, HeterogeneityProfile};
    use mst_schedule::check_chain;

    #[test]
    fn master_only_equals_t_infinity() {
        let chain = Chain::paper_figure2();
        for n in 1..8 {
            assert_eq!(master_only_chain(&chain, n).makespan(), chain.t_infinity(n));
        }
    }

    #[test]
    fn all_heuristics_produce_feasible_schedules() {
        for seed in 0..30u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let chain = g.chain(1 + (seed % 5) as usize);
            let n = 1 + (seed % 8) as usize;
            for s in [
                master_only_chain(&chain, n),
                round_robin_chain(&chain, n),
                random_chain(&chain, n, seed),
                eager_chain(&chain, n),
            ] {
                assert_eq!(s.n(), n);
                check_chain(&chain, &s).assert_feasible();
            }
        }
    }

    #[test]
    fn heuristics_never_beat_the_optimal_algorithm() {
        use mst_core::schedule_chain;
        for seed in 0..30u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let chain = g.chain(1 + (seed % 5) as usize);
            let n = 1 + (seed % 8) as usize;
            let opt = schedule_chain(&chain, n).makespan();
            for (name, s) in [
                ("master-only", master_only_chain(&chain, n)),
                ("round-robin", round_robin_chain(&chain, n)),
                ("random", random_chain(&chain, n, seed)),
                ("eager", eager_chain(&chain, n)),
            ] {
                assert!(
                    s.makespan() >= opt,
                    "{name} beat the provably optimal schedule (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn eager_is_suboptimal_somewhere() {
        // Documented counterexample: eager's first-task greed hurts.
        // Search a small family for a strict gap to keep the test robust.
        use mst_core::schedule_chain;
        let mut found = false;
        'outer: for seed in 0..80u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            for p in 2..=4usize {
                let chain = g.chain(p);
                for n in 2..=8 {
                    if eager_chain(&chain, n).makespan() > schedule_chain(&chain, n).makespan() {
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(found, "eager heuristic should be strictly suboptimal on some instance");
    }

    #[test]
    fn round_robin_degrades_on_bad_tail_processors() {
        // A chain whose far processor is terrible: round-robin insists on
        // feeding it, master-only does not.
        let chain = Chain::from_pairs(&[(1, 2), (10, 50)]).unwrap();
        let rr = round_robin_chain(&chain, 6).makespan();
        let mo = master_only_chain(&chain, 6).makespan();
        assert!(rr > mo, "round-robin should lose here (rr={rr}, mo={mo})");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let chain = Chain::paper_figure2();
        assert_eq!(random_chain(&chain, 6, 5), random_chain(&chain, 6, 5));
    }
}
