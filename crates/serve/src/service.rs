//! The transport-agnostic **Service** boundary: handlers see
//! [`Request`]s and produce [`ResponseBody`]s, never sockets.
//!
//! Everything under [`crate::routes`] and [`crate::session`] is pure
//! request → response logic; the only transport capability a handler
//! may need — streaming a response body of unknown length, and
//! noticing mid-request that the client is gone — is abstracted as
//! the [`StreamWriter`] trait. Both transports implement it:
//!
//! * the threaded server wraps the connection's `TcpStream` (a
//!   nonblocking `peek` probe plus `Transfer-Encoding: chunked`
//!   framing);
//! * the event-driven server hands out a writer that pushes framed
//!   chunks into the connection's bounded outbound buffer — when the
//!   client reads slowly the buffer fills and the push **blocks**,
//!   which is exactly the backpressure that keeps a large streamed
//!   sweep from materialising in server memory.
//!
//! The same handler code therefore runs unchanged under either I/O
//! model (`mst serve --io event|threads`), and a third transport (the
//! ROADMAP's follow-on) only has to implement these two traits.

use crate::http::{Request, Response};
use crate::server::ServiceState;
use std::io;
use std::sync::Arc;

/// How a handler answered: a buffered [`Response`] for the transport
/// to write, or a body already streamed through the [`StreamWriter`]
/// the transport supplied (streamed responses always close the
/// connection).
#[derive(Debug)]
pub enum ResponseBody {
    /// Write this response (possibly keeping the connection alive).
    Full(Response),
    /// The handler streamed the response body chunk by chunk.
    Streamed,
}

/// The transport capabilities a handler may use while producing a
/// response: a client-liveness probe and a chunked streaming body
/// writer. Implemented per transport; handlers stay socket-free.
pub trait StreamWriter {
    /// Whether the client has abandoned the request. Polled between
    /// chunks of work so an abandoned sweep stops burning cores; a
    /// transport without liveness knowledge may always answer `false`.
    fn client_gone(&mut self) -> bool;

    /// Switches the response to a streamed chunked NDJSON body and
    /// writes its head. Must be called exactly once, before any
    /// [`StreamWriter::chunk`].
    fn begin(&mut self) -> io::Result<()>;

    /// Appends body bytes (one or more NDJSON lines). `Err` means the
    /// client is gone — cancel the remaining work.
    fn chunk(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Terminates the streamed body.
    fn end(&mut self) -> io::Result<()>;
}

/// A `Request -> ResponseBody` handler stack: the boundary a transport
/// drives. The optional [`StreamWriter`] is the *only* channel back to
/// the transport; `None` (tests, embedded callers) degrades streamed
/// endpoints to fully buffered replies.
pub trait Service: Send + Sync {
    /// Handles one request.
    fn call(&self, request: &Request, stream: Option<&mut dyn StreamWriter>) -> ResponseBody;
}

/// The mst service: [`crate::routes`] over shared [`ServiceState`].
pub struct MstService {
    state: Arc<ServiceState>,
}

impl std::fmt::Debug for MstService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MstService").finish_non_exhaustive()
    }
}

impl MstService {
    /// Wraps the shared state as a callable service.
    pub fn new(state: Arc<ServiceState>) -> MstService {
        MstService { state }
    }

    /// The shared state behind the service.
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }
}

impl Service for MstService {
    fn call(&self, request: &Request, stream: Option<&mut dyn StreamWriter>) -> ResponseBody {
        crate::routes::route_on(request, &self.state, stream)
    }
}

/// A [`StreamWriter`] that buffers chunks in memory and never loses a
/// client: what embedded callers and tests drive handlers with.
#[derive(Debug, Default)]
pub struct BufferedStream {
    /// Everything written through the writer: head marker excluded,
    /// chunk payloads concatenated.
    pub body: Vec<u8>,
    /// Whether [`StreamWriter::begin`] was called.
    pub began: bool,
    /// Whether [`StreamWriter::end`] was called.
    pub ended: bool,
}

impl StreamWriter for BufferedStream {
    fn client_gone(&mut self) -> bool {
        false
    }

    fn begin(&mut self) -> io::Result<()> {
        self.began = true;
        Ok(())
    }

    fn chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.body.extend_from_slice(bytes);
        Ok(())
    }

    fn end(&mut self) -> io::Result<()> {
        self.ended = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, Server};

    fn request(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: String::new(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
        }
    }

    #[test]
    fn the_service_routes_without_any_transport() {
        let server =
            Server::bind(ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() })
                .expect("bind");
        let service = MstService::new(Arc::clone(server.handle().state_arc()));
        let ResponseBody::Full(health) = service.call(&request("GET", "/healthz", ""), None) else {
            panic!("healthz is a buffered reply")
        };
        assert_eq!(health.status, 200);
        assert!(health.body.contains("\"status\":\"ok\""));
    }

    #[test]
    fn streamed_batches_flow_through_the_stream_writer() {
        let server =
            Server::bind(ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() })
                .expect("bind");
        let service = MstService::new(Arc::clone(server.handle().state_arc()));
        let mut sink = BufferedStream::default();
        let body = r#"{"generate": {"kind": "chain", "count": 3}, "stream": true}"#;
        let routed = service.call(&request("POST", "/batch", body), Some(&mut sink));
        assert!(matches!(routed, ResponseBody::Streamed));
        assert!(sink.began && sink.ended);
        let text = String::from_utf8(sink.body).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "3 result lines + summary: {text}");
        assert!(lines[0].contains("\"index\":0"), "{text}");
        assert!(lines[3].contains("\"summary\""), "{text}");
    }
}
