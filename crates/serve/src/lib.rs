//! # mst-serve — the HTTP front-end over the pooled solve engine
//!
//! Turns the workspace into a deployable service: a dependency-free
//! HTTP/1.1 server (the build environment is offline, so no
//! hyper/tokio) exposing the unified [`mst_api`] surface over the
//! network.
//!
//! The crate is split along a **transport-agnostic boundary**
//! ([`service`]): request handling ([`routes`], [`session`]) is pure —
//! no sockets, no threads — and a transport's only job is to move
//! bytes between the wire and [`Service::call`]. Two transports
//! drive it ([`IoModel`]):
//!
//! * **event** (the default) — an epoll readiness loop ([`event`],
//!   built on the dependency-free [`mst_net`] crate) holding one small
//!   state machine per connection. Idle keep-alive sockets cost a slab
//!   entry instead of a parked thread, streamed responses flow through
//!   a bounded mailbox (a slow consumer blocks the producer at
//!   [`ServeConfig::stream_high_water`], a vanished one unwinds it),
//!   and the hostile-client policies live in the loop: a dripped
//!   request head is answered `408` once [`ServeConfig::io_timeout`]
//!   expires, overflow past [`ServeConfig::max_connections`] is
//!   answered `503` + `Retry-After: 1` at accept, and half-closed
//!   clients still receive their answer.
//! * **threads** — the classic bounded accept loop feeding a fixed set
//!   of handler threads, kept as the `--io threads` fallback.
//!
//! Solving fans out through the same persistent
//! [`mst_sim::WorkerPool`] the library's [`mst_api::Batch`] engine
//! uses (never on the event-loop thread), so service traffic inherits
//! every hot-path optimisation for free. With `--solvers-config`,
//! tenant specs become full **execution policies** ([`mst_api::exec`]):
//! requests carrying an `X-Api-Token` header run under their tenant's
//! solver registry, dedicated worker pool, admission quota and
//! token-bucket rate limit (429 + `Retry-After` on either), and
//! deadline budget, with client-disconnect cancellation and streamed
//! batch results on top (see [`mst_api::config`]).
//!
//! Endpoints:
//!
//! * `GET /healthz` — liveness and uptime;
//! * `GET /solvers` — the registry listing (names, topologies, `T_lim`
//!   support);
//! * `GET /metrics` — global and per-tenant counters, live queue
//!   depth, instances/s;
//! * `GET /tenants` — the resolved execution policies (token values
//!   masked);
//! * `POST /solve` — one instance, solver selectable by registry name,
//!   optional deadline and oracle verification;
//! * `POST /batch` — an instance sweep (explicit list or generator
//!   spec) through the worker pool, chunk-cancellable, optionally
//!   streamed as NDJSON (`"stream": true`);
//! * `POST /session` — a long-lived evolving instance per tenant: task
//!   arrivals trigger incremental re-solves and posted processor
//!   failures trigger **schedule repair** ([`mst_api::repair()`]), so a
//!   live schedule survives a degrading platform.
//!
//! The service itself degrades rather than fails: a broken persistent
//! store ([`ServeConfig::store`]) flips `/healthz` to `store_degraded`
//! and the append path to bounded-backoff retries
//! ([`server::StoreHealth`]) while solves keep flowing.
//!
//! Requests and responses use the JSON wire codec of [`mst_api::wire`];
//! failures are structured `{"error": {"kind", "message"}}` bodies.
//! Run it from the CLI as `mst serve --addr 127.0.0.1:8080 --threads 4`,
//! or embed it:
//!
//! ```
//! use mst_serve::{Server, ServeConfig};
//! use std::io::{Read, Write};
//!
//! let server = Server::bind(ServeConfig {
//!     addr: "127.0.0.1:0".into(), // port 0: pick a free port
//!     ..ServeConfig::default()
//! })?;
//! let (addr, handle) = (server.addr(), server.handle());
//! let runner = std::thread::spawn(move || server.run());
//!
//! let mut stream = std::net::TcpStream::connect(addr)?;
//! stream.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")?;
//! let mut reply = String::new();
//! stream.read_to_string(&mut reply)?;
//! assert!(reply.starts_with("HTTP/1.1 200 OK"));
//!
//! handle.shutdown(); // graceful: drains, joins, returns the report
//! runner.join().unwrap()?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

#[cfg(target_os = "linux")]
pub mod event;
pub mod http;
pub mod routes;
pub mod server;
pub mod service;
pub mod session;

pub use http::{HttpError, Request, RequestReader, Response};
pub use server::{
    install_sigint_handler, IoModel, Metrics, ServeConfig, ServeReport, Server, ServerHandle,
    ServiceState, StoreHealth,
};
pub use service::{BufferedStream, MstService, ResponseBody, Service, StreamWriter};
pub use session::{Session, SessionTable};
