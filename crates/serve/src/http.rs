//! Minimal HTTP/1.1 request parsing and response writing over raw
//! streams.
//!
//! The build environment is offline, so there is no hyper/tokio; this
//! module hand-rolls exactly what the service front-end needs —
//! `Content-Length` bodies, hard caps on header and body size so a
//! hostile peer cannot make the server buffer without bound, and
//! structured failures that the caller turns into 4xx responses (a
//! malformed request must never panic or hang a handler thread).
//!
//! Connections are **persistent** (HTTP/1.1 keep-alive): a
//! [`RequestReader`] carries bytes read past the current request over
//! to the next one, so sequential — and even pipelined — requests on
//! one `TcpStream` each parse cleanly. A request's
//! [`Request::keep_alive`] reflects the negotiated default
//! (`HTTP/1.1` keeps alive unless `Connection: close`; `HTTP/1.0`
//! closes unless `Connection: keep-alive`); the server layer bounds
//! requests-per-connection on top.

use std::io::{Read, Write};

/// Largest accepted request head (request line + headers). Anything
/// bigger is rejected before buffering more.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path with any query string stripped.
    pub path: String,
    /// The raw query string (without the `?`; empty when absent).
    pub query: String,
    /// All request headers as `(lower-cased name, trimmed value)`
    /// pairs, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client may reuse the connection after the response:
    /// the HTTP-version default overridden by any `Connection` header.
    pub keep_alive: bool,
}

impl Request {
    /// The value of query parameter `key` (first occurrence,
    /// `key=value` pairs separated by `&`; no percent-decoding — the
    /// service's parameter values never need it).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    /// The value of header `name` (case-insensitive, first occurrence)
    /// — e.g. the `X-Api-Token` tenant routing header.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Every variant maps to a status code
/// via [`HttpError::status`]; I/O failures mean the peer is gone and the
/// connection is simply dropped.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or truncated body: 400.
    BadRequest(String),
    /// The declared `Content-Length` exceeds the configured cap: 413.
    PayloadTooLarge(usize),
    /// The peer stalled past the socket read timeout: 408.
    Timeout,
    /// The peer disconnected before sending a full request head.
    Disconnected,
}

impl HttpError {
    /// The response status this error maps to (`Disconnected` keeps 400
    /// for uniformity, though nobody is left to read it).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::PayloadTooLarge(_) => 413,
            HttpError::Timeout => 408,
            HttpError::Disconnected => 400,
        }
    }

    /// Human-readable reason carried in the error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::BadRequest(reason) => reason.clone(),
            HttpError::PayloadTooLarge(cap) => {
                format!("request body exceeds the {cap}-byte limit")
            }
            HttpError::Timeout => "request timed out".to_string(),
            HttpError::Disconnected => "client disconnected mid-request".to_string(),
        }
    }
}

fn io_error(e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        std::io::ErrorKind::UnexpectedEof => {
            HttpError::BadRequest("truncated request body".to_string())
        }
        _ => HttpError::Disconnected,
    }
}

/// Outcome of one incremental parse attempt over buffered bytes.
#[derive(Debug)]
pub enum Parsed {
    /// A complete request was parsed; its bytes were drained from the
    /// buffer (pipelined surplus stays buffered).
    Complete(Request),
    /// The buffer holds only a request prefix so far — feed more bytes.
    Partial,
}

/// Attempts to parse one complete request out of `buf` without any
/// I/O: the **incremental** entry point the event-driven transport
/// feeds socket bytes into as they arrive. Returns
/// [`Parsed::Partial`] until the head *and* the declared body are
/// fully buffered; caps (head size, `max_body`) are enforced as soon
/// as they are decidable, so a hostile peer cannot make the caller
/// buffer without bound. The blocking [`RequestReader`] is a read
/// loop over this same function — one parser, two transports.
pub fn try_parse(buf: &mut Vec<u8>, max_body: usize) -> Result<Parsed, HttpError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::BadRequest("request head too large".to_string()));
        }
        return Ok(Parsed::Partial);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("request head is not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".to_string()))?
        .to_ascii_uppercase();
    let target =
        parts.next().ok_or_else(|| HttpError::BadRequest("missing request path".to_string()))?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("unsupported protocol {version:?}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    // HTTP/1.1 keeps the connection alive by default; 1.0 closes.
    let mut keep_alive = version != "HTTP/1.0";
    let mut content_length = 0usize;
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("bad Content-Length {value:?}")))?;
        } else if name == "transfer-encoding" && value.to_ascii_lowercase().contains("chunked") {
            return Err(HttpError::BadRequest("chunked bodies are not supported".to_string()));
        } else if name == "connection" {
            let value = value.to_ascii_lowercase();
            if value.contains("close") {
                keep_alive = false;
            } else if value.contains("keep-alive") {
                keep_alive = true;
            }
        }
        headers.push((name, value.to_string()));
    }
    if content_length > max_body {
        return Err(HttpError::PayloadTooLarge(max_body));
    }
    if buf.len() < head_end + 4 + content_length {
        return Ok(Parsed::Partial);
    }

    // Drain exactly this request; a pipelined follow-up stays buffered.
    let mut body: Vec<u8> = buf.split_off(head_end + 4);
    buf.clear(); // the consumed head
    if body.len() > content_length {
        *buf = body.split_off(content_length);
    }
    Ok(Parsed::Complete(Request { method, path, query, headers, body, keep_alive }))
}

/// A per-connection request parser: bytes read past the end of one
/// request (a pipelined follow-up) carry over to the next call, which
/// is what makes keep-alive connections parse every request cleanly.
#[derive(Debug, Default)]
pub struct RequestReader {
    buf: Vec<u8>,
    /// When the first byte of the in-flight request landed (ns on the
    /// [`mst_obs::now_ns`] clock); moves to `last_started_ns` when the
    /// request completes.
    started_ns: Option<u64>,
    last_started_ns: Option<u64>,
}

impl RequestReader {
    /// A fresh reader with an empty carry-over buffer.
    pub fn new() -> RequestReader {
        RequestReader { buf: Vec::with_capacity(1024), started_ns: None, last_started_ns: None }
    }

    /// Whether a previous read left buffered (pipelined) bytes behind.
    pub fn has_buffered(&self) -> bool {
        !self.buf.is_empty()
    }

    /// When the most recently returned request's first byte arrived
    /// (ns on the [`mst_obs::now_ns`] clock) — the transport's trace
    /// start time. `None` before the first completed request.
    pub fn last_started_ns(&self) -> Option<u64> {
        self.last_started_ns
    }

    /// Reads and parses one request, enforcing the head cap and
    /// `max_body`.
    ///
    /// Blocks until a full request arrives, the stream's read timeout
    /// fires, or a cap trips — never longer, and never unboundedly
    /// buffering. A peer that closes between requests (no bytes of a
    /// next head) reports [`HttpError::Disconnected`].
    pub fn read_request(
        &mut self,
        stream: &mut impl Read,
        max_body: usize,
    ) -> Result<Request, HttpError> {
        // Accumulate until try_parse has a whole request. A peer that
        // trickles garbage runs into MAX_HEAD_BYTES; one that stalls
        // runs into the socket timeout.
        let mut chunk = [0u8; 1024];
        loop {
            if !self.buf.is_empty() && self.started_ns.is_none() {
                self.started_ns = Some(mst_obs::now_ns());
            }
            if let Parsed::Complete(request) = try_parse(&mut self.buf, max_body)? {
                self.last_started_ns = self.started_ns.take();
                return Ok(request);
            }
            let n = stream.read(&mut chunk).map_err(io_error)?;
            if n == 0 {
                return Err(if self.buf.is_empty() {
                    HttpError::Disconnected
                } else if find_head_end(&self.buf).is_some() {
                    HttpError::BadRequest("truncated request body".to_string())
                } else {
                    HttpError::BadRequest("truncated request head".to_string())
                });
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// One-shot convenience over [`RequestReader`] for single-request
/// callers and tests; pipelined surplus bytes are dropped.
pub fn read_request(stream: &mut impl Read, max_body: usize) -> Result<Request, HttpError> {
    RequestReader::new().read_request(stream, max_body)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An HTTP response: a status code, a body and optional extra
/// headers (`Retry-After` for 429/503 refusals, `X-Trace-Id` for
/// request-trace correlation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 400, ...).
    pub status: u16,
    /// The serialized body.
    pub body: String,
    /// When set, a `Retry-After: N` header (seconds) telling refused
    /// clients how long to back off — quota/overload refusals are
    /// transient and should say so.
    pub retry_after: Option<u64>,
    /// The `Content-Type` advertised (JSON unless overridden — the
    /// Prometheus exposition is plain text).
    pub content_type: &'static str,
    /// When set, an `X-Trace-Id` header correlating the response with
    /// its entry in the `/trace` table.
    pub trace_id: Option<u64>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl std::fmt::Display) -> Response {
        Response {
            status,
            body: body.to_string(),
            retry_after: None,
            content_type: "application/json",
            trace_id: None,
        }
    }

    /// A plain-text response (the Prometheus exposition format).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            retry_after: None,
            content_type: "text/plain; version=0.0.4",
            trace_id: None,
        }
    }

    /// Attaches a `Retry-After` header (seconds).
    pub fn with_retry_after(mut self, secs: u64) -> Response {
        self.retry_after = Some(secs);
        self
    }

    /// Attaches the `X-Trace-Id` correlation header.
    pub fn with_trace_id(mut self, id: u64) -> Response {
        self.trace_id = Some(id);
        self
    }

    /// The standard reason phrase for this response's status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            401 => "Unauthorized",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Writes the response (with `Connection: close`) to the stream.
    /// Write failures are returned but callers may ignore them — the
    /// peer may legitimately have hung up already.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        self.write_with_connection(stream, false)
    }

    /// The response serialized to wire bytes with the given
    /// `Connection` header — what the event-driven transport queues
    /// onto a connection's outbound buffer.
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        self.write_with_connection(&mut out, keep_alive).expect("writing to a Vec cannot fail");
        out
    }

    /// Writes the response, advertising `Connection: keep-alive` or
    /// `Connection: close` as the server's connection loop decided.
    pub fn write_with_connection(
        &self,
        stream: &mut impl Write,
        keep_alive: bool,
    ) -> std::io::Result<()> {
        let mut extra = match self.retry_after {
            Some(secs) => format!("Retry-After: {secs}\r\n"),
            None => String::new(),
        };
        if let Some(id) = self.trace_id {
            use std::fmt::Write as _;
            write!(extra, "X-Trace-Id: {id}\r\n").expect("write to String");
        }
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n{}",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            extra,
            if keep_alive { "keep-alive" } else { "close" },
            self.body
        )?;
        stream.flush()
    }
}

/// A chunked (`Transfer-Encoding: chunked`) response body writer, for
/// replies whose length is unknown up front — the streamed `/batch`
/// per-instance results. The server writes one NDJSON line per
/// instance as it is solved, so a large sweep never materialises its
/// whole response in memory and a disconnected client is noticed at
/// the next write instead of after the full solve.
///
/// Write the head with [`ChunkedWriter::begin`], then any number of
/// [`ChunkedWriter::chunk`] calls, then [`ChunkedWriter::finish`]. Any
/// `Err` means the peer is gone — the caller should cancel the
/// remaining work and drop the connection.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    stream: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head (status 200, NDJSON content type,
    /// `Connection: close`) and returns the writer.
    pub fn begin(mut stream: W) -> std::io::Result<ChunkedWriter<W>> {
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        )?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one chunk (empty input writes nothing — an empty HTTP
    /// chunk would terminate the body).
    pub fn chunk(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", bytes.len())?;
        self.stream.write_all(bytes)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the chunked body.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut std::io::Cursor::new(raw.to_vec()), 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse(b"POST /solve?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/solve");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("y"), None);
        assert_eq!(req.body, b"body");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_negotiation_follows_version_and_header() {
        let close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!close.keep_alive);
        let old = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!old.keep_alive, "HTTP/1.0 defaults to close");
        let old_keep = parse(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(old_keep.keep_alive);
    }

    #[test]
    fn sequential_requests_parse_through_one_reader() {
        let raw =
            b"POST /solve HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /healthz HTTP/1.1\r\n\r\n";
        let mut cursor = std::io::Cursor::new(raw.to_vec());
        let mut reader = RequestReader::new();
        let first = reader.read_request(&mut cursor, 1024).unwrap();
        assert_eq!(first.path, "/solve");
        assert_eq!(first.body, b"abc");
        assert!(reader.has_buffered(), "the pipelined head stays buffered");
        let second = reader.read_request(&mut cursor, 1024).unwrap();
        assert_eq!(second.path, "/healthz");
        assert!(second.body.is_empty());
        // Nothing left: the peer is done.
        assert!(matches!(reader.read_request(&mut cursor, 1024), Err(HttpError::Disconnected)));
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_heads() {
        assert!(matches!(parse(b"\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(parse(b"GET\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(parse(b"GET / SPDY/3\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_oversized_declarations_and_truncated_bodies() {
        let over = parse(b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n");
        assert!(matches!(over, Err(HttpError::PayloadTooLarge(1024))));
        let truncated = parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort");
        assert!(matches!(truncated, Err(HttpError::BadRequest(_))));
        // An endless head trips the head cap rather than buffering forever.
        let mut junk = b"GET /".to_vec();
        junk.extend(std::iter::repeat_n(b'a', 64 * 1024));
        assert!(matches!(parse(&junk), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn empty_connection_is_a_disconnect() {
        assert!(matches!(parse(b""), Err(HttpError::Disconnected)));
    }

    #[test]
    fn try_parse_is_incremental_byte_by_byte() {
        // Feed a request one byte at a time: Partial until the last
        // body byte lands, then Complete with nothing left over.
        let raw = b"POST /solve HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        let mut buf = Vec::new();
        for (i, byte) in raw.iter().enumerate() {
            buf.push(*byte);
            match try_parse(&mut buf, 1024).unwrap() {
                Parsed::Complete(req) => {
                    assert_eq!(i, raw.len() - 1, "complete only on the final byte");
                    assert_eq!(req.path, "/solve");
                    assert_eq!(req.body, b"body");
                    assert!(buf.is_empty());
                }
                Parsed::Partial => assert!(i < raw.len() - 1),
            }
        }
    }

    #[test]
    fn try_parse_leaves_pipelined_bytes_buffered() {
        let mut buf = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n".to_vec();
        let Parsed::Complete(first) = try_parse(&mut buf, 1024).unwrap() else {
            panic!("first request is complete")
        };
        assert_eq!(first.path, "/healthz");
        let Parsed::Complete(second) = try_parse(&mut buf, 1024).unwrap() else {
            panic!("second request is complete")
        };
        assert_eq!(second.path, "/metrics");
        assert!(buf.is_empty());
    }

    #[test]
    fn try_parse_enforces_caps_before_completion() {
        // Oversized declared body: rejected as soon as the head parses,
        // without waiting for (or buffering) the body.
        let mut buf = b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n".to_vec();
        assert!(matches!(try_parse(&mut buf, 1024), Err(HttpError::PayloadTooLarge(1024))));
        // A never-ending head trips the head cap mid-accumulation.
        let mut junk = b"GET /".to_vec();
        junk.extend(std::iter::repeat_n(b'a', 64 * 1024));
        assert!(matches!(try_parse(&mut junk, 1024), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn error_statuses_are_4xx() {
        assert_eq!(HttpError::BadRequest("x".into()).status(), 400);
        assert_eq!(HttpError::PayloadTooLarge(1).status(), 413);
        assert_eq!(HttpError::Timeout.status(), 408);
        assert_eq!(HttpError::Disconnected.status(), 400);
    }

    #[test]
    fn headers_are_kept_and_case_insensitive() {
        let req = parse(b"GET / HTTP/1.1\r\nX-Api-Token:  acme-key \r\nHost: h\r\n\r\n").unwrap();
        assert_eq!(req.header("x-api-token"), Some("acme-key"));
        assert_eq!(req.header("X-Api-Token"), Some("acme-key"));
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.header("absent"), None);
    }

    #[test]
    fn retry_after_is_emitted_when_set() {
        let mut out = Vec::new();
        Response::json(429, "{}").with_retry_after(2).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
        // Unset means no header at all.
        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out).unwrap();
        assert!(!String::from_utf8(out).unwrap().contains("Retry-After"));
    }

    #[test]
    fn trace_id_and_content_type_are_emitted() {
        let mut out = Vec::new();
        Response::json(200, "{}").with_trace_id(42).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("X-Trace-Id: 42\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"), "{text}");
        let mut out = Vec::new();
        Response::text(200, "mst_up 1\n").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"), "{text}");
        assert!(!text.contains("X-Trace-Id"), "unset means no header");
    }

    #[test]
    fn chunked_writer_frames_chunks_and_terminates() {
        let mut out = Vec::new();
        let mut writer = ChunkedWriter::begin(&mut out).unwrap();
        writer.chunk(b"{\"a\":1}\n").unwrap();
        writer.chunk(b"").unwrap(); // empty chunks are suppressed
        writer.chunk(b"{\"b\":2}\n").unwrap();
        writer.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Transfer-Encoding: chunked"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");
        assert!(text.contains("8\r\n{\"a\":1}\n\r\n"), "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "{text}");
    }

    #[test]
    fn responses_carry_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");
    }
}
