//! The event-driven transport: one epoll readiness loop owning every
//! client socket, driving the [`crate::service`] boundary.
//!
//! Layout:
//!
//! * the **loop thread** owns the listener, all connection sockets, the
//!   [`mst_net::Poller`], and a [`mst_net::TimerWheel`]. Each
//!   connection is a small state machine (`Phase`): bytes arrive and
//!   are fed to the incremental [`crate::http::try_parse`]; a complete
//!   request is handed to the **dispatch pool**; response bytes flow
//!   back and are flushed as the socket accepts them, with partial
//!   reads and partial writes resumed on the next readiness event. A
//!   parked keep-alive connection therefore costs its buffers, not a
//!   thread;
//! * the **dispatch pool** ([`crate::ServeConfig::conn_threads`] threads) runs
//!   the handlers. Responses travel back through a per-request
//!   `ConnShared` mailbox: full responses as one byte blob, streamed
//!   `/batch` bodies chunk by chunk with **backpressure** — a push
//!   blocks while more than [`crate::ServeConfig::stream_high_water`] bytes
//!   are queued unflushed, so a slow NDJSON consumer bounds server
//!   memory instead of growing it;
//! * **timeouts** live in the timer wheel: a request that drips in too
//!   slowly gets `408` after [`crate::ServeConfig::io_timeout`], an idle
//!   keep-alive connection is closed silently after
//!   [`crate::ServeConfig::keep_alive_timeout`], and a client that stops
//!   reading its response is torn down once the write side makes no
//!   progress for an `io_timeout`;
//! * **overload** answers `503` + `Retry-After: 1` — at accept time
//!   when [`crate::ServeConfig::max_connections`] sockets are already open,
//!   and at dispatch time when the bounded hand-off queue
//!   ([`crate::ServeConfig::backlog`]) is full — the same refusal contract the
//!   threaded transport has always had;
//! * **shutdown** stops accepting, closes idle connections, lets
//!   in-flight requests finish (bounded by their own timers), then
//!   joins the dispatch pool.

use crate::http::{self, Parsed, Request, Response};
use crate::routes;
use crate::server::{error_body, ServeReport, ServiceState};
use crate::service::{ResponseBody, StreamWriter};
use mst_net::{Interest, Poller, Slab, TimerWheel, Token, Waker};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The listener's registration token.
const LISTENER: Token = Token(0);
/// The waker's registration token.
const WAKER: Token = Token(1);
/// Connection slab slot `s` registers as token `s + TOKEN_BASE`.
const TOKEN_BASE: u64 = 2;

/// Timer wheel granularity.
const TICK: Duration = Duration::from_millis(5);
/// Timer wheel buckets (with [`TICK`], one rotation ≈ 10s).
const WHEEL_SLOTS: usize = 2048;
/// Longest the loop sleeps between shutdown-flag checks.
const POLL_CAP: Duration = Duration::from_millis(5);

fn token_of(slot: usize) -> Token {
    Token(slot as u64 + TOKEN_BASE)
}

fn slot_of(token: Token) -> usize {
    (token.0 - TOKEN_BASE) as usize
}

/// Where a connection is in its request/response cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for (more of) a request head/body.
    Reading,
    /// The current request is with the dispatch pool.
    Dispatched,
    /// The response tail is queued in `out`; once flushed, keep or
    /// close per the flag.
    Finishing {
        /// Whether the connection survives this response.
        keep_alive: bool,
    },
}

/// Loop-owned per-connection state.
struct Conn {
    stream: TcpStream,
    /// Inbound bytes not yet parsed into a request.
    buf: Vec<u8>,
    /// Outbound bytes not yet accepted by the socket (front at
    /// `out_pos` — drained lazily to avoid shifting).
    out: Vec<u8>,
    out_pos: usize,
    phase: Phase,
    /// The in-flight request's mailbox, while `phase` is `Dispatched`.
    shared: Option<Arc<ConnShared>>,
    /// Requests served (or dispatched) on this connection.
    served: usize,
    /// The peer sent FIN: no more requests will arrive.
    read_closed: bool,
    /// Generation of the connection's live timer arm (see
    /// [`TimerWheel::schedule`]); stale wheel entries fail to match.
    timer_gen: u64,
    /// The interest currently registered with the poller.
    interest: Interest,
    /// When the first byte of the *current* request arrived
    /// ([`mst_obs::now_ns`]); the parse span starts here, not at the
    /// end of an idle keep-alive wait.
    req_start_ns: Option<u64>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            phase: Phase::Reading,
            shared: None,
            served: 0,
            read_closed: false,
            timer_gen: 0,
            interest: Interest::READ,
            req_start_ns: None,
        }
    }

    fn out_pending(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// What the worker pushes into [`ConnShared::out`].
#[derive(Default)]
struct SharedOut {
    bytes: Vec<u8>,
    /// Set when the response is complete: `Some(keep_alive)`.
    done: Option<bool>,
}

/// The mailbox between one dispatched request's worker and the loop.
///
/// The worker pushes response bytes and blocks once `high_water` of
/// them sit unconsumed (streaming backpressure); the loop drains them
/// into the connection's outbound buffer as the socket accepts writes.
/// `slot`/`generation` address the connection — if it died meanwhile
/// the generations disagree and the loop drops the output on the floor.
struct ConnShared {
    slot: usize,
    generation: u64,
    /// Hard death: the socket errored or was torn down. Pushes fail.
    gone: AtomicBool,
    /// The peer half-closed. [`StreamWriter::client_gone`] reports it
    /// (FIN means *abandoned* for a streaming sweep — same policy as
    /// the threaded transport's peek probe) but buffered responses are
    /// still delivered.
    read_closed: AtomicBool,
    out: Mutex<SharedOut>,
    cond: Condvar,
    ready: Mutex<mpsc::Sender<(usize, u64)>>,
    waker: Waker,
    high_water: usize,
}

impl ConnShared {
    /// Queues response bytes. With `block`, waits while more than
    /// `high_water` bytes are already queued — the streaming
    /// backpressure. Fails once the connection is hard-gone.
    fn push(&self, bytes: &[u8], block: bool) -> io::Result<()> {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        if block {
            while out.bytes.len() >= self.high_water && !self.gone.load(Ordering::Relaxed) {
                out = self.cond.wait(out).unwrap_or_else(|e| e.into_inner());
            }
        }
        if self.gone.load(Ordering::Relaxed) {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "client is gone"));
        }
        out.bytes.extend_from_slice(bytes);
        drop(out);
        self.notify();
        Ok(())
    }

    /// Marks the response complete (`keep_alive` decides the
    /// connection's fate once the bytes flush).
    fn finish(&self, keep_alive: bool) {
        self.out.lock().unwrap_or_else(|e| e.into_inner()).done = Some(keep_alive);
        self.notify();
    }

    /// Tells the loop this mailbox has news, and wakes it.
    fn notify(&self) {
        let _ =
            self.ready.lock().unwrap_or_else(|e| e.into_inner()).send((self.slot, self.generation));
        self.waker.wake();
    }

    /// Loop side: the connection died. Unblocks any worker waiting in
    /// [`ConnShared::push`].
    fn mark_gone(&self) {
        self.gone.store(true, Ordering::Relaxed);
        self.read_closed.store(true, Ordering::Relaxed);
        let _guard = self.out.lock().unwrap_or_else(|e| e.into_inner());
        self.cond.notify_all();
    }
}

/// The event transport's [`StreamWriter`]: frames chunks and pushes
/// them through the request's mailbox with blocking backpressure.
struct EventWriter<'a> {
    shared: &'a ConnShared,
}

impl StreamWriter for EventWriter<'_> {
    fn client_gone(&mut self) -> bool {
        self.shared.gone.load(Ordering::Relaxed) || self.shared.read_closed.load(Ordering::Relaxed)
    }

    fn begin(&mut self) -> io::Result<()> {
        self.shared.push(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
              Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            true,
        )
    }

    fn chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        if bytes.is_empty() {
            // An empty chunk would terminate the chunked body.
            return Ok(());
        }
        let mut framed = Vec::with_capacity(bytes.len() + 16);
        write!(framed, "{:x}\r\n", bytes.len())?;
        framed.extend_from_slice(bytes);
        framed.extend_from_slice(b"\r\n");
        self.shared.push(&framed, true)
    }

    fn end(&mut self) -> io::Result<()> {
        self.shared.push(b"0\r\n\r\n", true)
    }
}

/// One parsed request on its way to the dispatch pool.
struct Job {
    request: Request,
    shared: Arc<ConnShared>,
    /// Whether the connection may stay open after this response
    /// (keep-alive asked, per-connection request bound not reached).
    may_keep: bool,
    /// The request's trace id, allocated at parse completion.
    trace: u64,
    /// First byte arrival ([`mst_obs::now_ns`]) — the trace's origin.
    start_ns: u64,
    /// Parse completion; the dispatch-queue wait starts here.
    parsed_ns: u64,
}

/// Dispatch-pool worker: routes jobs through the service boundary.
fn dispatch_worker(rx: Arc<Mutex<mpsc::Receiver<Job>>>, state: Arc<ServiceState>) {
    loop {
        let job = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
        match job {
            Ok(job) => handle_job(job, &state),
            Err(_) => return, // queue closed: shutdown
        }
    }
}

fn handle_job(job: Job, state: &ServiceState) {
    let Job { request, shared, may_keep, trace, start_ns, parsed_ns } = job;
    let queue_end = mst_obs::now_ns();
    mst_obs::record_span(
        trace,
        mst_obs::Stage::Queue,
        parsed_ns,
        queue_end.saturating_sub(parsed_ns),
    );
    let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _scope = mst_obs::enter_trace(trace);
        let mut writer = EventWriter { shared: &shared };
        routes::route_on(&request, state, Some(&mut writer))
    }));
    // The handler ran on this thread: harvest its ambient annotations.
    let notes = mst_obs::take_notes();
    let route = routes::route_label(&request.method, &request.path);
    match routed {
        Ok(ResponseBody::Full(response)) => {
            let keep = may_keep && !state.shutdown_requested();
            let status = response.status;
            if status >= 400 {
                state.metrics.http_errors_total.fetch_add(1, Ordering::Relaxed);
            }
            // The write span covers serialization + the mailbox handoff
            // (including any backpressure wait); the socket flush itself
            // happens later on the loop thread.
            let write_start = mst_obs::now_ns();
            let _ = shared.push(&response.with_trace_id(trace).to_bytes(keep), true);
            mst_obs::record_span(
                trace,
                mst_obs::Stage::Write,
                write_start,
                mst_obs::now_ns().saturating_sub(write_start),
            );
            crate::server::finish_request(state, trace, start_ns, status, notes, route);
            shared.finish(keep);
        }
        // Streamed responses wrote their own head and always close.
        Ok(ResponseBody::Streamed) => {
            crate::server::finish_request(state, trace, start_ns, 200, notes, route);
            shared.finish(false);
        }
        Err(_) => {
            state.metrics.http_errors_total.fetch_add(1, Ordering::Relaxed);
            let response =
                error_body(500, "internal-error", "request handler panicked; see server logs");
            let write_start = mst_obs::now_ns();
            let _ = shared.push(&response.with_trace_id(trace).to_bytes(false), true);
            mst_obs::record_span(
                trace,
                mst_obs::Stage::Write,
                write_start,
                mst_obs::now_ns().saturating_sub(write_start),
            );
            crate::server::finish_request(state, trace, start_ns, 500, notes, route);
            shared.finish(false);
        }
    }
}

/// Runs the event transport until shutdown. Called by
/// [`Server::run`](crate::server::Server) under [`IoModel::Event`]
/// (crate::server::IoModel).
pub(crate) fn run_event(
    listener: TcpListener,
    state: Arc<ServiceState>,
) -> io::Result<ServeReport> {
    // Thousands of parked keep-alive sockets need the descriptors.
    let _ = mst_net::raise_nofile_limit(state.config.max_connections as u64 + 64);
    let poller = Poller::new()?;
    let _ = state.poll_stats.set(poller.stats());
    poller.add(listener.as_raw_fd(), LISTENER, Interest::READ)?;
    let waker = Waker::new(&poller, WAKER)?;
    let (ready_tx, ready_rx) = mpsc::channel();
    let (dispatch_tx, dispatch_rx) = mpsc::sync_channel(state.config.backlog.max(1));
    let dispatch_rx = Arc::new(Mutex::new(dispatch_rx));
    let workers: Vec<_> = (0..state.config.conn_threads.max(1))
        .map(|_| {
            let rx = Arc::clone(&dispatch_rx);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("mst-serve-dispatch".into())
                .spawn(move || dispatch_worker(rx, state))
                .expect("spawn dispatch worker")
        })
        .collect();

    let mut el = EventLoop {
        listener,
        poller,
        waker,
        timers: TimerWheel::new(TICK, WHEEL_SLOTS),
        timer_seq: 0,
        conns: Slab::new(),
        gens: Vec::new(),
        state: Arc::clone(&state),
        dispatch: dispatch_tx,
        ready_tx,
        ready_rx,
        shutting_down: false,
    };
    let result = el.run();
    // On a loop failure some connections may still be live with workers
    // blocked on backpressure; tear everything down so they unblock.
    for slot in el.conns.keys() {
        el.teardown(slot);
    }
    drop(el); // drops the dispatch sender: workers see the hangup
    for worker in workers {
        let _ = worker.join();
    }
    result
}

struct EventLoop {
    listener: TcpListener,
    poller: Poller,
    waker: Waker,
    timers: TimerWheel,
    /// Monotone arm counter: every (re-)arm gets a fresh generation, so
    /// a stale wheel entry can never match a reused slot.
    timer_seq: u64,
    conns: Slab<Conn>,
    /// Per-slot occupancy generation, bumped on insert and teardown:
    /// mailbox messages addressed to a previous occupant fail to match.
    gens: Vec<u64>,
    state: Arc<ServiceState>,
    dispatch: mpsc::SyncSender<Job>,
    ready_tx: mpsc::Sender<(usize, u64)>,
    ready_rx: mpsc::Receiver<(usize, u64)>,
    shutting_down: bool,
}

impl EventLoop {
    fn run(&mut self) -> io::Result<ServeReport> {
        let mut events = Vec::new();
        loop {
            if !self.shutting_down && self.state.shutdown_requested() {
                self.begin_shutdown();
            }
            if self.shutting_down && self.conns.is_empty() {
                break;
            }
            let now = Instant::now();
            let timeout = match self.timers.next_timeout(now) {
                Some(t) => t.min(POLL_CAP),
                None => POLL_CAP,
            };
            events.clear();
            self.poller.wait(Some(timeout), |ev| events.push(ev))?;
            for ev in &events {
                match ev.token {
                    LISTENER => self.accept_ready()?,
                    WAKER => self.waker.drain(),
                    token => {
                        let slot = slot_of(token);
                        if ev.hangup {
                            self.teardown(slot);
                            continue;
                        }
                        if ev.readable || ev.read_closed {
                            self.on_readable(slot);
                        }
                        if ev.writable {
                            self.service_out(slot);
                        }
                    }
                }
            }
            let mut fired = Vec::new();
            self.timers.poll(Instant::now(), |token, generation| fired.push((token, generation)));
            for (token, generation) in fired {
                self.on_timer(slot_of(token), generation);
            }
            while let Ok((slot, generation)) = self.ready_rx.try_recv() {
                if self.gens.get(slot) == Some(&generation) {
                    self.service_out(slot);
                }
            }
        }
        Ok(ServeReport {
            connections: self.state.metrics.connections_total.load(Ordering::Relaxed),
            requests: self.state.metrics.requests_total.load(Ordering::Relaxed),
            solved: self.state.metrics.solved_total.load(Ordering::Relaxed),
        })
    }

    /// Stop accepting; idle connections close now, in-flight ones
    /// drain (each bounded by its own timer).
    fn begin_shutdown(&mut self) {
        self.shutting_down = true;
        let _ = self.poller.delete(self.listener.as_raw_fd());
        for slot in self.conns.keys() {
            let idle = matches!(
                self.conns.get(slot),
                Some(c) if c.phase == Phase::Reading && c.buf.is_empty()
            );
            if idle {
                self.teardown(slot);
            }
        }
    }

    fn accept_ready(&mut self) -> io::Result<()> {
        loop {
            if self.shutting_down {
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.state.metrics.connections_total.fetch_add(1, Ordering::Relaxed);
                    if self.conns.len() >= self.state.config.max_connections {
                        self.refuse(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let slot = self.conns.insert(Conn::new(stream));
                    if self.gens.len() <= slot {
                        self.gens.resize(slot + 1, 0);
                    }
                    self.gens[slot] += 1;
                    if self.poller.add(fd, token_of(slot), Interest::READ).is_err() {
                        self.conns.remove(slot);
                        continue;
                    }
                    // First-request budget.
                    self.arm(slot, self.state.config.io_timeout);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Too many connections: answer `503` + `Retry-After` best-effort
    /// and drop. The write lands in the socket's send buffer, so a
    /// blocking write is unnecessary (and would stall the loop).
    fn refuse(&mut self, mut stream: TcpStream) {
        self.state.metrics.connections_rejected.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_nonblocking(true);
        let body = error_body(503, "overloaded", "connection limit reached; retry")
            .with_retry_after(1)
            .to_bytes(false);
        let _ = stream.write(&body);
    }

    /// Arms (or re-arms) the connection's single timer.
    fn arm(&mut self, slot: usize, after: Duration) {
        self.timer_seq += 1;
        let seq = self.timer_seq;
        if let Some(conn) = self.conns.get_mut(slot) {
            conn.timer_gen = seq;
            self.timers.schedule(token_of(slot), seq, Instant::now() + after);
        }
    }

    /// Cancels the connection's timer (lazily — the wheel entry stays
    /// and fails the generation check when it fires).
    fn disarm(&mut self, slot: usize) {
        self.timer_seq += 1;
        let seq = self.timer_seq;
        if let Some(conn) = self.conns.get_mut(slot) {
            conn.timer_gen = seq;
        }
    }

    fn on_timer(&mut self, slot: usize, generation: u64) {
        let Some(conn) = self.conns.get(slot) else { return };
        if conn.timer_gen != generation {
            return; // superseded or cancelled
        }
        match conn.phase {
            Phase::Reading => {
                if conn.buf.is_empty() && conn.served > 0 {
                    // Idle keep-alive expiry: close silently, like the
                    // threaded transport.
                    self.teardown(slot);
                } else {
                    // The request never arrived, or is dripping in too
                    // slowly (slowloris): one 408, then close.
                    self.state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                    self.queue_response(
                        slot,
                        error_body(408, "bad-request", "request timed out"),
                        false,
                    );
                }
            }
            // Response bytes pending but the socket accepted nothing
            // for a whole io_timeout: the client stopped reading.
            Phase::Dispatched | Phase::Finishing { .. } => self.teardown(slot),
        }
    }

    fn on_readable(&mut self, slot: usize) {
        enum ReadEnd {
            Open,
            Eof,
            Dead,
        }
        let max_buffer = 2 * self.state.config.max_body_bytes + 64 * 1024;
        let Some(conn) = self.conns.get_mut(slot) else { return };
        if conn.read_closed {
            return;
        }
        let was_empty = conn.buf.is_empty();
        let mut end = ReadEnd::Open;
        let mut scratch = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    end = ReadEnd::Eof;
                    break;
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&scratch[..n]);
                    if conn.buf.len() > max_buffer {
                        end = ReadEnd::Dead;
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    end = ReadEnd::Dead;
                    break;
                }
            }
        }
        if matches!(end, ReadEnd::Dead) {
            self.teardown(slot);
            return;
        }
        if conn.req_start_ns.is_none() && !conn.buf.is_empty() {
            conn.req_start_ns = Some(mst_obs::now_ns());
        }
        let reading = {
            let conn = self.conns.get_mut(slot).expect("checked above");
            conn.phase == Phase::Reading
        };
        if reading {
            if was_empty {
                let has_bytes = self.conns.get(slot).is_some_and(|c| !c.buf.is_empty());
                if has_bytes {
                    // First bytes of a request supersede the keep-alive
                    // timer with the io budget — armed once, so a
                    // byte-at-a-time drip cannot push it out forever.
                    self.arm(slot, self.state.config.io_timeout);
                }
            }
            self.parse_ready(slot);
        }
        if matches!(end, ReadEnd::Eof) {
            self.on_eof(slot);
        }
    }

    /// The peer half-closed (FIN). In-flight work sees it through the
    /// mailbox flag ([`StreamWriter::client_gone`] — FIN reads as
    /// *abandoned*, same policy as the threaded probe); a partial
    /// request becomes one `400`; a clean idle connection just closes.
    fn on_eof(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot) else { return };
        if conn.read_closed {
            return;
        }
        conn.read_closed = true;
        if let Some(shared) = &conn.shared {
            shared.read_closed.store(true, Ordering::Relaxed);
        }
        let phase = conn.phase;
        let buf_empty = conn.buf.is_empty();
        match phase {
            Phase::Reading if buf_empty => {
                self.teardown(slot);
                return;
            }
            Phase::Reading => {
                self.state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                self.queue_response(
                    slot,
                    error_body(400, "bad-request", "truncated request"),
                    false,
                );
            }
            _ => {}
        }
        self.update_interest(slot);
    }

    /// Feeds buffered bytes to the incremental parser; a complete
    /// request goes to the dispatch pool (or is refused `503` when the
    /// hand-off queue is full).
    fn parse_ready(&mut self, slot: usize) {
        let max_body = self.state.config.max_body_bytes;
        let Some(conn) = self.conns.get_mut(slot) else { return };
        if conn.phase != Phase::Reading {
            return;
        }
        match http::try_parse(&mut conn.buf, max_body) {
            Ok(Parsed::Partial) => {}
            Ok(Parsed::Complete(request)) => {
                conn.served += 1;
                let parsed_ns = mst_obs::now_ns();
                let start_ns = conn.req_start_ns.take().unwrap_or(parsed_ns);
                // Leftover buffered bytes are the next pipelined
                // request: they have already "arrived".
                if !conn.buf.is_empty() {
                    conn.req_start_ns = Some(parsed_ns);
                }
                let trace = mst_obs::begin_trace();
                mst_obs::record_span(
                    trace,
                    mst_obs::Stage::Parse,
                    start_ns,
                    parsed_ns.saturating_sub(start_ns),
                );
                let may_keep = request.keep_alive
                    && conn.served < self.state.config.max_requests_per_connection.max(1)
                    && !conn.read_closed
                    && !self.shutting_down;
                let shared = Arc::new(ConnShared {
                    slot,
                    generation: self.gens[slot],
                    gone: AtomicBool::new(false),
                    read_closed: AtomicBool::new(conn.read_closed),
                    out: Mutex::new(SharedOut::default()),
                    cond: Condvar::new(),
                    ready: Mutex::new(self.ready_tx.clone()),
                    waker: self.waker.clone(),
                    high_water: self.state.config.stream_high_water.max(1),
                });
                conn.phase = Phase::Dispatched;
                conn.shared = Some(Arc::clone(&shared));
                self.disarm(slot);
                let job = Job { request, shared, may_keep, trace, start_ns, parsed_ns };
                match self.dispatch.try_send(job) {
                    Ok(()) => {}
                    Err(mpsc::TrySendError::Full(_job)) => {
                        // Dispatch queue full: refuse loudly rather than
                        // buffer — same contract as the threaded accept
                        // loop's 503 overflow path.
                        self.state.metrics.connections_rejected.fetch_add(1, Ordering::Relaxed);
                        self.state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                        if let Some(conn) = self.conns.get_mut(slot) {
                            conn.shared = None;
                        }
                        self.queue_response(
                            slot,
                            error_body(503, "overloaded", "dispatch queue is full; retry")
                                .with_retry_after(1),
                            false,
                        );
                    }
                    Err(mpsc::TrySendError::Disconnected(_job)) => self.teardown(slot),
                }
            }
            Err(e) => {
                self.state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                self.queue_response(
                    slot,
                    error_body(e.status(), "bad-request", &e.message()),
                    false,
                );
            }
        }
    }

    /// Queues a loop-generated response (errors, refusals) and starts
    /// flushing it.
    fn queue_response(&mut self, slot: usize, response: Response, keep: bool) {
        if response.status >= 400 {
            self.state.metrics.http_errors_total.fetch_add(1, Ordering::Relaxed);
        }
        let bytes = response.to_bytes(keep);
        let Some(conn) = self.conns.get_mut(slot) else { return };
        conn.out.extend_from_slice(&bytes);
        conn.phase = Phase::Finishing { keep_alive: keep };
        conn.shared = None;
        self.arm(slot, self.state.config.io_timeout); // write watchdog
        self.service_out(slot);
    }

    /// Drains the mailbox into the connection's outbound buffer and the
    /// buffer into the socket, looping while both make progress.
    fn service_out(&mut self, slot: usize) {
        loop {
            self.flush_out(slot);
            if self.conns.get(slot).is_none() {
                return;
            }
            if !self.pump_from_shared(slot) {
                return;
            }
        }
    }

    /// Moves mailbox bytes into `conn.out` (bounded by the high-water
    /// mark) and notices response completion. Returns whether anything
    /// changed.
    fn pump_from_shared(&mut self, slot: usize) -> bool {
        let Some(conn) = self.conns.get_mut(slot) else { return false };
        let Some(shared) = conn.shared.clone() else { return false };
        if conn.out_pending() >= shared.high_water {
            return false; // flush the socket first; mailbox can wait
        }
        let out_was_empty = conn.out_pending() == 0;
        let moved;
        let done;
        {
            let mut out = shared.out.lock().unwrap_or_else(|e| e.into_inner());
            moved = !out.bytes.is_empty();
            if moved {
                conn.out.extend_from_slice(&out.bytes);
                out.bytes.clear();
                shared.cond.notify_all();
            }
            done = out.done;
        }
        let mut progressed = moved;
        if moved && out_was_empty {
            // First unflushed bytes: start the write watchdog.
            self.arm(slot, self.state.config.io_timeout);
        }
        if let Some(keep) = done {
            if let Some(conn) = self.conns.get_mut(slot) {
                conn.phase = Phase::Finishing { keep_alive: keep };
                conn.shared = None;
                progressed = true;
            }
        }
        self.update_interest(slot);
        progressed
    }

    /// Writes `conn.out` to the socket as far as it will go; completes
    /// or tears down the connection as the state dictates.
    fn flush_out(&mut self, slot: usize) {
        enum WriteEnd {
            Ok,
            Dead,
        }
        let Some(conn) = self.conns.get_mut(slot) else { return };
        let mut progressed = false;
        let mut end = WriteEnd::Ok;
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    end = WriteEnd::Dead;
                    break;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    end = WriteEnd::Dead;
                    break;
                }
            }
        }
        if matches!(end, WriteEnd::Dead) {
            self.teardown(slot);
            return;
        }
        let drained = conn.out_pos >= conn.out.len();
        if drained {
            conn.out.clear();
            conn.out_pos = 0;
        }
        let phase = conn.phase;
        if drained {
            match phase {
                Phase::Finishing { keep_alive } => {
                    self.complete_request(slot, keep_alive);
                    return;
                }
                // Out buffer drained mid-request: the watchdog only
                // guards unflushed bytes, stop it.
                Phase::Dispatched => self.disarm(slot),
                Phase::Reading => {}
            }
        } else if progressed {
            // The client is consuming: reset the write watchdog.
            self.arm(slot, self.state.config.io_timeout);
        }
        self.update_interest(slot);
    }

    /// One response fully flushed: close, or return to `Reading` for
    /// the next keep-alive request.
    fn complete_request(&mut self, slot: usize, keep_alive: bool) {
        let Some(conn) = self.conns.get_mut(slot) else { return };
        if !keep_alive || conn.read_closed || self.shutting_down {
            self.teardown(slot);
            return;
        }
        conn.phase = Phase::Reading;
        let idle = conn.buf.is_empty();
        if idle {
            self.arm(slot, self.state.config.keep_alive_timeout);
        } else {
            // Pipelined bytes are already waiting.
            self.arm(slot, self.state.config.io_timeout);
            self.parse_ready(slot);
        }
        self.update_interest(slot);
    }

    /// Keeps the poller registration in step with what the connection
    /// can use: read interest until the peer half-closes, write
    /// interest only while output is pending.
    fn update_interest(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot) else { return };
        let want =
            Interest { readable: !conn.read_closed, writable: conn.out_pending() > 0, edge: false };
        if want != conn.interest {
            let fd = conn.stream.as_raw_fd();
            if self.poller.modify(fd, token_of(slot), want).is_ok() {
                if let Some(conn) = self.conns.get_mut(slot) {
                    conn.interest = want;
                }
            }
        }
    }

    /// Removes the connection: closes the socket, invalidates mailbox
    /// messages and timers addressed to it, and unblocks its worker.
    fn teardown(&mut self, slot: usize) {
        if let Some(conn) = self.conns.remove(slot) {
            self.gens[slot] += 1;
            if let Some(shared) = conn.shared {
                shared.mark_gone();
            }
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            // Dropping the stream closes the fd.
        }
    }
}
