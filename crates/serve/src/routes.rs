//! Endpoint routing and handlers: the service surface over the pooled
//! [`Batch`](mst_api::Batch) engine.
//!
//! | Endpoint        | Body                                             |
//! |-----------------|--------------------------------------------------|
//! | `GET /healthz`  | liveness + uptime                                |
//! | `GET /solvers`  | the solver registry (names, topologies, T_lim)   |
//! | `GET /metrics`  | request/solve counters + instances/s             |
//! | `POST /solve`   | one instance, solver selectable by registry name |
//! | `POST /batch`   | an instance sweep through the worker pool        |
//!
//! When the server was configured with named registries (`mst serve
//! --solvers-config`), `/solve` and `/batch` accept a `"registry"` body
//! field pinning the request to that tenant's solver set, and
//! `GET /solvers?registry=NAME` lists a tenant's view; unknown names
//! answer 404 `unknown-registry` rather than silently falling back.
//!
//! Every error is a structured JSON body `{"error": {"kind", "message"}}`
//! with a 4xx status for client mistakes (malformed JSON, unknown
//! solvers, oversized sweeps) and 5xx only for genuine server-side
//! failures (an oracle-rejected solution, which would be a solver bug).

use crate::http::{Request, Response};
use crate::server::ServiceState;
use mst_api::wire::{error_to_json, instance_from_json, solution_to_json, Json};
use mst_api::{verify, BatchSummary, Instance, SolveError, TopologyKind};
use mst_platform::HeterogeneityProfile;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Dispatches one parsed request to its handler.
pub fn route(request: &Request, state: &ServiceState) -> Response {
    state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/") => index(),
        ("GET", "/healthz") => healthz(state),
        ("GET", "/solvers") => solvers(request, state),
        ("GET", "/metrics") => metrics(state),
        ("POST", "/solve") => solve(request, state),
        ("POST", "/batch") => batch(request, state),
        (_, "/" | "/healthz" | "/solvers" | "/metrics" | "/solve" | "/batch") => error_response(
            405,
            "method-not-allowed",
            &format!("{} does not accept {}", request.path, request.method),
        ),
        (_, path) => error_response(404, "not-found", &format!("no endpoint {path}")),
    }
}

/// A structured error response: `{"error": {"kind", "message"}}`.
fn error_response(status: u16, kind: &str, message: &str) -> Response {
    Response::json(
        status,
        Json::obj([(
            "error",
            Json::obj([("kind", Json::str(kind)), ("message", Json::str(message))]),
        )]),
    )
}

/// The status a [`SolveError`] maps to: unknown names are 404, every
/// other solve failure is the client's request (400).
fn solve_error_response(error: &SolveError) -> Response {
    let status = match error {
        SolveError::UnknownSolver { .. } => 404,
        SolveError::MalformedSolution { .. } => 500,
        _ => 400,
    };
    Response::json(status, error_to_json(error))
}

fn index() -> Response {
    Response::json(
        200,
        Json::obj([
            ("service", Json::str("mst-serve")),
            (
                "endpoints",
                Json::Arr(
                    ["GET /healthz", "GET /solvers", "GET /metrics", "POST /solve", "POST /batch"]
                        .iter()
                        .map(|e| Json::str(*e))
                        .collect(),
                ),
            ),
        ]),
    )
}

fn healthz(state: &ServiceState) -> Response {
    Response::json(
        200,
        Json::obj([
            ("status", Json::str("ok")),
            ("uptime_secs", Json::Num(state.started.elapsed().as_secs_f64())),
        ]),
    )
}

fn solvers(request: &Request, state: &ServiceState) -> Response {
    let Some(batch) = state.batch_for(request.query_param("registry")) else {
        return unknown_registry(request.query_param("registry").unwrap_or(""), state);
    };
    let list: Vec<Json> = batch
        .registry()
        .solvers()
        .map(|solver| {
            let topologies = TopologyKind::ALL
                .iter()
                .filter(|k| solver.supports(**k))
                .map(|k| Json::str(k.name()))
                .collect();
            Json::obj([
                ("name", Json::str(solver.name())),
                ("description", Json::str(solver.description())),
                ("topologies", Json::Arr(topologies)),
                ("deadline", Json::Bool(solver.by_deadline())),
            ])
        })
        .collect();
    let registries: Vec<Json> = state.tenant_names().into_iter().map(Json::str).collect();
    Response::json(
        200,
        Json::obj([("solvers", Json::Arr(list)), ("registries", Json::Arr(registries))]),
    )
}

/// 404 for a `"registry"` selector that names no configured registry.
fn unknown_registry(name: &str, state: &ServiceState) -> Response {
    error_response(
        404,
        "unknown-registry",
        &format!(
            "no registry named {name:?} is configured (available: {:?})",
            state.tenant_names()
        ),
    )
}

/// Resolves the optional `"registry"` body field to the engine the
/// request solves through (shared by `/solve` and `/batch`).
fn select_batch<'a>(body: &Json, state: &'a ServiceState) -> Result<&'a mst_api::Batch, Response> {
    let selector = opt_str(body, "registry")?;
    state.batch_for(selector).ok_or_else(|| unknown_registry(selector.unwrap_or(""), state))
}

fn metrics(state: &ServiceState) -> Response {
    let m = &state.metrics;
    let load = |c: &std::sync::atomic::AtomicU64| Json::int(c.load(Ordering::Relaxed) as i64);
    Response::json(
        200,
        Json::obj([
            ("uptime_secs", Json::Num(state.started.elapsed().as_secs_f64())),
            ("connections_total", load(&m.connections_total)),
            ("connections_rejected", load(&m.connections_rejected)),
            ("requests_total", load(&m.requests_total)),
            ("http_errors_total", load(&m.http_errors_total)),
            ("solved_total", load(&m.solved_total)),
            ("failed_total", load(&m.failed_total)),
            ("solve_secs_total", Json::Num(m.solve_ns_total.load(Ordering::Relaxed) as f64 / 1e9)),
            ("instances_per_sec", Json::Num(m.instances_per_sec())),
            ("pool_workers", Json::int(state.batch.pool().workers() as i64)),
            ("pool_jobs_submitted", Json::int(state.batch.pool().jobs_submitted() as i64)),
        ]),
    )
}

/// Parses the request body as a JSON object, with structured failures.
fn parse_body(request: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| error_response(400, "bad-request", "body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Err(error_response(400, "bad-request", "empty body; expected a JSON object"));
    }
    Json::parse(text).map_err(|e| error_response(400, "bad-json", &e.to_string()))
}

/// Optional string field; `Err` when present with the wrong type.
fn opt_str<'a>(body: &'a Json, key: &str) -> Result<Option<&'a str>, Response> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(value) => value.as_str().map(Some).ok_or_else(|| {
            error_response(400, "bad-request", &format!("\"{key}\" must be a string"))
        }),
    }
}

/// Optional non-negative integer field; `Err` when present but invalid.
fn opt_int(body: &Json, key: &str) -> Result<Option<i64>, Response> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(value) => match value.as_i64() {
            Some(n) if n >= 0 => Ok(Some(n)),
            _ => Err(error_response(
                400,
                "bad-request",
                &format!("\"{key}\" must be a non-negative integer"),
            )),
        },
    }
}

/// Optional boolean field, defaulting to `false`.
fn opt_flag(body: &Json, key: &str) -> Result<bool, Response> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(value) => value.as_bool().ok_or_else(|| {
            error_response(400, "bad-request", &format!("\"{key}\" must be a boolean"))
        }),
    }
}

/// `POST /solve` — one instance through a named solver.
///
/// Body: `{"platform": <text>, "tasks": N, "solver"?: name,
/// "registry"?: name, "deadline"?: T, "verify"?: bool}`. With
/// `"verify": true` the solution is checked by the [`verify`] oracle
/// before it is returned and the response carries `"feasible": true` —
/// an infeasible witness would be a solver bug and answers 500.
fn solve(request: &Request, state: &ServiceState) -> Response {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let instance = match instance_from_json(&body) {
        Ok(instance) => instance,
        Err(e) => return error_response(400, "bad-instance", &e.to_string()),
    };
    if let Err(response) = check_task_budget(&instance, state) {
        return response;
    }
    let (solver_name, deadline, check) =
        match (opt_str(&body, "solver"), opt_int(&body, "deadline"), opt_flag(&body, "verify")) {
            (Ok(s), Ok(d), Ok(v)) => (s.unwrap_or("optimal"), d, v),
            (Err(r), _, _) | (_, Err(r), _) | (_, _, Err(r)) => return r,
        };
    let batch = match select_batch(&body, state) {
        Ok(batch) => batch,
        Err(response) => return response,
    };
    let registry = batch.registry();
    let started = Instant::now();
    let result = match deadline {
        Some(t) => registry.solve_by_deadline(solver_name, &instance, t),
        None => registry.solve(solver_name, &instance),
    };
    let elapsed = started.elapsed();
    let solution = match result {
        Ok(solution) => {
            state.metrics.record_solve(1, 0, elapsed);
            solution
        }
        Err(e) => {
            state.metrics.record_solve(0, 1, elapsed);
            return solve_error_response(&e);
        }
    };
    let mut reply = match solution_to_json(&solution) {
        Json::Obj(members) => members,
        other => return Response::json(200, other),
    };
    if check {
        match verify(&instance, &solution) {
            Ok(report) if report.is_feasible() => {
                reply.push(("feasible".to_string(), Json::Bool(true)));
            }
            Ok(report) => {
                return error_response(
                    500,
                    "infeasible-solution",
                    &format!(
                        "solver {solver_name} produced a schedule the oracle rejects ({} violation(s))",
                        report.violations.len()
                    ),
                );
            }
            Err(e) => return solve_error_response(&e),
        }
    }
    Response::json(200, Json::Obj(reply))
}

/// Rejects task budgets beyond the configured cap — a bare number in
/// the body must not be able to request unbounded scheduling work.
fn check_task_budget(instance: &Instance, state: &ServiceState) -> Result<(), Response> {
    let cap = state.config.max_tasks_per_instance;
    if instance.tasks > cap {
        return Err(error_response(
            400,
            "too-many-tasks",
            &format!("{} tasks exceed the per-instance cap of {cap}", instance.tasks),
        ));
    }
    Ok(())
}

/// Decodes the `/batch` instance set: either an explicit `"instances"`
/// array or a `"generate"` sweep spec
/// (`{"kind", "count", "size"?, "tasks"?, "profile"?, "seed"?}`).
fn batch_instances(body: &Json, state: &ServiceState) -> Result<Vec<Instance>, Response> {
    let cap = state.config.max_batch_instances;
    let too_many = |n: usize| {
        error_response(
            400,
            "too-many-instances",
            &format!("{n} instances exceed the per-request cap of {cap}"),
        )
    };
    if let Some(items) = body.get("instances") {
        let items = items
            .as_arr()
            .ok_or_else(|| error_response(400, "bad-request", "\"instances\" must be an array"))?;
        if items.len() > cap {
            return Err(too_many(items.len()));
        }
        let mut instances = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let instance = instance_from_json(item).map_err(|e| {
                error_response(400, "bad-instance", &format!("instances[{i}]: {e}"))
            })?;
            check_task_budget(&instance, state)?;
            instances.push(instance);
        }
        return Ok(instances);
    }
    let Some(spec) = body.get("generate") else {
        return Err(error_response(
            400,
            "bad-request",
            "body needs either \"instances\" or \"generate\"",
        ));
    };
    let kind_name = opt_str(spec, "kind")?
        .ok_or_else(|| error_response(400, "bad-request", "\"generate.kind\" is required"))?;
    let kind = TopologyKind::ALL.into_iter().find(|k| k.name() == kind_name).ok_or_else(|| {
        error_response(400, "bad-request", &format!("unknown topology {kind_name:?}"))
    })?;
    let count = opt_int(spec, "count")?
        .ok_or_else(|| error_response(400, "bad-request", "\"generate.count\" is required"))?;
    if count == 0 {
        return Err(error_response(400, "bad-request", "\"generate.count\" must be at least 1"));
    }
    if count as usize > cap {
        return Err(too_many(count as usize));
    }
    let size = opt_int(spec, "size")?.unwrap_or(4).max(1) as usize;
    if size > state.config.max_platform_processors {
        return Err(error_response(
            400,
            "too-many-processors",
            &format!(
                "\"generate.size\" of {size} exceeds the {} processor cap",
                state.config.max_platform_processors
            ),
        ));
    }
    let tasks = opt_int(spec, "tasks")?.unwrap_or(8).max(1) as usize;
    if tasks > state.config.max_tasks_per_instance {
        return Err(error_response(
            400,
            "too-many-tasks",
            &format!(
                "\"generate.tasks\" of {tasks} exceeds the {} task cap",
                state.config.max_tasks_per_instance
            ),
        ));
    }
    let seed0 = opt_int(spec, "seed")?.unwrap_or(0) as u64;
    let profile_name = opt_str(spec, "profile")?.unwrap_or("uniform");
    let profile = HeterogeneityProfile::by_name(profile_name).ok_or_else(|| {
        error_response(400, "bad-request", &format!("unknown profile {profile_name:?}"))
    })?;
    Ok((0..count as u64)
        .map(|i| Instance::generate(kind, profile, seed0 + i, size, tasks))
        .collect())
}

/// `POST /batch` — a sweep dispatched through the worker pool.
///
/// Body: `{"instances": [...]} | {"generate": {...}}`, plus `"solver"?`,
/// `"registry"?`, `"deadline"?`, `"verify"?` and `"include_results"?`.
/// The response always carries the summary; per-instance solutions ride
/// along only when `"include_results": true` (a 100k-instance sweep
/// should not serialize 100k schedules by accident).
fn batch(request: &Request, state: &ServiceState) -> Response {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let instances = match batch_instances(&body, state) {
        Ok(instances) => instances,
        Err(response) => return response,
    };
    let (solver_name, deadline) = match (opt_str(&body, "solver"), opt_int(&body, "deadline")) {
        (Ok(s), Ok(d)) => (s.unwrap_or("optimal"), d),
        (Err(r), _) | (_, Err(r)) => return r,
    };
    let (check, include_results) =
        match (opt_flag(&body, "verify"), opt_flag(&body, "include_results")) {
            (Ok(c), Ok(i)) => (c, i),
            (Err(r), _) | (_, Err(r)) => return r,
        };
    let tenant_batch = match select_batch(&body, state) {
        Ok(batch) => batch,
        Err(response) => return response,
    };
    // Resolve the name up front so an unknown solver is one 404, not a
    // thousand per-instance errors.
    if let Err(e) = tenant_batch.registry().resolve(solver_name) {
        return solve_error_response(&e);
    }
    let engine = tenant_batch.clone().with_solver(solver_name);
    let started = Instant::now();
    let results = match deadline {
        Some(t) => engine.solve_all_by_deadline(&instances, t),
        None => engine.solve_all(&instances),
    };
    let elapsed = started.elapsed();
    let summary = BatchSummary::of(&results);
    state.metrics.record_solve(summary.solved as u64, summary.failed as u64, elapsed);

    let mut infeasible = 0usize;
    if check {
        for (instance, result) in instances.iter().zip(&results) {
            if let Ok(solution) = result {
                match verify(instance, solution) {
                    Ok(report) if report.is_feasible() => {}
                    _ => infeasible += 1,
                }
            }
        }
    }

    let mut reply = vec![
        ("count".to_string(), Json::int(instances.len() as i64)),
        ("solver".to_string(), Json::str(solver_name)),
        ("solved".to_string(), Json::int(summary.solved as i64)),
        ("failed".to_string(), Json::int(summary.failed as i64)),
        ("total_tasks".to_string(), Json::int(summary.total_tasks as i64)),
        ("mean_makespan".to_string(), Json::Num(summary.mean_makespan())),
        ("max_makespan".to_string(), Json::int(summary.max_makespan)),
        ("elapsed_secs".to_string(), Json::Num(elapsed.as_secs_f64())),
        (
            "instances_per_sec".to_string(),
            Json::Num(instances.len() as f64 / elapsed.as_secs_f64().max(1e-9)),
        ),
        ("verified".to_string(), Json::Bool(check)),
    ];
    if check {
        reply.push(("infeasible".to_string(), Json::int(infeasible as i64)));
    }
    if include_results {
        let rendered: Vec<Json> = results
            .iter()
            .map(|r| match r {
                Ok(solution) => solution_to_json(solution),
                Err(e) => error_to_json(e),
            })
            .collect();
        reply.push(("results".to_string(), Json::Arr(rendered)));
    }
    if infeasible > 0 {
        // An oracle-rejected witness is a solver bug: fail the request
        // loudly but keep the diagnostic body.
        reply.insert(
            0,
            (
                "error".to_string(),
                Json::obj([
                    ("kind", Json::str("infeasible-solution")),
                    (
                        "message",
                        Json::str(format!("{infeasible} solution(s) rejected by the oracle")),
                    ),
                ]),
            ),
        );
        return Response::json(500, Json::Obj(reply));
    }
    Response::json(200, Json::Obj(reply))
}
