//! Endpoint routing and handlers: the service surface over the pooled
//! [`Batch`] engine.
//!
//! | Endpoint        | Body                                              |
//! |-----------------|---------------------------------------------------|
//! | `GET /healthz`  | structured liveness: status, uptime, queue depth  |
//! | `GET /solvers`  | the solver registry (names, topologies, T_lim)    |
//! | `GET /metrics`  | global + per-tenant counters, live queue depth    |
//! |                 | (`?format=prometheus` for the text exposition)    |
//! | `GET /tenants`  | the resolved execution policies (tokens masked)   |
//! | `GET /history`  | the persistent result store (`--store` servers)   |
//! | `GET /trace`    | one request's span tree by `?id=` (`X-Trace-Id`)  |
//! | `GET /trace/slow` | the slowest recent requests (`?limit=`)         |
//! | `POST /solve`   | one instance, solver selectable by registry name  |
//! | `POST /batch`   | an instance sweep through the worker pool         |
//! | `POST /session` | a held evolving instance: arrivals + repairs      |
//!
//! Both solve paths are fronted by the tenant's **canonical solution
//! cache** ([`mst_api::cache`]): each instance is canonicalized
//! ([`CanonicalInstance`]) and looked up first; a hit restores the
//! cached canonical solution (rescale + leg/node remap, so `verify`
//! still passes) **without taking an admission slot or waking a
//! worker**. Misses solve the *canonical* instance, memoise it, and
//! append a record to the persistent store when one is configured —
//! which is what `GET /history` reads back and what a restarted server
//! warm-starts its caches from.
//!
//! When the server was configured with named registries (`mst serve
//! --solvers-config`), `/solve` and `/batch` accept a `"registry"` body
//! field pinning the request to that tenant's solver set, and
//! `GET /solvers?registry=NAME` lists a tenant's view; unknown names
//! answer 404 `unknown-registry` rather than silently falling back.
//!
//! Requests carrying an `X-Api-Token` header run under the matching
//! tenant's **execution policy** ([`mst_api::exec`]): its registry,
//! its dedicated worker pool, its admission quota (exhaustion answers
//! 429 `quota-exhausted` with `Retry-After`), its per-request instance
//! cap and its deadline budget. Unknown tokens answer 401
//! `unknown-token`. `/batch` sweeps solve in chunks with cancellation
//! checkpoints — a spent deadline budget or a disconnected client
//! stops the remaining work — and `"stream": true` streams
//! per-instance results as chunked NDJSON instead of buffering them.
//!
//! Every error is a structured JSON body `{"error": {"kind", "message"}}`
//! with a 4xx status for client mistakes (malformed JSON, unknown
//! solvers, oversized sweeps) and 5xx only for genuine server-side
//! failures (an oracle-rejected solution, which would be a solver bug).

use crate::http::{Request, Response};
use crate::server::ServiceState;
use crate::service::{ResponseBody, StreamWriter};
use mst_api::exec::{AdmissionError, TenantExec};
use mst_api::fleet::SweepSpec;
use mst_api::repair::{FailureEvent, RepairError};
use mst_api::wire::{error_to_json, instance_from_json, solution_to_json, Json};
use mst_api::{
    verify, Batch, BatchSummary, CacheKey, CanonicalInstance, Instance, Solution, SolveError,
    TopologyKind,
};
use mst_platform::HeterogeneityProfile;
use mst_sim::CancelToken;
use mst_store::Record;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Dispatches one parsed request to its handler. `stream` is the
/// transport's [`StreamWriter`], when the caller can hand one over:
/// the `/batch` handler uses it to probe for mid-request client
/// disconnects and to stream large result sets; `None` (tests,
/// embedding without a transport) degrades to fully buffered replies.
///
/// This is the whole **Service boundary**: nothing below this function
/// knows what a socket is, so the threaded and the event-driven
/// transports (and any future one) drive identical handler code.
pub fn route_on(
    request: &Request,
    state: &ServiceState,
    stream: Option<&mut dyn StreamWriter>,
) -> ResponseBody {
    state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/") => ResponseBody::Full(index()),
        ("GET", "/healthz") => ResponseBody::Full(healthz(state)),
        ("GET", "/solvers") => ResponseBody::Full(solvers(request, state)),
        ("GET", "/metrics") => ResponseBody::Full(metrics(request, state)),
        ("GET", "/tenants") => ResponseBody::Full(tenants(state)),
        ("GET", "/history") => ResponseBody::Full(history(request, state)),
        ("GET", "/trace") => ResponseBody::Full(trace_lookup(request)),
        ("GET", "/trace/slow") => ResponseBody::Full(trace_slow(request)),
        ("POST", "/solve") => ResponseBody::Full(solve(request, state)),
        ("POST", "/batch") => batch(request, state, stream),
        ("POST", "/session") => ResponseBody::Full(session(request, state)),
        (
            _,
            "/" | "/healthz" | "/solvers" | "/metrics" | "/tenants" | "/history" | "/solve"
            | "/batch" | "/session" | "/trace" | "/trace/slow",
        ) => ResponseBody::Full(error_response(
            405,
            "method-not-allowed",
            &format!("{} does not accept {}", request.path, request.method),
        )),
        (_, path) => {
            ResponseBody::Full(error_response(404, "not-found", &format!("no endpoint {path}")))
        }
    }
}

/// [`route_on`] without a stream writer: every reply is buffered.
pub fn route(request: &Request, state: &ServiceState) -> Response {
    match route_on(request, state, None) {
        ResponseBody::Full(response) => response,
        ResponseBody::Streamed => unreachable!("without a stream nothing can be streamed"),
    }
}

/// The bounded label a request is observed under in the per-route
/// latency histograms: known endpoints keep their path, everything
/// else collapses to `"other"` so an attacker scanning random paths
/// cannot grow the label set (and the `/metrics` exposition) without
/// bound.
pub fn route_label(_method: &str, path: &str) -> &'static str {
    match path {
        "/" => "/",
        "/healthz" => "/healthz",
        "/solvers" => "/solvers",
        "/metrics" => "/metrics",
        "/tenants" => "/tenants",
        "/history" => "/history",
        "/trace" => "/trace",
        "/trace/slow" => "/trace/slow",
        "/solve" => "/solve",
        "/batch" => "/batch",
        "/session" => "/session",
        _ => "other",
    }
}

/// `GET /trace?id=N` — the full span tree of one recent request, as
/// collected by [`mst_obs`]: metadata (route, tenant, solver, status,
/// cache outcome) plus every recorded `(stage, start_ns, dur_ns)`
/// span sorted by start time. The id is the `X-Trace-Id` header every
/// response carries. Traces are held in a bounded table; an evicted
/// or unknown id answers 404.
fn trace_lookup(request: &Request) -> Response {
    let Some(raw) = request.query_param("id") else {
        return error_response(400, "bad-request", "\"id\" query parameter is required");
    };
    let Ok(id) = raw.parse::<u64>() else {
        return error_response(400, "bad-request", "\"id\" must be an unsigned integer");
    };
    match mst_obs::lookup(id) {
        Some(trace) => Response::json(200, rendered_trace(&trace)),
        None => error_response(
            404,
            "unknown-trace",
            &format!("no trace {id} is held (it may have been evicted)"),
        ),
    }
}

/// `GET /trace/slow?limit=N` — the slowest finished traces, slowest
/// first (default 10, capped at the trace table size).
fn trace_slow(request: &Request) -> Response {
    let limit = match request.query_param("limit") {
        None => 10,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n.min(mst_obs::trace::TRACE_TABLE_CAP),
            Err(_) => {
                return error_response(
                    400,
                    "bad-request",
                    "\"limit\" must be a non-negative integer",
                )
            }
        },
    };
    let traces = mst_obs::slowest(limit);
    let rendered: Vec<Json> = traces.iter().map(rendered_trace).collect();
    Response::json(
        200,
        Json::obj([("count", Json::int(rendered.len() as i64)), ("traces", Json::Arr(rendered))]),
    )
}

/// Re-parses a trace's self-rendered JSON into the wire [`Json`] type
/// so it composes with the rest of the response body. The trace JSON
/// is machine-generated and always valid; every number in it fits an
/// `f64` exactly until ~104 days of process uptime.
fn rendered_trace(trace: &mst_obs::Trace) -> Json {
    Json::parse(&trace.to_json()).unwrap_or(Json::Null)
}

/// A structured error response: `{"error": {"kind", "message"}}`.
fn error_response(status: u16, kind: &str, message: &str) -> Response {
    Response::json(
        status,
        Json::obj([(
            "error",
            Json::obj([("kind", Json::str(kind)), ("message", Json::str(message))]),
        )]),
    )
}

/// The status a [`SolveError`] maps to: unknown names are 404, every
/// other solve failure is the client's request (400).
fn solve_error_response(error: &SolveError) -> Response {
    let status = match error {
        SolveError::UnknownSolver { .. } => 404,
        SolveError::MalformedSolution { .. } => 500,
        _ => 400,
    };
    Response::json(status, error_to_json(error))
}

/// Resolves the request's `X-Api-Token` header to the execution policy
/// it runs under: the default tenant without a header, the matching
/// named tenant otherwise. An unmatched token answers 401 rather than
/// silently running as the default tenant, and a token combined with a
/// `"registry"` body selector is rejected as ambiguous — the token
/// already pins the registry.
fn tenant_for<'a>(
    request: &Request,
    body: &Json,
    state: &'a ServiceState,
) -> Result<&'a TenantExec, Response> {
    let token = request.header("x-api-token");
    if token.is_some() && body.get("registry").is_some() {
        return Err(error_response(
            400,
            "conflicting-selectors",
            "a request cannot carry both an X-Api-Token header and a \"registry\" body field; \
             the token already selects the tenant's registry",
        ));
    }
    let tenant = state.tenant_for(token).map_err(|unknown| {
        error_response(
            401,
            "unknown-token",
            &format!("no tenant answers the API token {unknown:?}"),
        )
    })?;
    tenant.stats().requests_total.fetch_add(1, Ordering::Relaxed);
    mst_obs::note_tenant(&tenant.policy().name);
    // The time-windowed rate limit is enforced at routing time, so it
    // covers every tenant-scoped endpoint (/solve, /batch, /session)
    // uniformly, before any admission slot or solving work is taken.
    tenant.check_rate().map_err(|e| admission_response(tenant, &e))?;
    Ok(tenant)
}

/// The refusal an [`AdmissionError`] maps to: quota exhaustion is 429
/// with a `Retry-After` (the refusal is transient — slots free as
/// in-flight requests finish), an oversized request is the client's
/// mistake (400). The `Retry-After` **escalates** with the tenant's
/// consecutive-rejection streak ([`TenantExec::retry_after_hint`]): a
/// client hammering an exhausted quota is told to back off
/// exponentially (1, 2, 4, ... capped), and the hint resets to 1 the
/// moment one of its requests is admitted. A spent rate limit is also
/// 429, but its `Retry-After` is **computed**, not escalated: the
/// token bucket knows exactly how long until the next token regrows.
fn admission_response(tenant: &TenantExec, error: &AdmissionError) -> Response {
    match error {
        AdmissionError::QuotaExhausted { .. } => {
            error_response(429, "quota-exhausted", &error.to_string())
                .with_retry_after(tenant.retry_after_hint())
        }
        AdmissionError::TooManyInstances { .. } => {
            error_response(400, "too-many-instances", &error.to_string())
        }
        AdmissionError::RateLimited { retry_after, .. } => {
            error_response(429, "rate-limited", &error.to_string()).with_retry_after(*retry_after)
        }
    }
}

fn index() -> Response {
    Response::json(
        200,
        Json::obj([
            ("service", Json::str("mst-serve")),
            (
                "endpoints",
                Json::Arr(
                    [
                        "GET /healthz",
                        "GET /solvers",
                        "GET /metrics",
                        "GET /tenants",
                        "GET /history",
                        "GET /trace",
                        "GET /trace/slow",
                        "POST /solve",
                        "POST /batch",
                        "POST /session",
                    ]
                    .iter()
                    .map(|e| Json::str(*e))
                    .collect(),
                ),
            ),
        ]),
    )
}

/// `GET /healthz` — structured service state, not just liveness: the
/// overall `"status"` is `"ok"` or `"store_degraded"` (a broken
/// persistent store degrades the service, it does not kill it), plus
/// uptime, the live admission queue depth and the open-session gauge.
/// Always `200`: a degraded server is still *alive* — orchestrators
/// keep it running, operators read the body.
fn healthz(state: &ServiceState) -> Response {
    let degraded = state.store_health.is_degraded();
    Response::json(
        200,
        Json::obj([
            ("status", Json::str(if degraded { "store_degraded" } else { "ok" })),
            ("uptime_secs", Json::Num(state.started.elapsed().as_secs_f64())),
            ("queue_depth", Json::int(state.queue_depth() as i64)),
            ("sessions_open", Json::int(state.sessions.open_count() as i64)),
            ("store_degraded", Json::Bool(degraded)),
        ]),
    )
}

fn solvers(request: &Request, state: &ServiceState) -> Response {
    let Some(batch) = state.batch_for(request.query_param("registry")) else {
        return unknown_registry(request.query_param("registry").unwrap_or(""), state);
    };
    let list: Vec<Json> = batch
        .registry()
        .solvers()
        .map(|solver| {
            let topologies = TopologyKind::ALL
                .iter()
                .filter(|k| solver.supports(**k))
                .map(|k| Json::str(k.name()))
                .collect();
            Json::obj([
                ("name", Json::str(solver.name())),
                ("description", Json::str(solver.description())),
                ("topologies", Json::Arr(topologies)),
                ("deadline", Json::Bool(solver.by_deadline())),
            ])
        })
        .collect();
    let registries: Vec<Json> = state.tenant_names().into_iter().map(Json::str).collect();
    Response::json(
        200,
        Json::obj([("solvers", Json::Arr(list)), ("registries", Json::Arr(registries))]),
    )
}

/// 404 for a `"registry"` selector that names no configured registry.
fn unknown_registry(name: &str, state: &ServiceState) -> Response {
    error_response(
        404,
        "unknown-registry",
        &format!(
            "no registry named {name:?} is configured (available: {:?})",
            state.tenant_names()
        ),
    )
}

/// Resolves the optional `"registry"` body field to the engine the
/// request solves through (shared by `/solve` and `/batch`).
fn select_batch<'a>(body: &Json, state: &'a ServiceState) -> Result<&'a mst_api::Batch, Response> {
    let selector = opt_str(body, "registry")?;
    state.batch_for(selector).ok_or_else(|| unknown_registry(selector.unwrap_or(""), state))
}

/// `GET /metrics` — global + per-tenant counters as JSON, or the
/// Prometheus text exposition with `?format=prometheus` (counters,
/// gauges and the per-route / per-tenant / per-solver-kernel latency
/// summaries collected by [`mst_obs`]). Both shapes iterate sorted
/// key sets, so consecutive scrapes diff cleanly.
fn metrics(request: &Request, state: &ServiceState) -> Response {
    if request.query_param("format") == Some("prometheus") {
        return prometheus_metrics(state);
    }
    let m = &state.metrics;
    let load = |c: &std::sync::atomic::AtomicU64| Json::int(c.load(Ordering::Relaxed) as i64);
    let mut tenants: Vec<(String, Json)> = state
        .execs()
        .map(|tenant| {
            let stats = tenant.stats();
            (
                tenant.policy().name.clone(),
                Json::obj([
                    ("requests_total", load(&stats.requests_total)),
                    ("rejected_total", load(&stats.rejected_total)),
                    ("rate_limited_total", load(&stats.rate_limited_total)),
                    ("solved_total", load(&stats.solved_total)),
                    ("failed_total", load(&stats.failed_total)),
                    ("cancelled_total", load(&stats.cancelled_total)),
                    ("cache_hits_total", load(&stats.cache_hits_total)),
                    ("cache_misses_total", load(&stats.cache_misses_total)),
                    ("cache_entries", Json::int(tenant.cache().len() as i64)),
                    ("store_records", load(&stats.store_records)),
                    ("queue_depth", Json::int(tenant.queue_depth() as i64)),
                    (
                        "threads",
                        match tenant.policy().threads {
                            Some(threads) => Json::int(threads as i64),
                            None => Json::Null,
                        },
                    ),
                ]),
            )
        })
        .collect();
    // Config order is an accident of the tenant file; scrape output
    // must not reshuffle when the file is reordered.
    tenants.sort_by(|a, b| a.0.cmp(&b.0));
    Response::json(
        200,
        Json::obj([
            ("uptime_secs", Json::Num(state.started.elapsed().as_secs_f64())),
            ("connections_total", load(&m.connections_total)),
            ("connections_rejected", load(&m.connections_rejected)),
            ("requests_total", load(&m.requests_total)),
            ("http_errors_total", load(&m.http_errors_total)),
            ("solved_total", load(&m.solved_total)),
            ("failed_total", load(&m.failed_total)),
            ("cancelled_total", load(&m.cancelled_total)),
            ("solve_secs_total", Json::Num(m.solve_ns_total.load(Ordering::Relaxed) as f64 / 1e9)),
            ("instances_per_sec", Json::Num(m.instances_per_sec())),
            ("queue_depth", Json::int(state.queue_depth() as i64)),
            ("store_records", Json::int(state.store.as_ref().map_or(0, |s| s.len()) as i64)),
            ("store_degraded", Json::Bool(state.store_health.is_degraded())),
            ("store_failures_total", Json::int(state.store_health.failures_total() as i64)),
            ("store_retries_total", Json::int(state.store_health.retries_total() as i64)),
            ("store_recoveries_total", Json::int(state.store_health.recoveries_total() as i64)),
            ("sessions_open", Json::int(state.sessions.open_count() as i64)),
            ("pool_workers", Json::int(state.batch.pool().workers() as i64)),
            ("pool_jobs_submitted", Json::int(state.batch.pool().jobs_submitted() as i64)),
            ("tenants", Json::Obj(tenants)),
        ]),
    )
}

/// The Prometheus text exposition behind `GET /metrics?format=prometheus`.
///
/// Latency summaries come from the [`mst_obs`] histograms: one
/// `mst_route_latency_us` family per route label, one
/// `mst_tenant_latency_us` per tenant, and one
/// `mst_kernel_latency_us{kernel,solver}` per solver-kernel family
/// (solve / probe / verify) — all in microseconds, with
/// p50/p99/p999/max quantile samples plus `_sum` and `_count`. Every
/// key set iterates a `BTreeMap` (or is pre-sorted), so the scrape is
/// byte-deterministic for a given counter state.
fn prometheus_metrics(state: &ServiceState) -> Response {
    use mst_obs::{write_prom_counter, write_prom_gauge, write_prom_summary};
    let m = &state.metrics;
    let load = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
    let mut out = String::with_capacity(4096);
    write_prom_gauge(&mut out, "mst_uptime_secs", &[], state.started.elapsed().as_secs_f64());
    write_prom_counter(&mut out, "mst_connections_total", &[], load(&m.connections_total));
    write_prom_counter(&mut out, "mst_connections_rejected", &[], load(&m.connections_rejected));
    write_prom_counter(&mut out, "mst_requests_total", &[], load(&m.requests_total));
    write_prom_counter(&mut out, "mst_http_errors_total", &[], load(&m.http_errors_total));
    write_prom_counter(&mut out, "mst_solved_total", &[], load(&m.solved_total));
    write_prom_counter(&mut out, "mst_failed_total", &[], load(&m.failed_total));
    write_prom_counter(&mut out, "mst_cancelled_total", &[], load(&m.cancelled_total));
    write_prom_gauge(
        &mut out,
        "mst_solve_secs_total",
        &[],
        m.solve_ns_total.load(Ordering::Relaxed) as f64 / 1e9,
    );
    write_prom_gauge(&mut out, "mst_instances_per_sec", &[], m.instances_per_sec());
    write_prom_gauge(&mut out, "mst_queue_depth", &[], state.queue_depth() as f64);
    write_prom_gauge(
        &mut out,
        "mst_store_records",
        &[],
        state.store.as_ref().map_or(0, |s| s.len()) as f64,
    );
    write_prom_gauge(
        &mut out,
        "mst_store_degraded",
        &[],
        if state.store_health.is_degraded() { 1.0 } else { 0.0 },
    );
    write_prom_gauge(&mut out, "mst_sessions_open", &[], state.sessions.open_count() as f64);
    write_prom_gauge(&mut out, "mst_pool_workers", &[], state.batch.pool().workers() as f64);
    write_prom_counter(
        &mut out,
        "mst_pool_jobs_submitted",
        &[],
        state.batch.pool().jobs_submitted(),
    );
    write_prom_counter(&mut out, "mst_obs_dropped_spans_total", &[], mst_obs::dropped_events());
    if let Some(poll) = state.poll_stats.get() {
        let (polls, wait_us, events) = poll.snapshot();
        write_prom_counter(&mut out, "mst_poll_waits_total", &[], polls);
        write_prom_counter(&mut out, "mst_poll_wait_us_total", &[], wait_us);
        write_prom_counter(&mut out, "mst_poll_events_total", &[], events);
    }

    // Per-tenant counters, sorted by tenant name (config order is not
    // deterministic across restarts with a reordered file).
    let mut tenants: Vec<&TenantExec> = state.execs().collect();
    tenants.sort_by(|a, b| a.policy().name.cmp(&b.policy().name));
    for tenant in tenants {
        let name = tenant.policy().name.as_str();
        let stats = tenant.stats();
        let labels = [("tenant", name)];
        write_prom_counter(
            &mut out,
            "mst_tenant_requests_total",
            &labels,
            load(&stats.requests_total),
        );
        write_prom_counter(
            &mut out,
            "mst_tenant_rejected_total",
            &labels,
            load(&stats.rejected_total),
        );
        write_prom_counter(&mut out, "mst_tenant_solved_total", &labels, load(&stats.solved_total));
        write_prom_counter(
            &mut out,
            "mst_tenant_cache_hits_total",
            &labels,
            load(&stats.cache_hits_total),
        );
        write_prom_counter(
            &mut out,
            "mst_tenant_cache_misses_total",
            &labels,
            load(&stats.cache_misses_total),
        );
        write_prom_gauge(&mut out, "mst_tenant_queue_depth", &labels, tenant.queue_depth() as f64);
    }

    // Latency summaries (µs). Route and tenant histograms are this
    // server's; kernel histograms are process-global.
    for (route, snap) in state.obs.route_snapshots() {
        write_prom_summary(&mut out, "mst_route_latency_us", &[("route", &route)], &snap);
    }
    for (tenant, snap) in state.obs.tenant_snapshots() {
        write_prom_summary(&mut out, "mst_tenant_latency_us", &[("tenant", &tenant)], &snap);
    }
    for ((kernel, solver), snap) in mst_obs::kernel_snapshots() {
        write_prom_summary(
            &mut out,
            "mst_kernel_latency_us",
            &[("kernel", kernel.name()), ("solver", &solver)],
            &snap,
        );
    }
    Response::text(200, out)
}

/// `GET /tenants` — the resolved execution policies, for operators.
/// Token *values* are deliberately not echoed (this endpoint is as
/// public as the rest of the API); `"token"` only says whether a
/// custom one is configured.
fn tenants(state: &ServiceState) -> Response {
    let list: Vec<Json> = state
        .execs()
        .map(|tenant| {
            let policy = tenant.policy();
            let opt_int = |v: Option<usize>| match v {
                Some(n) => Json::int(n as i64),
                None => Json::Null,
            };
            Json::obj([
                ("name", Json::str(policy.name.clone())),
                ("token", Json::Bool(policy.token.is_some())),
                ("threads", opt_int(policy.threads)),
                ("quota", opt_int(policy.quota)),
                ("max_instances", opt_int(policy.max_instances)),
                (
                    "deadline_ms",
                    match policy.deadline {
                        Some(budget) => Json::int(budget.as_millis() as i64),
                        None => Json::Null,
                    },
                ),
                (
                    "rate_limit",
                    match policy.rate {
                        Some(rate) => Json::obj([
                            ("requests_per_window", Json::int(rate.requests as i64)),
                            ("window_ms", Json::int(rate.window.as_millis() as i64)),
                        ]),
                        None => Json::Null,
                    },
                ),
                ("solvers", Json::int(policy.registry.len() as i64)),
                ("queue_depth", Json::int(tenant.queue_depth() as i64)),
            ])
        })
        .collect();
    Response::json(200, Json::obj([("tenants", Json::Arr(list))]))
}

/// Parses the request body as a JSON object, with structured failures.
fn parse_body(request: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| error_response(400, "bad-request", "body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Err(error_response(400, "bad-request", "empty body; expected a JSON object"));
    }
    Json::parse(text).map_err(|e| error_response(400, "bad-json", &e.to_string()))
}

/// Optional string field; `Err` when present with the wrong type.
fn opt_str<'a>(body: &'a Json, key: &str) -> Result<Option<&'a str>, Response> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(value) => value.as_str().map(Some).ok_or_else(|| {
            error_response(400, "bad-request", &format!("\"{key}\" must be a string"))
        }),
    }
}

/// Optional non-negative integer field; `Err` when present but invalid.
fn opt_int(body: &Json, key: &str) -> Result<Option<i64>, Response> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(value) => match value.as_i64() {
            Some(n) if n >= 0 => Ok(Some(n)),
            _ => Err(error_response(
                400,
                "bad-request",
                &format!("\"{key}\" must be a non-negative integer"),
            )),
        },
    }
}

/// Optional boolean field, defaulting to `false`.
fn opt_flag(body: &Json, key: &str) -> Result<bool, Response> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(value) => value.as_bool().ok_or_else(|| {
            error_response(400, "bad-request", &format!("\"{key}\" must be a boolean"))
        }),
    }
}

/// `POST /solve` — one instance through a named solver, under the
/// requesting tenant's execution policy.
///
/// Body: `{"platform": <text>, "tasks": N, "solver"?: name,
/// "registry"?: name, "deadline"?: T, "verify"?: bool}`. An
/// `X-Api-Token` header routes the request to its tenant (admission
/// slots, registry); quota exhaustion answers 429 with `Retry-After`.
/// With `"verify": true` the solution is checked by the [`verify`]
/// oracle before it is returned and the response carries
/// `"feasible": true` — an infeasible witness would be a solver bug
/// and answers 500.
///
/// The tenant's solution cache is consulted **before** admission: a
/// hit answers immediately with `"cached": true`, takes no admission
/// slot and wakes no worker. A miss admits, solves the *canonical*
/// instance, memoises it, records it in the persistent store (when
/// configured), and answers with the solution restored to the
/// original instance's scale and numbering.
fn solve(request: &Request, state: &ServiceState) -> Response {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let tenant = match tenant_for(request, &body, state) {
        Ok(tenant) => tenant,
        Err(response) => return response,
    };
    let instance = match instance_from_json(&body) {
        Ok(instance) => instance,
        Err(e) => return error_response(400, "bad-instance", &e.to_string()),
    };
    if let Err(response) = check_task_budget(&instance, state) {
        return response;
    }
    let (solver_name, deadline, check) =
        match (opt_str(&body, "solver"), opt_int(&body, "deadline"), opt_flag(&body, "verify")) {
            (Ok(s), Ok(d), Ok(v)) => (s.unwrap_or("optimal"), d, v),
            (Err(r), _, _) | (_, Err(r), _) | (_, _, Err(r)) => return r,
        };
    // Anonymous requests may still pin a configured registry by name
    // (the pre-token selector); tokened requests already resolved one.
    let batch = if request.header("x-api-token").is_some() {
        tenant.batch()
    } else {
        match select_batch(&body, state) {
            Ok(batch) => batch,
            Err(response) => return response,
        }
    };
    let registry = batch.registry();
    let stats = tenant.stats();
    mst_obs::note_solver(solver_name);
    let cache_span = mst_obs::span(mst_obs::Stage::Cache);
    let canon = CanonicalInstance::of(&instance, solver_name, deadline);
    let key = CacheKey::of(&canon, solver_name);
    if let Some(cached) = tenant.cache().get(&key) {
        stats.cache_hits_total.fetch_add(1, Ordering::Relaxed);
        mst_obs::note_cached(true);
        drop(cache_span);
        return render_solution(canon.restore(&cached), &instance, solver_name, check, true);
    }
    stats.cache_misses_total.fetch_add(1, Ordering::Relaxed);
    mst_obs::note_cached(false);
    drop(cache_span);
    let admit_span = mst_obs::span(mst_obs::Stage::Admit);
    let _slot = match tenant.admit() {
        Ok(slot) => slot,
        Err(e) => return admission_response(tenant, &e),
    };
    drop(admit_span);
    let kernel = match canon.deadline() {
        Some(_) => mst_obs::Kernel::Probe,
        None => mst_obs::Kernel::Solve,
    };
    let solve_span = mst_obs::span(mst_obs::Stage::Solve);
    let started = Instant::now();
    let result = match canon.deadline() {
        Some(t) => registry.solve_by_deadline(solver_name, canon.instance(), t),
        None => registry.solve(solver_name, canon.instance()),
    };
    let elapsed = started.elapsed();
    mst_obs::kernel_observe(kernel, solver_name, elapsed.as_micros() as u64);
    drop(solve_span);
    match result {
        Ok(canonical) => {
            state.metrics.record_solve(1, 0, 0, elapsed);
            stats.record(1, 0, 0);
            tenant.cache().insert(key, canonical.clone());
            append_record(
                state,
                tenant,
                solver_name,
                &canon,
                &canonical,
                elapsed.as_micros() as u64,
            );
            render_solution(canon.restore(&canonical), &instance, solver_name, check, false)
        }
        Err(e) => {
            // Errors are never cached: a transient refusal (or a fixed
            // solver) must not be replayed forever.
            state.metrics.record_solve(0, 1, 0, elapsed);
            stats.record(0, 1, 0);
            solve_error_response(&e)
        }
    }
}

/// Renders a `/solve` response body: the solution, `"cached": true`
/// for cache hits, and the `"feasible"` flag when verification was
/// requested (the oracle runs against the **original** instance, so a
/// mis-restored cached solution would fail here, not pass silently).
fn render_solution(
    solution: Solution,
    instance: &Instance,
    solver_name: &str,
    check: bool,
    cached: bool,
) -> Response {
    let mut reply = match solution_to_json(&solution) {
        Json::Obj(members) => members,
        other => return Response::json(200, other),
    };
    if cached {
        reply.push(("cached".to_string(), Json::Bool(true)));
    }
    if check {
        let _verify_span = mst_obs::span(mst_obs::Stage::Verify);
        let verify_start = Instant::now();
        let report = verify(instance, &solution);
        mst_obs::kernel_observe(
            mst_obs::Kernel::Verify,
            solver_name,
            verify_start.elapsed().as_micros() as u64,
        );
        match report {
            Ok(report) if report.is_feasible() => {
                reply.push(("feasible".to_string(), Json::Bool(true)));
            }
            Ok(report) => {
                return error_response(
                    500,
                    "infeasible-solution",
                    &format!(
                        "solver {solver_name} produced a schedule the oracle rejects ({} violation(s))",
                        report.violations.len()
                    ),
                );
            }
            Err(e) => return solve_error_response(&e),
        }
    }
    Response::json(200, Json::Obj(reply))
}

/// Appends one solved canonical instance to the persistent store (a
/// no-op without `--store`) and bumps the tenant's record gauge.
///
/// **Graceful degradation:** a failing append never fails the solve
/// that produced the record. The failure flips the service's
/// [`StoreHealth`](crate::server::StoreHealth) to degraded — visible in
/// `/healthz` and `/metrics` — and subsequent appends inside the
/// bounded-backoff window are skipped outright (a dead disk must not
/// tax every solve with an I/O timeout). The first probe that succeeds
/// clears the state; records solved while degraded are simply absent
/// from history, which warm start already tolerates.
fn append_record(
    state: &ServiceState,
    tenant: &TenantExec,
    solver_name: &str,
    canon: &CanonicalInstance,
    canonical: &Solution,
    elapsed_us: u64,
) {
    let Some(store) = &state.store else { return };
    let _store_span = mst_obs::span(mst_obs::Stage::Store);
    let record = Record {
        tenant: tenant.policy().name.clone(),
        solver: solver_name.to_string(),
        platform: canon.instance().platform.to_text(),
        tasks: canon.instance().tasks,
        deadline: canon.deadline(),
        canon_hash: canon.hash_hex(),
        makespan: canonical.makespan(),
        scheduled: canonical.n(),
        elapsed_us,
        solution: solution_to_json(canonical),
    };
    if !state.store_health.should_attempt() {
        return;
    }
    match store.append(&record) {
        Ok(()) => {
            state.store_health.record_success();
            tenant.stats().store_records.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => state.store_health.record_failure(),
    }
}

/// `GET /history` — the persistent result store, newest records first.
///
/// Query params: `tenant=` and `solver=` filter by equality, `limit=`
/// bounds the page (default 100). Solutions themselves are not echoed
/// (a history page should stay a page); `POST /solve` the instance
/// again to get one — it will be a cache hit. Servers started without
/// `--store` answer 404 `no-store`.
fn history(request: &Request, state: &ServiceState) -> Response {
    let Some(store) = &state.store else {
        return error_response(
            404,
            "no-store",
            "the server was started without --store; no history is recorded",
        );
    };
    let limit = match request.query_param("limit") {
        None => 100,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return error_response(
                    400,
                    "bad-request",
                    "\"limit\" must be a non-negative integer",
                )
            }
        },
    };
    let records = store.records();
    let page: Vec<Json> = mst_store::query(
        &records,
        request.query_param("tenant"),
        request.query_param("solver"),
        limit,
    )
    .into_iter()
    .map(|r| {
        Json::obj([
            ("tenant", Json::str(r.tenant.clone())),
            ("solver", Json::str(r.solver.clone())),
            ("platform", Json::str(r.platform.clone())),
            ("tasks", Json::int(r.tasks as i64)),
            ("deadline", r.deadline.map(Json::int).unwrap_or(Json::Null)),
            ("canon_hash", Json::str(r.canon_hash.clone())),
            ("makespan", Json::int(r.makespan)),
            ("scheduled", Json::int(r.scheduled as i64)),
            ("elapsed_us", Json::int(r.elapsed_us as i64)),
        ])
    })
    .collect();
    Response::json(
        200,
        Json::obj([
            ("count", Json::int(page.len() as i64)),
            ("total", Json::int(records.len() as i64)),
            ("records", Json::Arr(page)),
        ]),
    )
}

/// Rejects task budgets beyond the configured cap — a bare number in
/// the body must not be able to request unbounded scheduling work.
fn check_task_budget(instance: &Instance, state: &ServiceState) -> Result<(), Response> {
    let cap = state.config.max_tasks_per_instance;
    if instance.tasks > cap {
        return Err(error_response(
            400,
            "too-many-tasks",
            &format!("{} tasks exceed the per-instance cap of {cap}", instance.tasks),
        ));
    }
    Ok(())
}

/// Decodes the `/batch` instance set: either an explicit `"instances"`
/// array or a `"generate"` sweep spec
/// (`{"kind", "count", "size"?, "tasks"?, "profile"?, "seed"?}`).
///
/// The requesting tenant's `max_instances` cap is checked against the
/// *declared* count **before** anything is parsed or generated — a
/// capped tenant must not be able to make the server materialise the
/// full server-wide cap just to be refused.
fn batch_instances(
    body: &Json,
    state: &ServiceState,
    tenant: &TenantExec,
) -> Result<Vec<Instance>, Response> {
    let cap = state.config.max_batch_instances;
    let too_many = |n: usize| {
        error_response(
            400,
            "too-many-instances",
            &format!("{n} instances exceed the per-request cap of {cap}"),
        )
    };
    if let Some(items) = body.get("instances") {
        let items = items
            .as_arr()
            .ok_or_else(|| error_response(400, "bad-request", "\"instances\" must be an array"))?;
        if items.len() > cap {
            return Err(too_many(items.len()));
        }
        tenant.check_instances(items.len()).map_err(|e| admission_response(tenant, &e))?;
        let mut instances = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let instance = instance_from_json(item).map_err(|e| {
                error_response(400, "bad-instance", &format!("instances[{i}]: {e}"))
            })?;
            check_task_budget(&instance, state)?;
            instances.push(instance);
        }
        return Ok(instances);
    }
    let Some(spec) = body.get("generate") else {
        return Err(error_response(
            400,
            "bad-request",
            "body needs either \"instances\" or \"generate\"",
        ));
    };
    let kind_name = opt_str(spec, "kind")?
        .ok_or_else(|| error_response(400, "bad-request", "\"generate.kind\" is required"))?;
    let kind = TopologyKind::ALL.into_iter().find(|k| k.name() == kind_name).ok_or_else(|| {
        error_response(400, "bad-request", &format!("unknown topology {kind_name:?}"))
    })?;
    let count = opt_int(spec, "count")?
        .ok_or_else(|| error_response(400, "bad-request", "\"generate.count\" is required"))?;
    if count == 0 {
        return Err(error_response(400, "bad-request", "\"generate.count\" must be at least 1"));
    }
    if count as usize > cap {
        return Err(too_many(count as usize));
    }
    tenant.check_instances(count as usize).map_err(|e| admission_response(tenant, &e))?;
    let size = opt_int(spec, "size")?.unwrap_or(4).max(1) as usize;
    if size > state.config.max_platform_processors {
        return Err(error_response(
            400,
            "too-many-processors",
            &format!(
                "\"generate.size\" of {size} exceeds the {} processor cap",
                state.config.max_platform_processors
            ),
        ));
    }
    let tasks = opt_int(spec, "tasks")?.unwrap_or(8).max(1) as usize;
    if tasks > state.config.max_tasks_per_instance {
        return Err(error_response(
            400,
            "too-many-tasks",
            &format!(
                "\"generate.tasks\" of {tasks} exceeds the {} task cap",
                state.config.max_tasks_per_instance
            ),
        ));
    }
    let seed0 = opt_int(spec, "seed")?.unwrap_or(0) as u64;
    let profile_name = opt_str(spec, "profile")?.unwrap_or("uniform");
    let profile = HeterogeneityProfile::by_name(profile_name).ok_or_else(|| {
        error_response(400, "bad-request", &format!("unknown profile {profile_name:?}"))
    })?;
    // One shared generator for the whole workspace (`mst_api::fleet`):
    // this spec names the same instance stream here, in `mst batch`
    // and in the benchmark.
    Ok(SweepSpec::new(kind, count as u64)
        .size(size)
        .tasks(tasks)
        .profile(profile)
        .seed(seed0)
        .instances())
}

/// The per-chunk callbacks of [`solve_chunked`]: a client-liveness
/// probe polled between chunks and a result emitter. Both `/batch`
/// paths implement it over the transport's [`StreamWriter`] — the
/// buffered path probes only, the streamed path also renders and
/// writes NDJSON result lines.
trait BatchSink {
    /// Whether the client has abandoned the sweep.
    fn client_gone(&mut self) -> bool;
    /// Hands over one chunk's results; `false` cancels the rest.
    fn emit(&mut self, part: &[Result<Solution, SolveError>]) -> bool;
}

/// The buffered `/batch` sink: probes for disconnects (when the
/// transport gave us a writer at all) and discards chunk results —
/// `solve_chunked` accumulates them for the JSON reply.
struct ProbeOnly<'a> {
    stream: Option<&'a mut (dyn StreamWriter + 'a)>,
}

impl BatchSink for ProbeOnly<'_> {
    fn client_gone(&mut self) -> bool {
        match &mut self.stream {
            Some(stream) => stream.client_gone(),
            None => false,
        }
    }

    fn emit(&mut self, _part: &[Result<Solution, SolveError>]) -> bool {
        true
    }
}

/// The streaming `/batch` sink: renders each chunk's results as
/// `{"index": i, ...}` NDJSON lines and writes them through the
/// transport's [`StreamWriter`]. A failed write means the client is
/// gone — the sweep is cancelled.
struct NdjsonSink<'a> {
    writer: &'a mut (dyn StreamWriter + 'a),
    offset: usize,
    lines: String,
}

impl BatchSink for NdjsonSink<'_> {
    fn client_gone(&mut self) -> bool {
        self.writer.client_gone()
    }

    fn emit(&mut self, part: &[Result<Solution, SolveError>]) -> bool {
        self.lines.clear();
        for result in part {
            let mut members = vec![("index".to_string(), Json::int(self.offset as i64))];
            let rendered = match result {
                Ok(solution) => solution_to_json(solution),
                Err(e) => error_to_json(e),
            };
            match rendered {
                Json::Obj(obj) => members.extend(obj),
                other => members.push(("result".to_string(), other)),
            }
            self.lines.push_str(&Json::Obj(members).to_string());
            self.lines.push('\n');
            self.offset += 1;
        }
        self.writer.chunk(self.lines.as_bytes()).is_ok()
    }
}

/// One `/batch` instance after the cache-planning pass: either already
/// answered from the tenant's solution cache (restored, ready to
/// return) or a miss that still needs its **canonical** instance
/// solved under its own canonical deadline.
enum Planned {
    /// A cache hit, restored to the original instance's scale and
    /// numbering at plan time.
    Hit(Solution),
    /// A miss: the canonical instance to solve, and the key to memoise
    /// the canonical solution under.
    Miss(Box<CanonicalInstance>, CacheKey),
}

/// Canonicalizes every instance of a `/batch` sweep and answers what it
/// can from the tenant's solution cache, counting hits and misses into
/// the tenant's stats. Returns the per-instance plan (input order) and
/// the hit count.
fn plan_batch(
    instances: &[Instance],
    solver_name: &str,
    deadline: Option<mst_platform::Time>,
    tenant: &TenantExec,
) -> (Vec<Planned>, usize) {
    let stats = tenant.stats();
    let mut hits = 0usize;
    let jobs = instances
        .iter()
        .map(|instance| {
            let canon = CanonicalInstance::of(instance, solver_name, deadline);
            let key = CacheKey::of(&canon, solver_name);
            match tenant.cache().get(&key) {
                Some(cached) => {
                    hits += 1;
                    Planned::Hit(canon.restore(&cached))
                }
                None => Planned::Miss(Box::new(canon), key),
            }
        })
        .collect();
    stats.cache_hits_total.fetch_add(hits as u64, Ordering::Relaxed);
    stats.cache_misses_total.fetch_add((instances.len() - hits) as u64, Ordering::Relaxed);
    (jobs, hits)
}

/// The chunk-by-chunk solve loop behind `/batch`: every
/// [`ServeConfig::batch_chunk`](crate::server::ServeConfig) jobs it
/// polls the request's cancel token (deadline budget), probes the
/// sink for client liveness (a disconnected client cancels the rest —
/// an abandoned sweep must stop burning cores) and hands the chunk's
/// results to the sink (`false` from it also cancels). Cache hits in
/// a chunk cost a clone; only the chunk's misses go to the worker
/// pool, each solving its **canonical** instance under its own
/// canonical deadline, memoised and recorded in the persistent store
/// on success, then restored. Once cancelled, the remaining jobs come
/// back as [`SolveError::Cancelled`] without being solved — results
/// stay one per instance, in input order.
#[allow(clippy::too_many_arguments)]
fn solve_chunked(
    engine: &Batch,
    jobs: &[Planned],
    cancel: &CancelToken,
    sink: &mut dyn BatchSink,
    chunk: usize,
    state: &ServiceState,
    tenant: &TenantExec,
    solver_name: &str,
) -> Vec<Result<Solution, SolveError>> {
    let chunk = chunk.max(1);
    let mut results: Vec<Result<Solution, SolveError>> = Vec::with_capacity(jobs.len());
    for slice in jobs.chunks(chunk) {
        if !cancel.is_cancelled() && sink.client_gone() {
            cancel.cancel();
        }
        if cancel.is_cancelled() {
            results.extend((results.len()..jobs.len()).map(|_| Err(SolveError::Cancelled)));
            break;
        }
        let miss_jobs: Vec<(Instance, Option<mst_platform::Time>)> = slice
            .iter()
            .filter_map(|job| match job {
                Planned::Miss(canon, _) => Some((canon.instance().clone(), canon.deadline())),
                Planned::Hit(_) => None,
            })
            .collect();
        let started = Instant::now();
        let solved = if miss_jobs.is_empty() {
            Vec::new()
        } else {
            let _solve_span = mst_obs::span(mst_obs::Stage::Solve);
            engine.solve_each_cancellable(&miss_jobs, cancel)
        };
        let per_miss_us = started.elapsed().as_micros() as u64 / miss_jobs.len().max(1) as u64;
        let mut solved = solved.into_iter();
        let part: Vec<Result<Solution, SolveError>> = slice
            .iter()
            .map(|job| match job {
                Planned::Hit(solution) => Ok(solution.clone()),
                Planned::Miss(canon, key) => {
                    match solved.next().expect("one result per miss job") {
                        Ok(canonical) => {
                            tenant.cache().insert(key.clone(), canonical.clone());
                            append_record(
                                state,
                                tenant,
                                solver_name,
                                canon,
                                &canonical,
                                per_miss_us,
                            );
                            Ok(canon.restore(&canonical))
                        }
                        Err(e) => Err(e),
                    }
                }
            })
            .collect();
        let keep_going = sink.emit(&part);
        results.extend(part);
        if !keep_going {
            cancel.cancel();
        }
    }
    results
}

/// Folds one finished sweep into the global and per-tenant metrics and
/// renders the summary fields **both** `/batch` reply shapes carry —
/// one definition, so the streamed summary line can never drift from
/// the buffered body (the buffered path appends makespan statistics
/// and optional per-instance results on top).
#[allow(clippy::too_many_arguments)]
fn finish_sweep(
    instances: &[Instance],
    results: &[Result<Solution, SolveError>],
    solver_name: &str,
    check: bool,
    cache_hits: usize,
    elapsed: std::time::Duration,
    state: &ServiceState,
    tenant: &TenantExec,
) -> (BatchSummary, usize, Vec<(String, Json)>) {
    let mut summary = BatchSummary::of(results);
    summary.cache_hits = cache_hits;
    // Cache hits ride along as Ok results but no worker solved them:
    // the solve-throughput metrics count only genuine solves (a
    // cancelled sweep may return fewer Ok hits than were planned,
    // hence the saturation).
    state.metrics.record_solve(
        (summary.solved.saturating_sub(cache_hits)) as u64,
        summary.failed as u64,
        summary.cancelled as u64,
        elapsed,
    );
    tenant.stats().record(
        (summary.solved.saturating_sub(cache_hits)) as u64,
        summary.failed as u64,
        summary.cancelled as u64,
    );
    let infeasible = if check {
        let _verify_span = mst_obs::span(mst_obs::Stage::Verify);
        let verify_start = Instant::now();
        let n = count_infeasible(instances, results);
        mst_obs::kernel_observe(
            mst_obs::Kernel::Verify,
            solver_name,
            verify_start.elapsed().as_micros() as u64,
        );
        n
    } else {
        0
    };
    let mut members = vec![
        ("count".to_string(), Json::int(instances.len() as i64)),
        ("solver".to_string(), Json::str(solver_name)),
        ("solved".to_string(), Json::int(summary.solved as i64)),
        ("failed".to_string(), Json::int(summary.failed as i64)),
        ("cancelled".to_string(), Json::int(summary.cancelled as i64)),
        ("cache_hits".to_string(), Json::int(summary.cache_hits as i64)),
        ("complete".to_string(), Json::Bool(summary.cancelled == 0)),
        ("elapsed_secs".to_string(), Json::Num(elapsed.as_secs_f64())),
        ("verified".to_string(), Json::Bool(check)),
    ];
    if check {
        members.push(("infeasible".to_string(), Json::int(infeasible as i64)));
    }
    (summary, infeasible, members)
}

/// Counts solutions the [`verify`] oracle rejects (solver bugs).
fn count_infeasible(instances: &[Instance], results: &[Result<Solution, SolveError>]) -> usize {
    instances
        .iter()
        .zip(results)
        .filter(|(instance, result)| match result {
            Ok(solution) => !matches!(verify(instance, solution), Ok(r) if r.is_feasible()),
            Err(_) => false,
        })
        .count()
}

/// `POST /batch` — a sweep dispatched through the requesting tenant's
/// worker pool under its execution policy.
///
/// Body: `{"instances": [...]} | {"generate": {...}}`, plus `"solver"?`,
/// `"registry"?`, `"deadline"?`, `"verify"?`, `"include_results"?` and
/// `"stream"?`. The response always carries the summary; per-instance
/// solutions ride along only when `"include_results": true` (a
/// 100k-instance sweep should not serialize 100k schedules by
/// accident). With `"stream": true` the per-instance results are
/// instead **streamed** as chunked NDJSON lines while the sweep runs —
/// a large response never materialises in memory, and the summary
/// arrives as the final line. Either way the sweep solves in chunks
/// with cancellation checkpoints: an exhausted per-tenant deadline
/// budget or a disconnected client stops the remaining work within one
/// chunk.
fn batch(
    request: &Request,
    state: &ServiceState,
    stream: Option<&mut dyn StreamWriter>,
) -> ResponseBody {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(response) => return ResponseBody::Full(response),
    };
    let tenant = match tenant_for(request, &body, state) {
        Ok(tenant) => tenant,
        Err(response) => return ResponseBody::Full(response),
    };
    let instances = match batch_instances(&body, state, tenant) {
        Ok(instances) => instances,
        Err(response) => return ResponseBody::Full(response),
    };
    let (solver_name, deadline) = match (opt_str(&body, "solver"), opt_int(&body, "deadline")) {
        (Ok(s), Ok(d)) => (s.unwrap_or("optimal"), d),
        (Err(r), _) | (_, Err(r)) => return ResponseBody::Full(r),
    };
    let (check, include_results, want_stream) = match (
        opt_flag(&body, "verify"),
        opt_flag(&body, "include_results"),
        opt_flag(&body, "stream"),
    ) {
        (Ok(c), Ok(i), Ok(s)) => (c, i, s),
        (Err(r), _, _) | (_, Err(r), _) | (_, _, Err(r)) => return ResponseBody::Full(r),
    };
    // Anonymous requests may still pin a configured registry by name
    // (the pre-token selector); tokened requests already resolved one.
    let tenant_batch = if request.header("x-api-token").is_some() {
        tenant.batch()
    } else {
        match select_batch(&body, state) {
            Ok(batch) => batch,
            Err(response) => return ResponseBody::Full(response),
        }
    };
    // Resolve the name up front so an unknown solver is one 404, not a
    // thousand per-instance errors.
    if let Err(e) = tenant_batch.registry().resolve(solver_name) {
        return ResponseBody::Full(solve_error_response(&e));
    }
    mst_obs::note_solver(solver_name);
    let engine = tenant_batch.clone().with_solver(solver_name);
    // Plan against the tenant's solution cache first: a fully-cached
    // sweep is answered without an admission slot at all, and a mixed
    // one admits for the misses only.
    let cache_span = mst_obs::span(mst_obs::Stage::Cache);
    let (jobs, cache_hits) = plan_batch(&instances, solver_name, deadline, tenant);
    mst_obs::note_cached(!jobs.is_empty() && cache_hits == jobs.len());
    drop(cache_span);
    let admit_span = mst_obs::span(mst_obs::Stage::Admit);
    let _slot = if cache_hits < jobs.len() {
        match tenant.admit() {
            Ok(slot) => Some(slot),
            Err(e) => return ResponseBody::Full(admission_response(tenant, &e)),
        }
    } else {
        None
    };
    drop(admit_span);
    let cancel = tenant.cancel_token();
    let chunk = state.config.batch_chunk;
    let started = Instant::now();

    let mut stream = stream;
    if want_stream {
        if let Some(stream) = stream.take() {
            return stream_batch(
                &engine,
                &instances,
                &jobs,
                cache_hits,
                check,
                &cancel,
                stream,
                chunk,
                state,
                tenant,
                solver_name,
            );
        }
        // No transport to stream over (embedded callers): fall through
        // to the buffered reply with per-instance results included.
    }

    let mut sink = ProbeOnly { stream };
    let results =
        solve_chunked(&engine, &jobs, &cancel, &mut sink, chunk, state, tenant, solver_name);
    let elapsed = started.elapsed();
    let (summary, infeasible, mut reply) =
        finish_sweep(&instances, &results, solver_name, check, cache_hits, elapsed, state, tenant);
    reply.push(("total_tasks".to_string(), Json::int(summary.total_tasks as i64)));
    reply.push(("mean_makespan".to_string(), Json::Num(summary.mean_makespan())));
    reply.push(("max_makespan".to_string(), Json::int(summary.max_makespan)));
    reply.push((
        "instances_per_sec".to_string(),
        Json::Num(instances.len() as f64 / elapsed.as_secs_f64().max(1e-9)),
    ));
    if include_results || want_stream {
        let rendered: Vec<Json> = results
            .iter()
            .map(|r| match r {
                Ok(solution) => solution_to_json(solution),
                Err(e) => error_to_json(e),
            })
            .collect();
        reply.push(("results".to_string(), Json::Arr(rendered)));
    }
    if infeasible > 0 {
        // An oracle-rejected witness is a solver bug: fail the request
        // loudly but keep the diagnostic body.
        reply.insert(
            0,
            (
                "error".to_string(),
                Json::obj([
                    ("kind", Json::str("infeasible-solution")),
                    (
                        "message",
                        Json::str(format!("{infeasible} solution(s) rejected by the oracle")),
                    ),
                ]),
            ),
        );
        return ResponseBody::Full(Response::json(500, Json::Obj(reply)));
    }
    ResponseBody::Full(Response::json(200, Json::Obj(reply)))
}

/// The streamed `/batch` reply: chunked NDJSON, one
/// `{"index": i, ...solution | error}` line per instance as its chunk
/// completes, then one final `{"summary": {...}}` line. A failed write
/// means the client is gone — the remaining sweep is cancelled and the
/// connection dropped.
#[allow(clippy::too_many_arguments)]
fn stream_batch(
    engine: &Batch,
    instances: &[Instance],
    jobs: &[Planned],
    cache_hits: usize,
    check: bool,
    cancel: &CancelToken,
    stream: &mut dyn StreamWriter,
    chunk: usize,
    state: &ServiceState,
    tenant: &TenantExec,
    solver_name: &str,
) -> ResponseBody {
    let started = Instant::now();
    if stream.begin().is_err() {
        return ResponseBody::Streamed; // peer gone before the head
    }
    let mut sink = NdjsonSink { writer: stream, offset: 0, lines: String::new() };
    let results = solve_chunked(engine, jobs, cancel, &mut sink, chunk, state, tenant, solver_name);
    let elapsed = started.elapsed();
    let (_, _, tail) =
        finish_sweep(instances, &results, solver_name, check, cache_hits, elapsed, state, tenant);
    let summary_line = Json::obj([("summary", Json::Obj(tail))]);
    let _ = sink.writer.chunk(format!("{summary_line}\n").as_bytes());
    let _ = sink.writer.end();
    ResponseBody::Streamed
}

/// Required non-negative integer field.
fn req_int(body: &Json, key: &str) -> Result<i64, Response> {
    opt_int(body, key)?
        .ok_or_else(|| error_response(400, "bad-request", &format!("\"{key}\" is required")))
}

/// 404 for a session the requesting tenant does not hold. Deliberately
/// indistinguishable from a never-existing id: another tenant's live
/// session must not be probeable.
fn unknown_session(id: i64) -> Response {
    error_response(404, "unknown-session", &format!("no open session {id} for this tenant"))
}

/// One solve on behalf of a session, with the same cache / admission /
/// store plumbing as `POST /solve`: the tenant's solution cache is
/// consulted first (a hit takes no admission slot), a miss admits,
/// solves the canonical instance, memoises and records it. Returns the
/// restored solution and whether it was a cache hit.
fn session_solve(
    state: &ServiceState,
    tenant: &TenantExec,
    solver_name: &str,
    instance: &Instance,
) -> Result<(Solution, bool), Response> {
    let registry = tenant.batch().registry();
    let stats = tenant.stats();
    mst_obs::note_solver(solver_name);
    let cache_span = mst_obs::span(mst_obs::Stage::Cache);
    let canon = CanonicalInstance::of(instance, solver_name, None);
    let key = CacheKey::of(&canon, solver_name);
    if let Some(cached) = tenant.cache().get(&key) {
        stats.cache_hits_total.fetch_add(1, Ordering::Relaxed);
        mst_obs::note_cached(true);
        return Ok((canon.restore(&cached), true));
    }
    stats.cache_misses_total.fetch_add(1, Ordering::Relaxed);
    mst_obs::note_cached(false);
    drop(cache_span);
    let admit_span = mst_obs::span(mst_obs::Stage::Admit);
    let _slot = tenant.admit().map_err(|e| admission_response(tenant, &e))?;
    drop(admit_span);
    let solve_span = mst_obs::span(mst_obs::Stage::Solve);
    let started = Instant::now();
    let result = registry.solve(solver_name, canon.instance());
    let elapsed = started.elapsed();
    mst_obs::kernel_observe(mst_obs::Kernel::Solve, solver_name, elapsed.as_micros() as u64);
    drop(solve_span);
    match result {
        Ok(canonical) => {
            state.metrics.record_solve(1, 0, 0, elapsed);
            stats.record(1, 0, 0);
            tenant.cache().insert(key, canonical.clone());
            append_record(
                state,
                tenant,
                solver_name,
                &canon,
                &canonical,
                elapsed.as_micros() as u64,
            );
            Ok((canon.restore(&canonical), false))
        }
        Err(e) => {
            state.metrics.record_solve(0, 1, 0, elapsed);
            stats.record(0, 1, 0);
            Err(solve_error_response(&e))
        }
    }
}

/// Renders the session snapshot every `/session` op answers with, plus
/// the op-specific `extra` fields.
fn session_reply(s: &crate::session::Session, extra: Vec<(String, Json)>) -> Response {
    let mut members = vec![
        ("session".to_string(), Json::int(s.id as i64)),
        ("solver".to_string(), Json::str(s.solver.as_str())),
        ("tasks".to_string(), Json::int(s.instance.tasks as i64)),
        ("processors".to_string(), Json::int(s.instance.platform.num_processors() as i64)),
        ("makespan".to_string(), Json::int(s.solution.makespan())),
        ("arrivals".to_string(), Json::int(s.arrivals as i64)),
        ("failures".to_string(), Json::int(s.failures as i64)),
        ("committed".to_string(), Json::int(s.committed as i64)),
    ];
    members.extend(extra);
    Response::json(200, Json::Obj(members))
}

/// `POST /session` — a long-lived **evolving instance** held by the
/// server for the requesting tenant, dispatched on the `"op"` field:
///
/// * `{"op": "create", "platform": <text>, "tasks": N, "solver"?}` —
///   solve and hold; answers the session id;
/// * `{"op": "arrive", "session": id, "tasks": K}` — K more tasks
///   arrive; the grown instance is re-solved **incrementally** through
///   the tenant's solution cache (a re-visited task count is a hit);
/// * `{"op": "fail", "session": id, "processor": p, "at": t}` —
///   processor `p` (1-based, flat order) died at time `t`: the witness
///   is **repaired** ([`mst_api::repair()`]) — its committed prefix is
///   kept, only the surviving suffix re-solves on the degraded
///   platform, and the session *becomes* the degraded platform, so
///   failures compound;
/// * `{"op": "get", "session": id}` — the current snapshot;
/// * `{"op": "close", "session": id}` — release it.
///
/// Sessions are tenant-scoped (another tenant's id answers 404) and
/// the table is bounded (`429 too-many-sessions` beyond
/// [`crate::session::MAX_OPEN_SESSIONS`]).
fn session(request: &Request, state: &ServiceState) -> Response {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let tenant = match tenant_for(request, &body, state) {
        Ok(tenant) => tenant,
        Err(response) => return response,
    };
    let op = match opt_str(&body, "op") {
        Ok(Some(op)) => op,
        Ok(None) => {
            return error_response(
                400,
                "bad-request",
                "\"op\" is required: create | arrive | fail | get | close",
            )
        }
        Err(response) => return response,
    };
    match op {
        "create" => session_create(&body, state, tenant),
        "arrive" => session_arrive(&body, state, tenant),
        "fail" => session_fail(&body, state, tenant),
        "get" => session_get(&body, state, tenant),
        "close" => session_close(&body, state, tenant),
        other => error_response(400, "bad-request", &format!("unknown session op {other:?}")),
    }
}

fn session_create(body: &Json, state: &ServiceState, tenant: &TenantExec) -> Response {
    let instance = match instance_from_json(body) {
        Ok(instance) => instance,
        Err(e) => return error_response(400, "bad-instance", &e.to_string()),
    };
    if let Err(response) = check_task_budget(&instance, state) {
        return response;
    }
    let solver_name = match opt_str(body, "solver") {
        Ok(name) => name.unwrap_or("optimal"),
        Err(response) => return response,
    };
    if let Err(e) = tenant.batch().registry().resolve(solver_name) {
        return solve_error_response(&e);
    }
    let (solution, cached) = match session_solve(state, tenant, solver_name, &instance) {
        Ok(solved) => solved,
        Err(response) => return response,
    };
    let tenant_name = tenant.policy().name.as_str();
    let _session_span = mst_obs::span(mst_obs::Stage::Session);
    let Ok(id) = state.sessions.create(tenant_name, solver_name, instance, solution) else {
        return error_response(
            429,
            "too-many-sessions",
            &format!(
                "the server holds its maximum of {} open sessions; close one and retry",
                crate::session::MAX_OPEN_SESSIONS
            ),
        )
        .with_retry_after(1);
    };
    state
        .sessions
        .with(tenant_name, id, |s| {
            session_reply(s, vec![("cached".to_string(), Json::Bool(cached))])
        })
        .unwrap_or_else(|| unknown_session(id as i64))
}

fn session_arrive(body: &Json, state: &ServiceState, tenant: &TenantExec) -> Response {
    let (id, arriving) = match (req_int(body, "session"), req_int(body, "tasks")) {
        (Ok(id), Ok(k)) => (id, k),
        (Err(r), _) | (_, Err(r)) => return r,
    };
    if arriving < 1 {
        return error_response(400, "bad-request", "\"tasks\" must be at least 1");
    }
    let tenant_name = tenant.policy().name.as_str();
    // Snapshot outside the solve: the table lock must not be held while
    // a worker pool churns.
    let Some((solver, old)) =
        state.sessions.with(tenant_name, id as u64, |s| (s.solver.clone(), s.instance.clone()))
    else {
        return unknown_session(id);
    };
    let grown = Instance::new(old.platform.clone(), old.tasks + arriving as usize);
    if let Err(response) = check_task_budget(&grown, state) {
        return response;
    }
    let (solution, cached) = match session_solve(state, tenant, &solver, &grown) {
        Ok(solved) => solved,
        Err(response) => return response,
    };
    let _session_span = mst_obs::span(mst_obs::Stage::Session);
    state
        .sessions
        .with(tenant_name, id as u64, |s| {
            s.instance = grown.clone();
            s.solution = solution.clone();
            s.arrivals += 1;
            session_reply(s, vec![("cached".to_string(), Json::Bool(cached))])
        })
        .unwrap_or_else(|| unknown_session(id))
}

fn session_fail(body: &Json, state: &ServiceState, tenant: &TenantExec) -> Response {
    let (id, processor, at) =
        match (req_int(body, "session"), req_int(body, "processor"), req_int(body, "at")) {
            (Ok(id), Ok(p), Ok(t)) => (id, p, t),
            (Err(r), _, _) | (_, Err(r), _) | (_, _, Err(r)) => return r,
        };
    let tenant_name = tenant.policy().name.as_str();
    let Some((solver, instance, solution)) = state.sessions.with(tenant_name, id as u64, |s| {
        (s.solver.clone(), s.instance.clone(), s.solution.clone())
    }) else {
        return unknown_session(id);
    };
    let event = FailureEvent { processor: processor as usize, at };
    mst_obs::note_solver(&solver);
    let admit_span = mst_obs::span(mst_obs::Stage::Admit);
    let _slot = match tenant.admit() {
        Ok(slot) => slot,
        Err(e) => return admission_response(tenant, &e),
    };
    drop(admit_span);
    let stats = tenant.stats();
    // The repair span wraps a cache-fronted re-solve, which records
    // its own cache/solve spans; Stage::Repair is therefore excluded
    // from Stage::SEQUENTIAL.
    let repair_span = mst_obs::span(mst_obs::Stage::Repair);
    let started = Instant::now();
    let repaired = mst_api::repair(
        &instance,
        &solution,
        &event,
        tenant.batch().registry(),
        tenant.cache(),
        &solver,
    );
    let elapsed = started.elapsed();
    drop(repair_span);
    match repaired {
        Ok(repaired) => {
            state.metrics.record_solve(1, 0, 0, elapsed);
            stats.record(1, 0, 0);
            if repaired.cache_hit {
                stats.cache_hits_total.fetch_add(1, Ordering::Relaxed);
            } else {
                stats.cache_misses_total.fetch_add(1, Ordering::Relaxed);
            }
            let committed = repaired.committed;
            let remaining = repaired.remaining;
            let cache_hit = repaired.cache_hit;
            let _session_span = mst_obs::span(mst_obs::Stage::Session);
            state
                .sessions
                .with(tenant_name, id as u64, |s| {
                    s.instance = repaired.degraded.clone();
                    s.solution = repaired.solution.clone();
                    s.failures += 1;
                    s.committed += committed as u64;
                    session_reply(
                        s,
                        vec![
                            ("event_committed".to_string(), Json::int(committed as i64)),
                            ("event_remaining".to_string(), Json::int(remaining as i64)),
                            ("cached".to_string(), Json::Bool(cache_hit)),
                        ],
                    )
                })
                .unwrap_or_else(|| unknown_session(id))
        }
        Err(e @ RepairError::BadProcessor { .. }) => {
            error_response(400, "bad-processor", &e.to_string())
        }
        Err(RepairError::NoSurvivors { .. }) => error_response(
            409,
            "no-survivors",
            &format!(
                "losing processor {processor} leaves no platform to repair onto; \
                 the session is unchanged"
            ),
        ),
        Err(RepairError::Solve(e)) => {
            state.metrics.record_solve(0, 1, 0, elapsed);
            stats.record(0, 1, 0);
            solve_error_response(&e)
        }
    }
}

fn session_get(body: &Json, state: &ServiceState, tenant: &TenantExec) -> Response {
    let id = match req_int(body, "session") {
        Ok(id) => id,
        Err(response) => return response,
    };
    let _session_span = mst_obs::span(mst_obs::Stage::Session);
    state
        .sessions
        .with(tenant.policy().name.as_str(), id as u64, |s| session_reply(s, Vec::new()))
        .unwrap_or_else(|| unknown_session(id))
}

fn session_close(body: &Json, state: &ServiceState, tenant: &TenantExec) -> Response {
    let id = match req_int(body, "session") {
        Ok(id) => id,
        Err(response) => return response,
    };
    let _session_span = mst_obs::span(mst_obs::Stage::Session);
    match state.sessions.close(tenant.policy().name.as_str(), id as u64) {
        Some(closed) => session_reply(&closed, vec![("closed".to_string(), Json::Bool(true))]),
        None => unknown_session(id),
    }
}
