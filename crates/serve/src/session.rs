//! Live solve sessions: a tenant's **evolving instance** held by the
//! server across requests.
//!
//! `POST /session` (see [`crate::routes`]) creates a session from an
//! instance, then mutates it in place: task *arrivals* grow the budget
//! and re-solve incrementally (through the tenant's solution cache, so
//! a re-visited task count is a cache hit), and posted *processor
//! failures* run [`mst_api::repair()`] — the committed prefix of the
//! current witness is kept and only the surviving suffix is re-solved
//! on the degraded platform. The session then *is* the degraded
//! platform: subsequent arrivals and failures compound.
//!
//! The table is a plain mutex over a vector: sessions are few (bounded
//! by [`MAX_OPEN_SESSIONS`], answered `429` beyond it) and operations
//! on them are dominated by solving, not lookup.

use mst_api::{Instance, Solution};
use std::sync::Mutex;

/// Most sessions the server will hold open at once, across all
/// tenants. Beyond it, `create` is refused with a `429` — a leaked
/// client loop must not grow server memory without bound.
pub const MAX_OPEN_SESSIONS: usize = 1024;

/// One held session: an instance, its current verified witness, and
/// the running degraded-mode tallies.
#[derive(Debug, Clone)]
pub struct Session {
    /// The table-unique id (`"session"` field of every response).
    pub id: u64,
    /// The owning tenant's policy name; ops on the session from a
    /// different tenant are answered `404` (not `403` — a foreign
    /// session id should not be distinguishable from a dead one).
    pub tenant: String,
    /// The solver name the session re-solves with.
    pub solver: String,
    /// The current instance: platform (possibly degraded) + task budget.
    pub instance: Instance,
    /// The current witness, verified against `instance`.
    pub solution: Solution,
    /// Task arrivals absorbed so far.
    pub arrivals: u64,
    /// Processor failures repaired so far.
    pub failures: u64,
    /// Tasks that were already complete at failure time and survived
    /// repairs (cumulative over all failures).
    pub committed: u64,
}

/// The server-wide session table.
#[derive(Debug, Default)]
pub struct SessionTable {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    next_id: u64,
    open: Vec<Session>,
}

impl SessionTable {
    /// Opens a session, assigning its id. `Err(())` when the table is
    /// full ([`MAX_OPEN_SESSIONS`]).
    #[allow(clippy::result_unit_err)]
    pub fn create(
        &self,
        tenant: &str,
        solver: &str,
        instance: Instance,
        solution: Solution,
    ) -> Result<u64, ()> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.open.len() >= MAX_OPEN_SESSIONS {
            return Err(());
        }
        inner.next_id += 1;
        let id = inner.next_id;
        inner.open.push(Session {
            id,
            tenant: tenant.to_string(),
            solver: solver.to_string(),
            instance,
            solution,
            arrivals: 0,
            failures: 0,
            committed: 0,
        });
        Ok(id)
    }

    /// Runs `f` on the session owned by `tenant` with this id; `None`
    /// when no such session exists (wrong id *or* wrong tenant).
    pub fn with<R>(&self, tenant: &str, id: u64, f: impl FnOnce(&mut Session) -> R) -> Option<R> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.open.iter_mut().find(|s| s.id == id && s.tenant == tenant).map(f)
    }

    /// Closes (removes) the session; returns it when it existed.
    pub fn close(&self, tenant: &str, id: u64) -> Option<Session> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let at = inner.open.iter().position(|s| s.id == id && s.tenant == tenant)?;
        Some(inner.open.remove(at))
    }

    /// Open sessions right now, across all tenants (the `/metrics`
    /// gauge).
    pub fn open_count(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_api::{Platform, Solution, SolverRegistry};

    fn sample() -> (Instance, Solution) {
        let platform = Platform::chain(&[(2, 3), (3, 5)]).unwrap();
        let instance = Instance::new(platform, 5);
        let solution = SolverRegistry::global().solve("optimal", &instance).unwrap();
        (instance, solution)
    }

    #[test]
    fn create_with_close_round_trips_and_scopes_by_tenant() {
        let table = SessionTable::default();
        let (instance, solution) = sample();
        let id = table.create("alpha", "optimal", instance.clone(), solution.clone()).unwrap();
        assert_eq!(table.open_count(), 1);
        assert_eq!(table.with("alpha", id, |s| s.solver.clone()), Some("optimal".to_string()));
        // Another tenant cannot see, mutate or close it.
        assert_eq!(table.with("beta", id, |_| ()), None);
        assert!(table.close("beta", id).is_none());
        let closed = table.close("alpha", id).expect("owner closes");
        assert_eq!(closed.id, id);
        assert_eq!(table.open_count(), 0);
        assert_eq!(table.with("alpha", id, |_| ()), None, "closed sessions are gone");
    }

    #[test]
    fn ids_are_unique_and_the_table_is_bounded() {
        let table = SessionTable::default();
        let (instance, solution) = sample();
        let a = table.create("t", "optimal", instance.clone(), solution.clone()).unwrap();
        let b = table.create("t", "optimal", instance.clone(), solution.clone()).unwrap();
        assert_ne!(a, b);
        for _ in 0..(MAX_OPEN_SESSIONS - 2) {
            table.create("t", "optimal", instance.clone(), solution.clone()).unwrap();
        }
        assert!(table.create("t", "optimal", instance, solution).is_err(), "table is full");
    }
}
