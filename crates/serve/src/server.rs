//! The [`Server`]: bind, shared [`ServiceState`], and the two I/O
//! transports that drive the [`crate::service`] boundary — the default
//! **event-driven** readiness loop ([`crate::event`], Linux) and the
//! legacy **thread-per-connection** loop kept here as the
//! `--io threads` fallback.
//!
//! Architecture (everything `std`, nothing async):
//!
//! * under [`IoModel::Event`] one loop thread owns every socket via
//!   [`mst_net::Poller`]; parked keep-alive connections cost bytes, not
//!   threads, and handlers run on a small dispatch pool;
//! * under [`IoModel::Threads`] the **accept loop** polls a
//!   non-blocking [`TcpListener`] and pushes connections into a
//!   **bounded** queue (`mpsc::sync_channel`); when the queue is full
//!   the connection is answered `503` immediately instead of piling up
//!   — backpressure by refusal, not by buffering; a fixed set of
//!   **connection threads** drains the queue, parses requests
//!   ([`crate::http`]) and routes them ([`crate::routes`]);
//! * either way connections are **persistent** (HTTP/1.1 keep-alive)
//!   up to [`ServeConfig::max_requests_per_connection`], so a client
//!   sweeping many instances pays the TCP handshake once;
//! * **solving** goes through the pooled [`mst_api::Batch`] engine — the
//!   same persistent [`mst_sim::WorkerPool`] the library batch path
//!   uses, sized by [`ServeConfig::threads`] (or the process-wide shared
//!   pool when unset);
//! * **shutdown** is a flag checked every accept-poll tick: set by
//!   [`ServerHandle::shutdown`], or by SIGINT/ctrl-c once
//!   [`install_sigint_handler`] is active. The loop then stops
//!   accepting, drains in-flight work, joins every handler thread
//!   and returns a [`ServeReport`] — no thread is left stuck.

use crate::http::{HttpError, RequestReader, Response};
use crate::routes;
use crate::service::{ResponseBody, StreamWriter};
use mst_api::wire::{solution_from_json, Json};
use mst_api::{Batch, CacheKey, ExecPolicy, RegistrySet, TenantExec};
use mst_sim::{shared_pool, WorkerPool};
use mst_store::{FileStore, StoreBackend};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Which I/O transport drives client connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoModel {
    /// The `mst-net` epoll readiness loop: one loop thread owns all
    /// sockets, handlers run on a dispatch pool, and a parked
    /// keep-alive connection costs bytes instead of a thread. The
    /// default; on platforms without epoll the server silently falls
    /// back to [`IoModel::Threads`].
    #[default]
    Event,
    /// The legacy thread-per-connection loop (`mst serve --io
    /// threads`), kept as a fallback for one release.
    Threads,
}

/// How the service is wired: address, parallelism and safety caps.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:8080` (port 0 picks a free one).
    pub addr: String,
    /// Total solve parallelism. `None` uses the process-wide shared
    /// pool; `Some(n)` gives the server a dedicated
    /// [`WorkerPool::with_parallelism`] pool of `n`.
    pub threads: Option<usize>,
    /// Connection-handler threads (HTTP parsing and routing).
    pub conn_threads: usize,
    /// Pending-connection queue bound; beyond it, new connections get
    /// an immediate `503`.
    pub backlog: usize,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// Largest instance count a single `/batch` request may solve.
    pub max_batch_instances: usize,
    /// Largest task budget a single instance may carry — a bare number
    /// in the body must not be able to request an unbounded amount of
    /// scheduling work.
    pub max_tasks_per_instance: usize,
    /// Largest processor count a `/batch` generator spec may ask for
    /// (explicit platforms are already bounded by
    /// [`ServeConfig::max_body_bytes`], but `"size"` is just a number).
    pub max_platform_processors: usize,
    /// Socket read/write timeout for client connections (applies while
    /// a request is in flight).
    pub io_timeout: Duration,
    /// How long a keep-alive connection may sit **idle** between
    /// requests before the server closes it. Deliberately much shorter
    /// than [`ServeConfig::io_timeout`]: an idle socket occupies a
    /// handler thread, so the worst-case hold per connection is
    /// `max_requests_per_connection × (keep_alive_timeout + request
    /// time)` — a silent peer costs at most one `keep_alive_timeout`.
    pub keep_alive_timeout: Duration,
    /// Requests served over one keep-alive connection before the server
    /// forces `Connection: close` — with
    /// [`ServeConfig::keep_alive_timeout`], bounds how long one client
    /// can hold a handler thread.
    pub max_requests_per_connection: usize,
    /// Instances solved per chunk on the `/batch` path. Chunk
    /// boundaries are the service's cancellation checkpoints: between
    /// chunks the handler polls the request's deadline budget and
    /// probes the client socket, so an abandoned or over-budget sweep
    /// stops within one chunk of work.
    pub batch_chunk: usize,
    /// Config-driven tenants (`mst serve --solvers-config`): the set's
    /// default registry backs anonymous requests; named tenant specs
    /// become per-tenant [`TenantExec`]s routable by `X-Api-Token`
    /// header (and their registries stay selectable per request via
    /// the `"registry"` body field). `None` serves the built-in global
    /// registry with no tenant policies.
    pub registries: Option<RegistrySet>,
    /// Path of the persistent result store (`mst serve --store`). When
    /// set, every solved instance is appended to an [`FileStore`]
    /// record log, `GET /history` serves it, and binding **warm-starts**
    /// each tenant's solution cache from the prior records — a
    /// restarted server answers repeated instances from cache
    /// immediately. `None` serves without persistence.
    pub store: Option<String>,
    /// A pre-built store backend, taking precedence over
    /// [`ServeConfig::store`] when set. This is the injection point for
    /// degraded-mode tests and embedders: hand the server a
    /// [`mst_store::FlakyStore`] (or any custom backend) and watch the
    /// solve path keep serving while appends fail.
    pub store_backend: Option<Arc<dyn StoreBackend>>,
    /// Which I/O transport serves connections.
    pub io: IoModel,
    /// Most connections the event transport holds open at once; beyond
    /// it, new connections get an immediate `503`. (The threaded
    /// transport is bounded by [`ServeConfig::backlog`] plus its
    /// handler threads instead.) The server raises `RLIMIT_NOFILE`
    /// toward this at startup.
    pub max_connections: usize,
    /// Per-connection outbound high-water mark, in bytes, for the
    /// event transport. A streaming handler that outruns its client
    /// blocks once this much output is buffered — backpressure instead
    /// of unbounded server memory.
    pub stream_high_water: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            threads: None,
            conn_threads: 8,
            backlog: 64,
            max_body_bytes: 1024 * 1024,
            max_batch_instances: 100_000,
            max_tasks_per_instance: 1_000_000,
            max_platform_processors: 10_000,
            io_timeout: Duration::from_secs(5),
            keep_alive_timeout: Duration::from_secs(1),
            max_requests_per_connection: 256,
            batch_chunk: 512,
            registries: None,
            store: None,
            store_backend: None,
            io: IoModel::default(),
            max_connections: 10_000,
            stream_high_water: 256 * 1024,
        }
    }
}

/// Live health of the persistent-store write path.
///
/// A failing append must never fail the solve that produced the record:
/// the service flips to **store-degraded** instead — results keep
/// flowing, `/healthz` reports `"store_degraded"`, and the append path
/// retries with bounded exponential backoff (attempts inside the
/// backoff window are skipped outright, so a dead disk cannot add an
/// I/O error's latency to every solve). The first successful append
/// clears the state.
#[derive(Debug, Default)]
pub struct StoreHealth {
    degraded: AtomicBool,
    consecutive_failures: AtomicU64,
    /// Appends that returned an error.
    failures_total: AtomicU64,
    /// Append attempts made while degraded (recovery probes).
    retries_total: AtomicU64,
    /// Times the store came back after being degraded.
    recoveries_total: AtomicU64,
    backoff_until: Mutex<Option<Instant>>,
}

/// Longest the degraded store waits between recovery probes.
const STORE_BACKOFF_CAP: Duration = Duration::from_secs(8);
/// Backoff after the first failure; doubles per consecutive failure.
const STORE_BACKOFF_BASE: Duration = Duration::from_millis(250);

impl StoreHealth {
    /// Whether the append path should try the store right now: always
    /// when healthy; while degraded, only once the current backoff
    /// window has elapsed (such an attempt is counted as a retry).
    pub fn should_attempt(&self) -> bool {
        if !self.degraded.load(Ordering::Relaxed) {
            return true;
        }
        let until = *self.backoff_until.lock().unwrap_or_else(|e| e.into_inner());
        match until {
            Some(until) if Instant::now() < until => false,
            _ => {
                self.retries_total.fetch_add(1, Ordering::Relaxed);
                true
            }
        }
    }

    /// Records a successful append; clears degradation if present.
    pub fn record_success(&self) {
        if self.degraded.swap(false, Ordering::Relaxed) {
            self.recoveries_total.fetch_add(1, Ordering::Relaxed);
        }
        self.consecutive_failures.store(0, Ordering::Relaxed);
        *self.backoff_until.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Records a failed append: enters (or deepens) degradation and arms
    /// the next bounded-backoff window.
    pub fn record_failure(&self) {
        self.failures_total.fetch_add(1, Ordering::Relaxed);
        let streak = self.consecutive_failures.fetch_add(1, Ordering::Relaxed);
        self.degraded.store(true, Ordering::Relaxed);
        let backoff = STORE_BACKOFF_BASE.saturating_mul(1u32 << streak.min(5) as u32);
        let backoff = backoff.min(STORE_BACKOFF_CAP);
        *self.backoff_until.lock().unwrap_or_else(|e| e.into_inner()) =
            Some(Instant::now() + backoff);
    }

    /// Whether the store write path is currently degraded.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Appends that returned an error, lifetime total.
    pub fn failures_total(&self) -> u64 {
        self.failures_total.load(Ordering::Relaxed)
    }

    /// Recovery probes attempted while degraded, lifetime total.
    pub fn retries_total(&self) -> u64 {
        self.retries_total.load(Ordering::Relaxed)
    }

    /// Times the store recovered from degradation, lifetime total.
    pub fn recoveries_total(&self) -> u64 {
        self.recoveries_total.load(Ordering::Relaxed)
    }
}

/// Live request/solve counters, served by `GET /metrics`.
///
/// All counters are monotone atomics; `instances_per_sec` in the
/// endpoint's body is derived as `solved_total / solve_secs_total`
/// (solve wall time only, so idle time does not dilute the number).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted by the listener.
    pub connections_total: AtomicU64,
    /// Connections refused with `503` because the queue was full.
    pub connections_rejected: AtomicU64,
    /// Requests routed (any method, any path).
    pub requests_total: AtomicU64,
    /// Responses with a 4xx/5xx status.
    pub http_errors_total: AtomicU64,
    /// Instances solved successfully (single solves and batch members).
    pub solved_total: AtomicU64,
    /// Instances whose solve returned an error.
    pub failed_total: AtomicU64,
    /// Instances skipped by cancellation (deadline budgets, client
    /// disconnects).
    pub cancelled_total: AtomicU64,
    /// Nanoseconds spent inside `Batch`/solver calls.
    pub solve_ns_total: AtomicU64,
}

impl Metrics {
    /// Records one solving run: `solved`/`failed`/`cancelled` instance
    /// outcomes and the wall time the run took.
    pub fn record_solve(&self, solved: u64, failed: u64, cancelled: u64, elapsed: Duration) {
        self.solved_total.fetch_add(solved, Ordering::Relaxed);
        self.failed_total.fetch_add(failed, Ordering::Relaxed);
        self.cancelled_total.fetch_add(cancelled, Ordering::Relaxed);
        self.solve_ns_total.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Solve throughput so far, in instances per second of solve wall
    /// time (0.0 before the first solve).
    pub fn instances_per_sec(&self) -> f64 {
        let ns = self.solve_ns_total.load(Ordering::Relaxed);
        if ns == 0 {
            return 0.0;
        }
        self.solved_total.load(Ordering::Relaxed) as f64 / (ns as f64 / 1e9)
    }
}

/// Shared service state: the per-tenant execution policies, metrics,
/// caps and the shutdown flag.
pub struct ServiceState {
    /// The **default** tenant's solve engine (anonymous requests) —
    /// kept as a direct field because most requests take it.
    pub batch: Batch,
    /// The default tenant's executable policy (admission, deadline
    /// budget, stats for anonymous traffic).
    default_exec: TenantExec,
    /// Named per-tenant execution policies, routable by `X-Api-Token`
    /// header. Tenants with a `threads` budget solve on their own
    /// dedicated [`WorkerPool`]; the rest share the default pool.
    tenants: Vec<TenantExec>,
    /// The legacy anonymous `"registry"` body selector's engines: each
    /// named tenant's *registry* over the **default** tenant's pool.
    /// Deliberately not the tenant's dedicated pool — an
    /// unauthenticated request must never occupy (or starve) a pool a
    /// tenant paid for with its token, and it runs under the default
    /// tenant's admission policy, so it gets the default tenant's
    /// machine.
    selector_batches: Vec<(String, Batch)>,
    /// The persistent result store (`--store`); `None` when the server
    /// runs without persistence.
    pub store: Option<Arc<dyn StoreBackend>>,
    /// Degradation state of the store write path: a failing append
    /// never fails a solve, it flips this instead.
    pub store_health: StoreHealth,
    /// Live sessions held by `POST /session` tenants.
    pub sessions: crate::session::SessionTable,
    /// Live counters.
    pub metrics: Metrics,
    /// Per-route and per-tenant latency histograms (`/metrics`,
    /// `mst top`).
    pub obs: mst_obs::Obs,
    /// The event transport's poller activity counters; empty under the
    /// threaded transport (set once by the event loop at boot).
    pub poll_stats: std::sync::OnceLock<Arc<mst_net::PollStats>>,
    /// Config snapshot (caps consulted by the routes).
    pub config: ServeConfig,
    /// When the server started (uptime reporting).
    pub started: Instant,
    shutdown: AtomicBool,
}

impl std::fmt::Debug for ServiceState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceState").field("config", &self.config).finish_non_exhaustive()
    }
}

impl ServiceState {
    /// Whether shutdown has been requested (handle or SIGINT).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || mst_net::sigint_received()
    }

    /// The engine an anonymous request resolves against: the default
    /// batch, or the named tenant *registry* over the default pool
    /// (the registry selector pins a solver set, never another
    /// tenant's machine); `None` when the name is not configured (the
    /// routes answer 404 rather than silently falling back).
    pub fn batch_for(&self, registry: Option<&str>) -> Option<&Batch> {
        match registry {
            None => Some(&self.batch),
            Some(name) => self.selector_batches.iter().find(|(n, _)| n == name).map(|(_, b)| b),
        }
    }

    /// The execution policy a request runs under: the default tenant
    /// when no token is presented, the matching named tenant otherwise;
    /// `Err` carries the unmatched token (the routes answer 401 rather
    /// than silently running the request as the default tenant).
    pub fn tenant_for<'t>(&self, token: Option<&'t str>) -> Result<&TenantExec, &'t str> {
        match token {
            None => Ok(&self.default_exec),
            Some(token) => {
                self.tenants.iter().find(|t| t.policy().effective_token() == token).ok_or(token)
            }
        }
    }

    /// The default tenant's executable policy.
    pub fn default_exec(&self) -> &TenantExec {
        &self.default_exec
    }

    /// Every tenant policy: the default first, then the named tenants
    /// in config order (drives the per-tenant `/metrics` section).
    pub fn execs(&self) -> impl Iterator<Item = &TenantExec> {
        std::iter::once(&self.default_exec).chain(self.tenants.iter())
    }

    /// Requests currently admitted across all tenants — the service's
    /// live queue-depth gauge.
    pub fn queue_depth(&self) -> usize {
        self.execs().map(TenantExec::queue_depth).sum()
    }

    /// The configured tenant registry names, in config order.
    pub fn tenant_names(&self) -> Vec<&str> {
        self.tenants.iter().map(|t| t.policy().name.as_str()).collect()
    }
}

/// A clonable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServiceState>,
    addr: SocketAddr,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown: the accept loop stops within one
    /// poll tick, queued connections drain, handler threads join.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
    }

    /// The shared state (metrics inspection in tests and the CLI).
    pub fn state(&self) -> &ServiceState {
        &self.state
    }

    /// The shared state as its `Arc` — what
    /// [`MstService::new`](crate::service::MstService) wants.
    pub fn state_arc(&self) -> &Arc<ServiceState> {
        &self.state
    }
}

/// What a completed [`Server::run`] saw, for operator logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests routed.
    pub requests: u64,
    /// Instances solved.
    pub solved: u64,
}

/// The HTTP front-end: bind, then [`Server::run`].
pub struct Server {
    listener: TcpListener,
    state: Arc<ServiceState>,
    addr: SocketAddr,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the configured address and prepares the solve engine. The
    /// listener is non-blocking — [`Server::run`] polls it so shutdown
    /// requests are honoured within milliseconds.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let addrs: Vec<SocketAddr> = config
            .addr
            .to_socket_addrs()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?
            .collect();
        let listener = TcpListener::bind(&addrs[..])?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let pool = match config.threads {
            Some(threads) => Arc::new(WorkerPool::with_parallelism(threads)),
            None => shared_pool(),
        };
        let (default_exec, tenants) = match &config.registries {
            Some(set) => {
                let default = TenantExec::new(
                    ExecPolicy::from_limits(
                        "default",
                        set.default_registry().clone(),
                        set.default_limits(),
                    ),
                    Arc::clone(&pool),
                );
                let tenants = set
                    .tenants()
                    .map(|(name, registry, limits)| {
                        TenantExec::new(
                            ExecPolicy::from_limits(name, registry.clone(), limits),
                            Arc::clone(&pool),
                        )
                    })
                    .collect();
                (default, tenants)
            }
            None => (
                TenantExec::new(
                    ExecPolicy::new("default", mst_api::SolverRegistry::global().clone()),
                    Arc::clone(&pool),
                ),
                Vec::new(),
            ),
        };
        let batch = default_exec.batch().clone();
        let selector_batches = match &config.registries {
            Some(set) => set
                .tenants()
                .map(|(name, registry, _)| {
                    (
                        name.to_string(),
                        Batch::new(registry.clone()).with_pool(Arc::clone(batch.pool())),
                    )
                })
                .collect(),
            None => Vec::new(),
        };
        let store: Option<Arc<dyn StoreBackend>> = match (&config.store_backend, &config.store) {
            (Some(backend), _) => Some(Arc::clone(backend)),
            (None, Some(path)) => Some(Arc::new(FileStore::open(path)?)),
            (None, None) => None,
        };
        if let Some(store) = &store {
            warm_start(store.as_ref(), &default_exec, &tenants);
        }
        let state = Arc::new(ServiceState {
            batch,
            default_exec,
            tenants,
            selector_batches,
            store,
            store_health: StoreHealth::default(),
            sessions: crate::session::SessionTable::default(),
            metrics: Metrics::default(),
            obs: mst_obs::Obs::new(),
            poll_stats: std::sync::OnceLock::new(),
            config,
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
        });
        Ok(Server { listener, state, addr })
    }

    /// The bound address (resolves a requested port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { state: Arc::clone(&self.state), addr: self.addr }
    }

    /// Serves until shutdown is requested, then drains and joins every
    /// handler thread before returning the lifetime counters. Which
    /// loop runs is [`ServeConfig::io`]; [`IoModel::Event`] falls back
    /// to the threaded loop on platforms without epoll.
    pub fn run(self) -> io::Result<ServeReport> {
        let Server { listener, state, .. } = self;
        match state.config.io {
            #[cfg(target_os = "linux")]
            IoModel::Event => crate::event::run_event(listener, state),
            #[cfg(not(target_os = "linux"))]
            IoModel::Event => run_threads(listener, state),
            IoModel::Threads => run_threads(listener, state),
        }
    }
}

/// The thread-per-connection transport: a bounded queue of accepted
/// sockets drained by [`ServeConfig::conn_threads`] handler threads.
fn run_threads(listener: TcpListener, state: Arc<ServiceState>) -> io::Result<ServeReport> {
    let (queue, rx) = mpsc::sync_channel::<TcpStream>(state.config.backlog);
    let rx = Arc::new(Mutex::new(rx));
    let handlers: Vec<_> = (0..state.config.conn_threads.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("mst-serve-conn".into())
                .spawn(move || loop {
                    // Holding the lock only for the dequeue keeps the
                    // other handlers runnable while this one serves.
                    let next = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                    match next {
                        Ok(stream) => serve_connection(stream, &state),
                        Err(_) => return, // queue closed: shutdown
                    }
                })
                .expect("spawn connection handler")
        })
        .collect();

    while !state.shutdown_requested() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                state.metrics.connections_total.fetch_add(1, Ordering::Relaxed);
                if let Err(mpsc::TrySendError::Full(mut stream)) = queue.try_send(stream) {
                    // Queue full: refuse loudly rather than buffer —
                    // structured body plus Retry-After, so clients
                    // can tell a transient overload from a failure.
                    state.metrics.connections_rejected.fetch_add(1, Ordering::Relaxed);
                    let _ = error_body(503, "overloaded", "connection queue is full; retry")
                        .with_retry_after(1)
                        .write_to(&mut stream);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                // Listener failure: shut down cleanly rather than spin.
                drop(queue);
                for handle in handlers {
                    let _ = handle.join();
                }
                return Err(e);
            }
        }
    }

    // Graceful exit: close the queue (handlers finish in-flight and
    // queued requests, then see the hangup) and join them all.
    drop(queue);
    for handle in handlers {
        handle.join().expect("connection handler exits cleanly");
    }
    Ok(ServeReport {
        connections: state.metrics.connections_total.load(Ordering::Relaxed),
        requests: state.metrics.requests_total.load(Ordering::Relaxed),
        solved: state.metrics.solved_total.load(Ordering::Relaxed),
    })
}

/// Preloads every tenant's solution cache from the persistent store's
/// records, so a restarted server answers repeated instances from cache
/// on its **first** request. Records are replayed oldest-first (the
/// store's order), so when a cache is smaller than the history its LRU
/// keeps the newest entries. Records for tenants that no longer exist
/// in the config, or with undecodable payloads (a store written by a
/// newer build), are skipped — warm start is best-effort by design.
fn warm_start(store: &dyn StoreBackend, default_exec: &TenantExec, tenants: &[TenantExec]) {
    for record in store.records() {
        let tenant = if record.tenant == default_exec.policy().name {
            default_exec
        } else {
            match tenants.iter().find(|t| t.policy().name == record.tenant) {
                Some(tenant) => tenant,
                None => continue,
            }
        };
        tenant.stats().store_records.fetch_add(1, Ordering::Relaxed);
        let Ok(hash) = u128::from_str_radix(&record.canon_hash, 16) else { continue };
        let Ok(solution) = solution_from_json(&record.solution) else { continue };
        tenant.cache().insert(
            CacheKey { hash, solver: record.solver.clone(), deadline: record.deadline },
            solution,
        );
    }
}

/// Serves one connection: parse, route, respond — repeatedly, honouring
/// HTTP keep-alive up to the configured requests-per-connection bound.
/// A panic inside routing (a solver bug) is caught here so it costs one
/// response (and the connection), not a handler thread.
fn serve_connection(mut stream: TcpStream, state: &ServiceState) {
    // The listener is non-blocking; on BSD-derived platforms accepted
    // sockets inherit that flag (Linux clears it), which would turn the
    // blocking reads below into instant WouldBlock/408s.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(state.config.io_timeout));
    let _ = stream.set_write_timeout(Some(state.config.io_timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = RequestReader::new();
    let max_requests = state.config.max_requests_per_connection.max(1);
    for served in 0..max_requests {
        // Waiting for the *next* request on an idle keep-alive
        // connection uses the short keep-alive timeout, so a silent
        // peer cannot pin this handler thread for a full io_timeout per
        // request slot; the first request and pipelined follow-ups get
        // the ordinary io_timeout.
        let idle = served > 0 && !reader.has_buffered();
        let _ = stream.set_read_timeout(Some(if idle {
            state.config.keep_alive_timeout
        } else {
            state.config.io_timeout
        }));
        let mut traced: Option<(u64, u64, mst_obs::Notes, String)> = None;
        let (response, keep_alive) =
            match reader.read_request(&mut stream, state.config.max_body_bytes) {
                Ok(request) => {
                    // The request became a trace when its first byte
                    // landed; the Parse span covers read + parse, the
                    // Queue span the (inline) handoff to routing.
                    let now = mst_obs::now_ns();
                    let start_ns = reader.last_started_ns().unwrap_or(now);
                    let trace = mst_obs::begin_trace();
                    mst_obs::record_span(
                        trace,
                        mst_obs::Stage::Parse,
                        start_ns,
                        now.saturating_sub(start_ns),
                    );
                    let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let _scope = mst_obs::enter_trace(trace);
                        mst_obs::record_span(
                            trace,
                            mst_obs::Stage::Queue,
                            now,
                            mst_obs::now_ns().saturating_sub(now),
                        );
                        let mut writer = TcpStreamWriter { stream: &mut stream };
                        routes::route_on(&request, state, Some(&mut writer))
                    }));
                    // Handler annotations stay on this thread; harvest
                    // them before the next request overwrites them.
                    let notes = mst_obs::take_notes();
                    let route = routes::route_label(&request.method, &request.path).to_string();
                    match routed {
                        // The client may ask to keep the connection, but
                        // the server bounds it and closes on shutdown.
                        Ok(ResponseBody::Full(response)) => {
                            let keep = request.keep_alive
                                && served + 1 < max_requests
                                && !state.shutdown_requested();
                            traced = Some((trace, start_ns, notes, route));
                            (response.with_trace_id(trace), keep)
                        }
                        // The handler streamed its (chunked) response
                        // directly; streamed replies always close.
                        Ok(ResponseBody::Streamed) => {
                            finish_request(state, trace, start_ns, 200, notes, &route);
                            return;
                        }
                        Err(_) => {
                            traced = Some((trace, start_ns, notes, route));
                            (
                                error_body(
                                    500,
                                    "internal-error",
                                    "request handler panicked; see server logs",
                                )
                                .with_trace_id(trace),
                                false,
                            )
                        }
                    }
                }
                // A connection that never sent a byte (port scanners, load
                // balancer liveness probes) is not a request; neither is a
                // keep-alive client hanging up — or idling out — between
                // requests. No counters, no response to a gone peer.
                Err(HttpError::Disconnected) => return,
                Err(HttpError::Timeout) if served > 0 && !reader.has_buffered() => return,
                Err(e) => {
                    state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                    (error_body(e.status(), "bad-request", &e.message()), false)
                }
            };
        if response.status >= 400 {
            state.metrics.http_errors_total.fetch_add(1, Ordering::Relaxed);
        }
        let write_start = mst_obs::now_ns();
        let write_ok = response.write_with_connection(&mut stream, keep_alive).is_ok();
        if let Some((trace, start_ns, notes, route)) = traced {
            mst_obs::record_span(
                trace,
                mst_obs::Stage::Write,
                write_start,
                mst_obs::now_ns().saturating_sub(write_start),
            );
            finish_request(state, trace, start_ns, response.status, notes, &route);
        }
        if !write_ok || !keep_alive {
            return;
        }
    }
}

/// Completes a request's observability bookkeeping: latency histograms
/// (route + tenant, µs) and the trace table's finish record.
pub(crate) fn finish_request(
    state: &ServiceState,
    trace: u64,
    start_ns: u64,
    status: u16,
    notes: mst_obs::Notes,
    route: &str,
) {
    let total_ns = mst_obs::now_ns().saturating_sub(start_ns);
    let us = total_ns / 1_000;
    state.obs.observe_route(route, us);
    state.obs.observe_tenant(notes.tenant.as_deref().unwrap_or("default"), us);
    mst_obs::finish_trace(mst_obs::TraceMeta {
        id: trace,
        route: route.to_string(),
        status,
        start_ns,
        total_ns,
        notes,
    });
}

/// The threaded transport's [`StreamWriter`]: chunked NDJSON framing
/// written straight to the connection's socket, with the disconnect
/// probe peeking the same socket between chunks of work.
struct TcpStreamWriter<'a> {
    stream: &'a mut TcpStream,
}

impl StreamWriter for TcpStreamWriter<'_> {
    fn client_gone(&mut self) -> bool {
        client_disconnected(self.stream)
    }

    fn begin(&mut self) -> io::Result<()> {
        self.stream.write_all(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
              Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        )?;
        self.stream.flush()
    }

    fn chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        if bytes.is_empty() {
            // An empty chunk would terminate the chunked body.
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", bytes.len())?;
        self.stream.write_all(bytes)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    fn end(&mut self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// Whether the peer of `stream` is gone: a non-blocking `peek` sees an
/// orderly shutdown (`Ok(0)`) or a hard error; pipelined bytes or a
/// clean `WouldBlock` mean the client is still there. The probe never
/// consumes request bytes.
///
/// Policy note: TCP cannot distinguish a closed connection from a
/// half-close (`shutdown(SHUT_WR)`) — both deliver FIN. This service
/// deliberately reads FIN as *abandoned*: a dropped `/batch` must stop
/// burning cores, which matters more than supporting clients that
/// half-close while still expecting a full sweep. Clients must keep
/// their write side open until the response arrives.
pub(crate) fn client_disconnected(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut byte = [0u8; 1];
    let gone = match stream.peek(&mut byte) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    let _ = stream.set_nonblocking(false);
    gone
}

/// A structured `{"error": {"kind", "message"}}` response.
pub(crate) fn error_body(status: u16, kind: &str, message: &str) -> Response {
    Response::json(
        status,
        Json::obj([(
            "error",
            Json::obj([("kind", Json::str(kind)), ("message", Json::str(message))]),
        )]),
    )
}

/// Installs a SIGINT (ctrl-c) handler that gracefully stops every
/// running [`Server`] in the process. Call once before [`Server::run`];
/// a no-op on non-unix targets. The libc registration itself lives in
/// [`mst_net::signal`] — this crate is `#![forbid(unsafe_code)]`.
pub use mst_net::install_sigint_handler;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    fn request(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> String {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        request(addr, &raw)
    }

    fn healthz(addr: SocketAddr) -> String {
        request(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
    }

    #[test]
    fn binds_serves_and_shuts_down_cleanly() {
        let server =
            Server::bind(ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() })
                .expect("bind");
        let handle = server.handle();
        let addr = server.addr();
        let runner = std::thread::spawn(move || server.run().expect("run"));

        let health = request(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        assert!(health.contains("Connection: close"), "{health}");

        handle.shutdown();
        let report = runner.join().expect("runner joins");
        assert_eq!(report.connections, 1);
        assert_eq!(report.requests, 1);
    }

    #[test]
    fn keep_alive_connections_serve_multiple_requests() {
        let server =
            Server::bind(ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() })
                .expect("bind");
        let handle = server.handle();
        let addr = server.addr();
        let runner = std::thread::spawn(move || server.run().expect("run"));

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let read_one = |stream: &mut TcpStream| -> String {
            // Read exactly one response: headers, then Content-Length.
            let mut bytes = Vec::new();
            let mut byte = [0u8; 1];
            while !bytes.ends_with(b"\r\n\r\n") {
                stream.read_exact(&mut byte).expect("response head");
                bytes.push(byte[0]);
            }
            let head = String::from_utf8_lossy(&bytes).to_string();
            let length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .expect("length header")
                .trim()
                .parse()
                .unwrap();
            let mut body = vec![0u8; length];
            stream.read_exact(&mut body).expect("response body");
            head + &String::from_utf8_lossy(&body)
        };

        // Two requests on one connection; the first stays open.
        stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let first = read_one(&mut stream);
        assert!(first.contains("Connection: keep-alive"), "{first}");
        assert!(first.contains("\"status\":\"ok\""), "{first}");
        stream.write_all(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let second = read_one(&mut stream);
        assert!(second.contains("Connection: close"), "{second}");
        assert!(second.contains("\"requests_total\":2"), "{second}");

        handle.shutdown();
        let report = runner.join().expect("runner joins");
        assert_eq!(report.connections, 1, "one connection carried both requests");
        assert_eq!(report.requests, 2);
    }

    #[test]
    fn idle_keep_alive_connections_close_on_the_short_timeout() {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            keep_alive_timeout: Duration::from_millis(100),
            io_timeout: Duration::from_secs(10),
            ..ServeConfig::default()
        })
        .expect("bind");
        let handle = server.handle();
        let addr = server.addr();
        let runner = std::thread::spawn(move || server.run().expect("run"));

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let started = Instant::now();
        // One response arrives, then the server closes the idle
        // connection after keep_alive_timeout — far sooner than the
        // 10s io_timeout a silent peer used to be able to occupy.
        let mut all = String::new();
        stream.read_to_string(&mut all).expect("EOF when the server closes");
        assert!(all.contains("Connection: keep-alive"), "{all}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "idle close took {:?}; the keep-alive timeout did not apply",
            started.elapsed()
        );

        handle.shutdown();
        let report = runner.join().expect("runner joins");
        assert_eq!(report.requests, 1);
    }

    #[test]
    fn requests_per_connection_bound_forces_close() {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_requests_per_connection: 2,
            ..ServeConfig::default()
        })
        .expect("bind");
        let handle = server.handle();
        let addr = server.addr();
        let runner = std::thread::spawn(move || server.run().expect("run"));

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // Pipeline three keep-alive requests: the second response closes
        // the connection (bound reached), the third is never served.
        stream
            .write_all(
                b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n",
            )
            .unwrap();
        let mut all = String::new();
        stream.read_to_string(&mut all).unwrap();
        assert_eq!(all.matches("HTTP/1.1 200 OK").count(), 2, "{all}");
        assert!(all.contains("Connection: keep-alive"), "{all}");
        assert!(all.contains("Connection: close"), "{all}");

        handle.shutdown();
        let report = runner.join().expect("runner joins");
        assert_eq!(report.requests, 2);
    }

    #[test]
    fn dedicated_thread_pools_are_honoured() {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: Some(3),
            ..ServeConfig::default()
        })
        .expect("bind");
        assert_eq!(server.handle().state().batch.pool().workers(), 2);
        // Unset threads share the process-wide pool.
        let shared =
            Server::bind(ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() })
                .expect("bind");
        assert!(Arc::ptr_eq(shared.handle().state().batch.pool(), &mst_sim::shared_pool()));
    }

    #[test]
    fn anonymous_registry_selection_never_borrows_a_tenant_pool() {
        // The legacy "registry" body selector pins a solver set; it
        // must NOT hand an unauthenticated request a tenant's paid-for
        // dedicated pool (nor bypass that tenant's policy).
        let registries = mst_api::RegistrySet::parse(
            r#"{"registries": {"vip": {"threads": 2, "only": ["optimal"]}}}"#,
        )
        .unwrap();
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            registries: Some(registries),
            ..ServeConfig::default()
        })
        .expect("bind");
        let state = server.handle();
        let state = state.state();
        let selector = state.batch_for(Some("vip")).expect("configured name resolves");
        let tenant = state.tenant_for(Some("vip")).expect("token routes");
        assert!(
            Arc::ptr_eq(selector.pool(), state.batch.pool()),
            "the selector engine runs on the default tenant's pool"
        );
        assert!(
            !Arc::ptr_eq(selector.pool(), tenant.batch().pool()),
            "the tenant's dedicated pool stays its own"
        );
        // The solver *set* is still the tenant's.
        assert_eq!(selector.registry().names(), vec!["optimal"]);
        assert!(state.batch_for(Some("nope")).is_none());
    }

    #[test]
    fn store_health_backoff_skips_attempts_then_recovers() {
        let health = StoreHealth::default();
        assert!(health.should_attempt(), "a healthy store is always attempted");
        health.record_failure();
        assert!(health.is_degraded());
        assert_eq!(health.failures_total(), 1);
        assert!(!health.should_attempt(), "inside the armed backoff window");
        std::thread::sleep(Duration::from_millis(300));
        assert!(health.should_attempt(), "window elapsed: a recovery probe is allowed");
        assert_eq!(health.retries_total(), 1);
        health.record_success();
        assert!(!health.is_degraded());
        assert_eq!(health.recoveries_total(), 1);
        assert!(health.should_attempt());
    }

    #[test]
    fn a_failing_store_degrades_the_service_instead_of_failing_solves() {
        let flaky = Arc::new(mst_store::FlakyStore::new(Arc::new(mst_store::MemoryStore::new())));
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            store_backend: Some(flaky.clone() as Arc<dyn StoreBackend>),
            ..ServeConfig::default()
        })
        .expect("bind");
        let handle = server.handle();
        let addr = server.addr();
        let runner = std::thread::spawn(move || server.run().expect("run"));

        // Healthy: a solve lands one record.
        let ok = post(addr, "/solve", r#"{"platform": "chain\n2 3\n3 5\n", "tasks": 5}"#);
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        assert_eq!(flaky.len(), 1);
        assert!(healthz(addr).contains("\"status\":\"ok\""));

        // Break the store: solves keep answering 200, health flips.
        flaky.set_failing(true);
        let degraded = post(addr, "/solve", r#"{"platform": "chain\n2 3\n3 5\n", "tasks": 6}"#);
        assert!(degraded.starts_with("HTTP/1.1 200"), "a dead store must not fail the solve");
        let health = healthz(addr);
        assert!(health.contains("\"status\":\"store_degraded\""), "{health}");
        assert!(health.contains("\"store_degraded\":true"), "{health}");
        assert!(handle.state().store_health.is_degraded());
        assert!(flaky.failed_appends() >= 1);

        // Heal the store: within a few backoff windows a probe append
        // succeeds and the service recovers on its own.
        flaky.set_failing(false);
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut tasks = 7usize;
        loop {
            std::thread::sleep(Duration::from_millis(150));
            let body = format!(r#"{{"platform": "chain\n2 3\n3 5\n", "tasks": {tasks}}}"#);
            let reply = post(addr, "/solve", &body);
            assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
            tasks += 1;
            let health = healthz(addr);
            if health.contains("\"status\":\"ok\"") {
                break;
            }
            assert!(Instant::now() < deadline, "store never recovered: {health}");
        }
        assert!(flaky.len() >= 2, "post-recovery solves append again");
        assert_eq!(handle.state().store_health.recoveries_total(), 1);

        handle.shutdown();
        runner.join().expect("runner joins");
    }

    #[test]
    fn sessions_absorb_arrivals_and_repair_processor_failures() {
        let server =
            Server::bind(ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() })
                .expect("bind");
        let handle = server.handle();
        let addr = server.addr();
        let runner = std::thread::spawn(move || server.run().expect("run"));

        let created = post(
            addr,
            "/session",
            r#"{"op": "create", "platform": "chain\n2 3\n3 5\n", "tasks": 5, "solver": "optimal"}"#,
        );
        assert!(created.starts_with("HTTP/1.1 200"), "{created}");
        assert!(created.contains("\"session\":1"), "{created}");
        assert!(created.contains("\"processors\":2"), "{created}");
        assert!(healthz(addr).contains("\"sessions_open\":1"));

        // Three more tasks arrive: the held instance grows and re-solves.
        let grown = post(addr, "/session", r#"{"op": "arrive", "session": 1, "tasks": 3}"#);
        assert!(grown.starts_with("HTTP/1.1 200"), "{grown}");
        assert!(grown.contains("\"tasks\":8"), "{grown}");
        assert!(grown.contains("\"arrivals\":1"), "{grown}");

        // Processor 2 dies at t=0: the schedule is repaired onto the
        // surviving single-processor chain and the session becomes it.
        let repaired =
            post(addr, "/session", r#"{"op": "fail", "session": 1, "processor": 2, "at": 0}"#);
        assert!(repaired.starts_with("HTTP/1.1 200"), "{repaired}");
        assert!(repaired.contains("\"processors\":1"), "{repaired}");
        assert!(repaired.contains("\"failures\":1"), "{repaired}");
        assert!(repaired.contains("\"event_remaining\":8"), "{repaired}");

        // Snapshot, close, and a closed session is gone.
        let got = post(addr, "/session", r#"{"op": "get", "session": 1}"#);
        assert!(got.contains("\"failures\":1"), "{got}");
        let closed = post(addr, "/session", r#"{"op": "close", "session": 1}"#);
        assert!(closed.contains("\"closed\":true"), "{closed}");
        let gone = post(addr, "/session", r#"{"op": "get", "session": 1}"#);
        assert!(gone.starts_with("HTTP/1.1 404"), "{gone}");
        assert!(healthz(addr).contains("\"sessions_open\":0"));

        handle.shutdown();
        runner.join().expect("runner joins");
    }

    #[test]
    fn metrics_throughput_is_zero_before_any_solve() {
        let metrics = Metrics::default();
        assert_eq!(metrics.instances_per_sec(), 0.0);
        metrics.record_solve(100, 0, 0, Duration::from_millis(10));
        assert!(metrics.instances_per_sec() > 0.0);
    }
}
