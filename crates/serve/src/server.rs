//! The [`Server`]: a bounded accept loop on `std::net` feeding handler
//! threads, with live metrics and graceful shutdown.
//!
//! Architecture (everything `std`, nothing async):
//!
//! * the **accept loop** polls a non-blocking [`TcpListener`] and pushes
//!   connections into a **bounded** queue (`mpsc::sync_channel`); when
//!   the queue is full the connection is answered `503` immediately
//!   instead of piling up — backpressure by refusal, not by buffering;
//! * a fixed set of **connection threads** drains the queue, parses one
//!   request per connection ([`crate::http`]) and routes it
//!   ([`crate::routes`]);
//! * **solving** goes through the pooled [`mst_api::Batch`] engine — the
//!   same persistent [`mst_sim::WorkerPool`] the library batch path
//!   uses, sized by [`ServeConfig::threads`] (or the process-wide shared
//!   pool when unset);
//! * **shutdown** is a flag checked every accept-poll tick: set by
//!   [`ServerHandle::shutdown`], or by SIGINT/ctrl-c once
//!   [`install_sigint_handler`] is active. The loop then stops
//!   accepting, drains queued connections, joins every handler thread
//!   and returns a [`ServeReport`] — no thread is left stuck.

use crate::http::{HttpError, Response};
use crate::routes;
use mst_api::wire::Json;
use mst_api::Batch;
use mst_sim::WorkerPool;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How the service is wired: address, parallelism and safety caps.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:8080` (port 0 picks a free one).
    pub addr: String,
    /// Total solve parallelism. `None` uses the process-wide shared
    /// pool; `Some(n)` gives the server a dedicated
    /// [`WorkerPool::with_parallelism`] pool of `n`.
    pub threads: Option<usize>,
    /// Connection-handler threads (HTTP parsing and routing).
    pub conn_threads: usize,
    /// Pending-connection queue bound; beyond it, new connections get
    /// an immediate `503`.
    pub backlog: usize,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// Largest instance count a single `/batch` request may solve.
    pub max_batch_instances: usize,
    /// Largest task budget a single instance may carry — a bare number
    /// in the body must not be able to request an unbounded amount of
    /// scheduling work.
    pub max_tasks_per_instance: usize,
    /// Largest processor count a `/batch` generator spec may ask for
    /// (explicit platforms are already bounded by
    /// [`ServeConfig::max_body_bytes`], but `"size"` is just a number).
    pub max_platform_processors: usize,
    /// Socket read/write timeout for client connections.
    pub io_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            threads: None,
            conn_threads: 8,
            backlog: 64,
            max_body_bytes: 1024 * 1024,
            max_batch_instances: 100_000,
            max_tasks_per_instance: 1_000_000,
            max_platform_processors: 10_000,
            io_timeout: Duration::from_secs(5),
        }
    }
}

/// Live request/solve counters, served by `GET /metrics`.
///
/// All counters are monotone atomics; `instances_per_sec` in the
/// endpoint's body is derived as `solved_total / solve_secs_total`
/// (solve wall time only, so idle time does not dilute the number).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted by the listener.
    pub connections_total: AtomicU64,
    /// Connections refused with `503` because the queue was full.
    pub connections_rejected: AtomicU64,
    /// Requests routed (any method, any path).
    pub requests_total: AtomicU64,
    /// Responses with a 4xx/5xx status.
    pub http_errors_total: AtomicU64,
    /// Instances solved successfully (single solves and batch members).
    pub solved_total: AtomicU64,
    /// Instances whose solve returned an error.
    pub failed_total: AtomicU64,
    /// Nanoseconds spent inside `Batch`/solver calls.
    pub solve_ns_total: AtomicU64,
}

impl Metrics {
    /// Records one solving run: `solved`/`failed` instance outcomes and
    /// the wall time the run took.
    pub fn record_solve(&self, solved: u64, failed: u64, elapsed: Duration) {
        self.solved_total.fetch_add(solved, Ordering::Relaxed);
        self.failed_total.fetch_add(failed, Ordering::Relaxed);
        self.solve_ns_total.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Solve throughput so far, in instances per second of solve wall
    /// time (0.0 before the first solve).
    pub fn instances_per_sec(&self) -> f64 {
        let ns = self.solve_ns_total.load(Ordering::Relaxed);
        if ns == 0 {
            return 0.0;
        }
        self.solved_total.load(Ordering::Relaxed) as f64 / (ns as f64 / 1e9)
    }
}

/// Shared service state: the pooled batch engine, metrics, caps and the
/// shutdown flag.
pub struct ServiceState {
    /// The pooled solve engine (registry + worker pool).
    pub batch: Batch,
    /// Live counters.
    pub metrics: Metrics,
    /// Config snapshot (caps consulted by the routes).
    pub config: ServeConfig,
    /// When the server started (uptime reporting).
    pub started: Instant,
    shutdown: AtomicBool,
}

impl ServiceState {
    /// Whether shutdown has been requested (handle or SIGINT).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || SIGINT_RECEIVED.load(Ordering::Relaxed)
    }
}

/// A clonable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServiceState>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown: the accept loop stops within one
    /// poll tick, queued connections drain, handler threads join.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
    }

    /// The shared state (metrics inspection in tests and the CLI).
    pub fn state(&self) -> &ServiceState {
        &self.state
    }
}

/// What a completed [`Server::run`] saw, for operator logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests routed.
    pub requests: u64,
    /// Instances solved.
    pub solved: u64,
}

/// The HTTP front-end: bind, then [`Server::run`].
pub struct Server {
    listener: TcpListener,
    state: Arc<ServiceState>,
    addr: SocketAddr,
}

impl Server {
    /// Binds the configured address and prepares the solve engine. The
    /// listener is non-blocking — [`Server::run`] polls it so shutdown
    /// requests are honoured within milliseconds.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let addrs: Vec<SocketAddr> = config
            .addr
            .to_socket_addrs()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?
            .collect();
        let listener = TcpListener::bind(&addrs[..])?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let batch = match config.threads {
            Some(threads) => {
                Batch::default().with_pool(Arc::new(WorkerPool::with_parallelism(threads)))
            }
            None => Batch::default(),
        };
        let state = Arc::new(ServiceState {
            batch,
            metrics: Metrics::default(),
            config,
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
        });
        Ok(Server { listener, state, addr })
    }

    /// The bound address (resolves a requested port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { state: Arc::clone(&self.state), addr: self.addr }
    }

    /// Serves until shutdown is requested, then drains and joins every
    /// handler thread before returning the lifetime counters.
    pub fn run(self) -> io::Result<ServeReport> {
        let Server { listener, state, .. } = self;
        let (queue, rx) = mpsc::sync_channel::<TcpStream>(state.config.backlog);
        let rx = Arc::new(Mutex::new(rx));
        let handlers: Vec<_> = (0..state.config.conn_threads.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name("mst-serve-conn".into())
                    .spawn(move || loop {
                        // Holding the lock only for the dequeue keeps the
                        // other handlers runnable while this one serves.
                        let next = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                        match next {
                            Ok(stream) => serve_connection(stream, &state),
                            Err(_) => return, // queue closed: shutdown
                        }
                    })
                    .expect("spawn connection handler")
            })
            .collect();

        while !state.shutdown_requested() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    state.metrics.connections_total.fetch_add(1, Ordering::Relaxed);
                    if let Err(mpsc::TrySendError::Full(mut stream)) = queue.try_send(stream) {
                        // Queue full: refuse loudly rather than buffer.
                        state.metrics.connections_rejected.fetch_add(1, Ordering::Relaxed);
                        let _ = error_body(503, "overloaded", "connection queue is full; retry")
                            .write_to(&mut stream);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // Listener failure: shut down cleanly rather than spin.
                    drop(queue);
                    for handle in handlers {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }

        // Graceful exit: close the queue (handlers finish in-flight and
        // queued requests, then see the hangup) and join them all.
        drop(queue);
        for handle in handlers {
            handle.join().expect("connection handler exits cleanly");
        }
        Ok(ServeReport {
            connections: state.metrics.connections_total.load(Ordering::Relaxed),
            requests: state.metrics.requests_total.load(Ordering::Relaxed),
            solved: state.metrics.solved_total.load(Ordering::Relaxed),
        })
    }
}

/// Serves one connection: parse, route, respond, close. A panic inside
/// routing (a solver bug) is caught here so it costs one response, not
/// a handler thread.
fn serve_connection(mut stream: TcpStream, state: &ServiceState) {
    // The listener is non-blocking; on BSD-derived platforms accepted
    // sockets inherit that flag (Linux clears it), which would turn the
    // blocking reads below into instant WouldBlock/408s.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(state.config.io_timeout));
    let _ = stream.set_write_timeout(Some(state.config.io_timeout));
    let _ = stream.set_nodelay(true);
    let response = match crate::http::read_request(&mut stream, state.config.max_body_bytes) {
        Ok(request) => {
            let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                routes::route(&request, state)
            }));
            routed.unwrap_or_else(|_| {
                error_body(500, "internal-error", "request handler panicked; see server logs")
            })
        }
        // A connection that never sent a byte (port scanners, load
        // balancer liveness probes) is not a request: no counters, no
        // response to a peer that already hung up.
        Err(HttpError::Disconnected) => return,
        Err(e) => {
            state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
            error_body(e.status(), "bad-request", &e.message())
        }
    };
    if response.status >= 400 {
        state.metrics.http_errors_total.fetch_add(1, Ordering::Relaxed);
    }
    let _ = response.write_to(&mut stream);
}

/// A structured `{"error": {"kind", "message"}}` response.
fn error_body(status: u16, kind: &str, message: &str) -> Response {
    Response::json(
        status,
        Json::obj([(
            "error",
            Json::obj([("kind", Json::str(kind)), ("message", Json::str(message))]),
        )]),
    )
}

/// Set by the SIGINT handler; checked by every running server.
static SIGINT_RECEIVED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_sigint(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    SIGINT_RECEIVED.store(true, Ordering::Relaxed);
}

/// Installs a SIGINT (ctrl-c) handler that gracefully stops every
/// running [`Server`] in the process. Call once before [`Server::run`];
/// a no-op on non-unix targets.
pub fn install_sigint_handler() {
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        // SAFETY: registering an async-signal-safe handler (it performs
        // a single atomic store) for a standard signal number.
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};

    fn request(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn binds_serves_and_shuts_down_cleanly() {
        let server =
            Server::bind(ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() })
                .expect("bind");
        let handle = server.handle();
        let addr = server.addr();
        let runner = std::thread::spawn(move || server.run().expect("run"));

        let health = request(addr, "GET /healthz HTTP/1.1\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.contains("\"status\":\"ok\""), "{health}");

        handle.shutdown();
        let report = runner.join().expect("runner joins");
        assert_eq!(report.connections, 1);
        assert_eq!(report.requests, 1);
    }

    #[test]
    fn dedicated_thread_pools_are_honoured() {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: Some(3),
            ..ServeConfig::default()
        })
        .expect("bind");
        assert_eq!(server.handle().state().batch.pool().workers(), 2);
        // Unset threads share the process-wide pool.
        let shared =
            Server::bind(ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() })
                .expect("bind");
        assert!(Arc::ptr_eq(shared.handle().state().batch.pool(), &mst_sim::shared_pool()));
    }

    #[test]
    fn metrics_throughput_is_zero_before_any_solve() {
        let metrics = Metrics::default();
        assert_eq!(metrics.instances_per_sec(), 0.0);
        metrics.record_solve(100, 0, Duration::from_millis(10));
        assert!(metrics.instances_per_sec() > 0.0);
    }
}
