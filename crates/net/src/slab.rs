//! A slot allocator for connection state.
//!
//! The event loop needs a dense `token -> connection` map with O(1)
//! insert/remove and stable indices; a `Vec<Option<T>>` with a free
//! list is exactly that. Slots are reused, so the loop pairs each slot
//! with a generation counter to reject late cross-thread messages
//! addressed to a previous occupant.

/// The slab. `T` is the per-connection state.
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<usize>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Slab<T> {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Slab<T> {
        Slab { slots: Vec::new(), free: Vec::new(), len: 0 }
    }

    /// Stores `value`, returning its slot index.
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        match self.free.pop() {
            Some(at) => {
                self.slots[at] = Some(value);
                at
            }
            None => {
                self.slots.push(Some(value));
                self.slots.len() - 1
            }
        }
    }

    /// Removes and returns the value at `at`, freeing the slot.
    pub fn remove(&mut self, at: usize) -> Option<T> {
        let value = self.slots.get_mut(at)?.take()?;
        self.free.push(at);
        self.len -= 1;
        Some(value)
    }

    /// Borrows the value at `at`.
    pub fn get(&self, at: usize) -> Option<&T> {
        self.slots.get(at)?.as_ref()
    }

    /// Mutably borrows the value at `at`.
    pub fn get_mut(&mut self, at: usize) -> Option<&mut T> {
        self.slots.get_mut(at)?.as_mut()
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates occupied slots as `(index, &value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|v| (i, v)))
    }

    /// The occupied slot indices, collected. Taken before a mutating
    /// sweep so the sweep can call `remove` freely.
    pub fn keys(&self) -> Vec<usize> {
        self.slots.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|_| i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_reuses_slots() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_ne!(a, b);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.remove(a), None, "double-remove is a no-op");
        let c = slab.insert("c");
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.keys().len(), 2);
        assert_eq!(slab.iter().count(), 2);
    }
}
