//! Raw Linux syscall bindings for the readiness loop.
//!
//! The build environment is offline, so no `libc` crate: the handful of
//! symbols we need (`epoll_*`, `eventfd`, `setrlimit`) are declared
//! here directly — they live in the C library every Rust binary on
//! Linux already links. Everything is `cfg(target_os = "linux")`; other
//! targets get an `Unsupported` stub so the workspace still compiles
//! and the serve crate can fall back to its threaded transport.

#![allow(non_camel_case_types)]

use std::io;

/// Readiness: the fd has bytes to read (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the fd can accept writes (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// The peer closed its end or an error is pending (`EPOLLERR | EPOLLHUP`).
pub const EPOLLERR: u32 = 0x008;
/// Peer hangup (`EPOLLHUP`). Always reported, never requested.
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its writing half (`EPOLLRDHUP`): a half-closed socket.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered registration (`EPOLLET`).
pub const EPOLLET: u32 = 1 << 31;

pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;
pub const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// One `struct epoll_event`. Packed on x86-64 exactly as the kernel ABI
/// demands (the kernel reads 12 bytes per event).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy, Debug)]
pub struct epoll_event {
    /// Readiness bit set (`EPOLLIN | ...`).
    pub events: u32,
    /// Caller-owned cookie; we store the connection token.
    pub u64: u64,
}

#[cfg(target_os = "linux")]
mod imp {
    use super::*;

    #[repr(C)]
    struct rlimit {
        rlim_cur: u64,
        rlim_max: u64,
    }

    const RLIMIT_NOFILE: i32 = 7;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut epoll_event) -> i32;
        fn epoll_wait(epfd: i32, events: *mut epoll_event, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn getrlimit(resource: i32, rlim: *mut rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const rlimit) -> i32;
    }

    pub fn sys_epoll_create() -> io::Result<i32> {
        // SAFETY: epoll_create1 takes a flags word and touches no
        // caller memory; the return value is checked below.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn sys_epoll_ctl(epfd: i32, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut ev = epoll_event { events, u64: token };
        // SAFETY: `ev` is a live, properly laid out (`repr(C)`, packed
        // to the kernel ABI) epoll_event for the duration of the call.
        let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn sys_epoll_wait(
        epfd: i32,
        events: &mut [epoll_event],
        timeout_ms: i32,
    ) -> io::Result<usize> {
        // SAFETY: the pointer/length pair comes from a live `&mut`
        // slice, so the kernel writes at most `events.len()` entries
        // into memory we exclusively own.
        let rc = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            // A signal landing mid-wait is an empty wake-up, not a failure.
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }

    pub fn sys_eventfd() -> io::Result<i32> {
        // SAFETY: eventfd takes two scalars and touches no caller
        // memory; the return value is checked below.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn sys_close(fd: i32) {
        // SAFETY: close takes an fd by value; callers pass fds they
        // own (from sys_epoll_create / sys_eventfd) exactly once.
        unsafe {
            close(fd);
        }
    }

    pub fn sys_eventfd_write(fd: i32) {
        let one: u64 = 1;
        // SAFETY: the buffer is the 8 bytes of the local `one`, live
        // for the whole call. Failure means the counter is saturated —
        // the loop is already guaranteed to wake, so the signal is
        // delivered.
        unsafe {
            write(fd, &one as *const u64 as *const u8, 8);
        }
    }

    pub fn sys_eventfd_drain(fd: i32) {
        let mut buf = [0u8; 8];
        // SAFETY: the kernel writes at most 8 bytes into the 8-byte
        // local buffer; the counter value itself is discarded.
        unsafe {
            read(fd, buf.as_mut_ptr(), 8);
        }
    }

    pub fn sys_raise_nofile(want: u64) -> io::Result<u64> {
        let mut lim = rlimit { rlim_cur: 0, rlim_max: 0 };
        // SAFETY: `lim` is a live, `repr(C)` rlimit the kernel fills.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
            return Err(io::Error::last_os_error());
        }
        if lim.rlim_cur < want && lim.rlim_max >= want {
            let raised = rlimit { rlim_cur: want, rlim_max: lim.rlim_max };
            // SAFETY: `raised` is a live, `repr(C)` rlimit read by the
            // kernel for the duration of the call.
            if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } < 0 {
                return Err(io::Error::last_os_error());
            }
            lim.rlim_cur = want;
        }
        Ok(lim.rlim_cur)
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::*;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "mst-net requires Linux epoll"))
    }

    pub fn sys_epoll_create() -> io::Result<i32> {
        unsupported()
    }

    pub fn sys_epoll_ctl(_: i32, _: i32, _: i32, _: u32, _: u64) -> io::Result<()> {
        unsupported()
    }

    pub fn sys_epoll_wait(_: i32, _: &mut [epoll_event], _: i32) -> io::Result<usize> {
        unsupported()
    }

    pub fn sys_eventfd() -> io::Result<i32> {
        unsupported()
    }

    pub fn sys_close(_: i32) {}

    pub fn sys_eventfd_write(_: i32) {}

    pub fn sys_eventfd_drain(_: i32) {}

    pub fn sys_raise_nofile(_: u64) -> io::Result<u64> {
        unsupported()
    }
}

pub use imp::*;

/// Raises the process `RLIMIT_NOFILE` soft limit toward `want` (capped
/// at the hard limit) and returns the resulting soft limit. A server
/// parking thousands of keep-alive sockets needs the descriptors; the
/// capacity test raises the limit before opening its client fleet.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    sys_raise_nofile(want)
}
