//! The epoll readiness poller and its cross-thread waker.
//!
//! [`Poller`] owns one epoll instance. File descriptors are registered
//! with a caller-chosen [`Token`] and an [`Interest`] (readable,
//! writable, level- or edge-triggered); [`Poller::wait`] parks the
//! calling thread until readiness or a timeout, filling a reusable
//! [`Event`] buffer. [`Waker`] is an `eventfd` registered like any
//! other fd: any thread can [`Waker::wake`] to pop the loop out of
//! `wait`, which is how dispatch workers tell the loop that response
//! bytes are ready to flush.

use crate::sys;
use std::io;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Caller-owned cookie identifying a registered fd — typically a
/// connection slab index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

/// What readiness to ask for when registering an fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd can accept writes.
    pub writable: bool,
    /// Edge-triggered: report a readiness transition once, not while
    /// the condition holds. The caller must then drain to `WouldBlock`.
    pub edge: bool,
}

impl Interest {
    /// Level-triggered read interest.
    pub const READ: Interest = Interest { readable: true, writable: false, edge: false };
    /// Level-triggered write interest.
    pub const WRITE: Interest = Interest { readable: false, writable: true, edge: false };
    /// Level-triggered read + write interest.
    pub const READ_WRITE: Interest = Interest { readable: true, writable: true, edge: false };

    /// The same interest, edge-triggered.
    pub fn edge_triggered(mut self) -> Interest {
        self.edge = true;
        self
    }

    fn mask(self) -> u32 {
        let mut mask = sys::EPOLLRDHUP;
        if self.readable {
            mask |= sys::EPOLLIN;
        }
        if self.writable {
            mask |= sys::EPOLLOUT;
        }
        if self.edge {
            mask |= sys::EPOLLET;
        }
        mask
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: Token,
    /// Bytes are readable (or the peer closed — read to find out).
    pub readable: bool,
    /// The fd accepts writes.
    pub writable: bool,
    /// Error or hangup: the connection is dead or dying.
    pub hangup: bool,
    /// The peer shut down its writing half (half-closed socket).
    pub read_closed: bool,
}

/// Cumulative counters one [`Poller`] keeps about its own activity —
/// how often the loop parks, for how long, and how many readiness
/// events it has delivered. Reads are `Relaxed` snapshots (the
/// counters are written by the loop thread only).
#[derive(Debug, Default)]
pub struct PollStats {
    /// `wait` calls made.
    pub polls: AtomicU64,
    /// Total time spent parked inside `wait`, in microseconds.
    pub wait_us: AtomicU64,
    /// Readiness events delivered to the sink.
    pub events: AtomicU64,
}

impl PollStats {
    /// A `(polls, wait_us, events)` snapshot.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.polls.load(Ordering::Relaxed),
            self.wait_us.load(Ordering::Relaxed),
            self.events.load(Ordering::Relaxed),
        )
    }
}

/// An epoll instance plus a reusable event buffer.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
    events: Vec<sys::epoll_event>,
    stats: Arc<PollStats>,
}

impl Poller {
    /// Creates the epoll instance. Fails with `Unsupported` off Linux.
    pub fn new() -> io::Result<Poller> {
        let epfd = sys::sys_epoll_create()?;
        Ok(Poller {
            epfd,
            events: vec![sys::epoll_event { events: 0, u64: 0 }; 1024],
            stats: Arc::new(PollStats::default()),
        })
    }

    /// A shared handle to this poller's activity counters.
    pub fn stats(&self) -> Arc<PollStats> {
        Arc::clone(&self.stats)
    }

    /// Registers `fd` for `interest`, tagged with `token`.
    pub fn add(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::sys_epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, interest.mask(), token.0)
    }

    /// Changes the interest of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::sys_epoll_ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, interest.mask(), token.0)
    }

    /// Unregisters `fd`. Closing the fd drops the registration too, so
    /// this is only needed to park an fd while keeping it open.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        sys::sys_epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until readiness or `timeout` (None = forever), then calls
    /// `sink` once per ready fd. Returns the number of events seen.
    pub fn wait(
        &mut self,
        timeout: Option<Duration>,
        mut sink: impl FnMut(Event),
    ) -> io::Result<usize> {
        let timeout_ms = match timeout {
            // epoll_wait rounds 0 to "return immediately"; clamp
            // sub-millisecond waits up to 1ms so they still park.
            Some(t) => i32::try_from(t.as_millis().clamp(1, i32::MAX as u128)).unwrap_or(i32::MAX),
            None => -1,
        };
        let parked = Instant::now();
        let n = sys::sys_epoll_wait(self.epfd, &mut self.events, timeout_ms)?;
        self.stats.polls.fetch_add(1, Ordering::Relaxed);
        self.stats.wait_us.fetch_add(parked.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.stats.events.fetch_add(n as u64, Ordering::Relaxed);
        for ev in &self.events[..n] {
            let bits = ev.events;
            sink(Event {
                token: Token(ev.u64),
                readable: bits & sys::EPOLLIN != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                read_closed: bits & sys::EPOLLRDHUP != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::sys_close(self.epfd);
    }
}

/// A cross-thread wake-up line into a [`Poller`]: an `eventfd`
/// registered with the poller under a reserved token. Cloneable and
/// cheap; `wake` is async-signal-safe in spirit (one `write` syscall).
#[derive(Debug, Clone)]
pub struct Waker {
    inner: Arc<WakerFd>,
}

#[derive(Debug)]
struct WakerFd(RawFd);

impl Drop for WakerFd {
    fn drop(&mut self) {
        sys::sys_close(self.0);
    }
}

impl Waker {
    /// Creates the eventfd and registers it with `poller` under
    /// `token` (level-triggered read).
    pub fn new(poller: &Poller, token: Token) -> io::Result<Waker> {
        let fd = sys::sys_eventfd()?;
        poller.add(fd, token, Interest::READ)?;
        Ok(Waker { inner: Arc::new(WakerFd(fd)) })
    }

    /// Pops the poller out of `wait`. Safe from any thread.
    pub fn wake(&self) {
        sys::sys_eventfd_write(self.inner.0);
    }

    /// Clears the pending wake-up; the loop calls this when the waker's
    /// token shows up readable, before draining whatever queue the
    /// wake-up advertised.
    pub fn drain(&self) {
        sys::sys_eventfd_drain(self.inner.0);
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn readiness_fires_on_data_and_not_before() {
        let mut poller = Poller::new().unwrap();
        let (mut client, server) = pair();
        server.set_nonblocking(true).unwrap();
        poller.add(server.as_raw_fd(), Token(7), Interest::READ).unwrap();

        let n = poller.wait(Some(Duration::from_millis(30)), |_| {}).unwrap();
        assert_eq!(n, 0, "no data yet, no events");

        client.write_all(b"hi").unwrap();
        let mut seen = Vec::new();
        poller.wait(Some(Duration::from_millis(1000)), |ev| seen.push(ev)).unwrap();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].token, Token(7));
        assert!(seen[0].readable);
    }

    #[test]
    fn edge_triggered_reports_once_until_drained() {
        let mut poller = Poller::new().unwrap();
        let (mut client, mut server) = pair();
        server.set_nonblocking(true).unwrap();
        poller.add(server.as_raw_fd(), Token(1), Interest::READ.edge_triggered()).unwrap();
        client.write_all(b"edge").unwrap();

        let n = poller.wait(Some(Duration::from_millis(1000)), |_| {}).unwrap();
        assert_eq!(n, 1, "the transition is reported");
        let n = poller.wait(Some(Duration::from_millis(30)), |_| {}).unwrap();
        assert_eq!(n, 0, "not re-reported while undrained (edge semantics)");

        let mut buf = [0u8; 16];
        let got = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..got], b"edge");
    }

    #[test]
    fn hangup_and_half_close_are_distinguished() {
        let mut poller = Poller::new().unwrap();
        let (client, server) = pair();
        server.set_nonblocking(true).unwrap();
        poller.add(server.as_raw_fd(), Token(3), Interest::READ).unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let mut seen = Vec::new();
        poller.wait(Some(Duration::from_millis(1000)), |ev| seen.push(ev)).unwrap();
        assert_eq!(seen.len(), 1);
        assert!(seen[0].read_closed, "peer write-shutdown shows as EPOLLRDHUP");
        drop(client);
    }

    #[test]
    fn waker_pops_the_loop_from_another_thread() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new(&poller, Token(u64::MAX)).unwrap();
        let remote = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            remote.wake();
        });
        let start = Instant::now();
        let mut tokens = Vec::new();
        poller.wait(Some(Duration::from_secs(10)), |ev| tokens.push(ev.token)).unwrap();
        assert!(start.elapsed() < Duration::from_secs(5), "woke early, not at timeout");
        assert_eq!(tokens, vec![Token(u64::MAX)]);
        waker.drain();
        handle.join().unwrap();
        let n = poller.wait(Some(Duration::from_millis(30)), |_| {}).unwrap();
        assert_eq!(n, 0, "drained waker is quiet");
    }

    #[test]
    fn modify_switches_interest() {
        let mut poller = Poller::new().unwrap();
        let (_client, server) = pair();
        server.set_nonblocking(true).unwrap();
        poller.add(server.as_raw_fd(), Token(9), Interest::READ).unwrap();
        // A fresh socket with an empty send buffer is instantly writable.
        poller.modify(server.as_raw_fd(), Token(9), Interest::WRITE).unwrap();
        let mut seen = Vec::new();
        poller.wait(Some(Duration::from_millis(1000)), |ev| seen.push(ev)).unwrap();
        assert!(seen.iter().any(|e| e.writable));
        poller.delete(server.as_raw_fd()).unwrap();
        let n = poller.wait(Some(Duration::from_millis(30)), |_| {}).unwrap();
        assert_eq!(n, 0, "deleted fd no longer reports");
    }
}
