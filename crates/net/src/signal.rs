//! Process signal plumbing (SIGINT → atomic flag).
//!
//! Lives here rather than in `mst-serve` because registering a handler
//! means calling into libc, and this crate is the workspace's single
//! home for foreign-function unsafety (everything else is
//! `#![forbid(unsafe_code)]`). The handler itself does the only thing
//! an async-signal-safe handler may: one atomic store.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the SIGINT handler; polled by cooperative shutdown loops.
static SIGINT_RECEIVED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_sigint(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    SIGINT_RECEIVED.store(true, Ordering::Relaxed);
}

/// Installs a SIGINT (ctrl-c) handler that flips the flag read by
/// [`sigint_received`]. Call once at process start; a no-op on
/// non-unix targets.
pub fn install_sigint_handler() {
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        // SAFETY: registering an async-signal-safe handler (it performs
        // a single atomic store) for a standard signal number.
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

/// Whether SIGINT has been received since the handler was installed.
pub fn sigint_received() -> bool {
    SIGINT_RECEIVED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_handler_sets_it() {
        // Installing must not flip the flag by itself.
        install_sigint_handler();
        #[cfg(unix)]
        {
            // Simulate delivery by invoking the handler directly — the
            // real signal path runs the same function.
            on_sigint(2);
            assert!(sigint_received());
        }
    }
}
