//! A hashed timer wheel for connection deadlines.
//!
//! The event loop arms one timer per connection (keep-alive idle
//! timeout, or the per-request I/O budget) and re-arms it every time
//! the connection changes state. Cancellation is *lazy*: the loop keeps
//! a generation counter per connection and bumps it instead of removing
//! the wheel entry; when a stale entry fires, the generations disagree
//! and it is ignored. That makes `schedule` O(1) with no lookup
//! structure, which matters when thousands of keep-alive sockets re-arm
//! on every request.
//!
//! Precision is one tick (see [`TimerWheel::new`]); timeouts fire on
//! the first tick boundary at or after their deadline, never before.

use crate::poller::Token;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Entry {
    token: Token,
    generation: u64,
    at_tick: u64,
}

/// The wheel: `slots.len()` buckets, each holding the entries whose
/// deadline tick hashes onto it (deadlines beyond one rotation simply
/// stay in their bucket until their tick comes around).
#[derive(Debug)]
pub struct TimerWheel {
    tick: Duration,
    slots: Vec<Vec<Entry>>,
    epoch: Instant,
    /// Ticks fully processed so far.
    done: u64,
    armed: usize,
}

impl TimerWheel {
    /// A wheel with the given tick granularity and bucket count.
    pub fn new(tick: Duration, slots: usize) -> TimerWheel {
        assert!(!tick.is_zero() && slots > 0);
        TimerWheel {
            tick,
            slots: (0..slots).map(|_| Vec::new()).collect(),
            epoch: Instant::now(),
            done: 0,
            armed: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.epoch);
        // Round up: a timer never fires before its deadline.
        let ticks = elapsed.as_nanos().div_ceil(self.tick.as_nanos().max(1));
        (ticks as u64).max(self.done + 1)
    }

    /// Arms a timer for `(token, generation)` at `deadline`. The caller
    /// re-checks `generation` when the timer fires; bumping it is how a
    /// timer is cancelled or superseded.
    pub fn schedule(&mut self, token: Token, generation: u64, deadline: Instant) {
        let at_tick = self.tick_of(deadline);
        let slot = (at_tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { token, generation, at_tick });
        self.armed += 1;
    }

    /// Advances the wheel to `now`, calling `sink(token, generation)`
    /// for every entry whose deadline passed.
    pub fn poll(&mut self, now: Instant, mut sink: impl FnMut(Token, u64)) {
        let target = (now.saturating_duration_since(self.epoch).as_nanos()
            / self.tick.as_nanos().max(1)) as u64;
        while self.done < target {
            self.done += 1;
            let done = self.done;
            let slot = (done % self.slots.len() as u64) as usize;
            let bucket = &mut self.slots[slot];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].at_tick <= done {
                    let entry = bucket.swap_remove(i);
                    self.armed -= 1;
                    sink(entry.token, entry.generation);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// How long the poller may sleep before the wheel needs another
    /// [`poll`](TimerWheel::poll): until the next tick boundary, or
    /// `None` when nothing is armed.
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.armed == 0 {
            return None;
        }
        let next_boundary = self.epoch + self.tick * (self.done as u32 + 1);
        Some(next_boundary.saturating_duration_since(now).max(Duration::from_millis(1)))
    }

    /// Entries currently armed (live and lazily-cancelled alike).
    pub fn armed(&self) -> usize {
        self.armed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_or_after_the_deadline_never_before() {
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 16);
        let start = Instant::now();
        wheel.schedule(Token(1), 0, start + Duration::from_millis(35));
        let mut fired = Vec::new();
        wheel.poll(start + Duration::from_millis(30), |t, g| fired.push((t, g)));
        assert!(fired.is_empty(), "not yet due");
        wheel.poll(start + Duration::from_millis(60), |t, g| fired.push((t, g)));
        assert_eq!(fired, vec![(Token(1), 0)]);
        assert_eq!(wheel.armed(), 0);
    }

    #[test]
    fn deadlines_beyond_one_rotation_wait_their_round() {
        // 8 slots x 10ms = 80ms rotation; 250ms is three rotations out.
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8);
        let start = Instant::now();
        wheel.schedule(Token(2), 0, start + Duration::from_millis(250));
        let mut fired = 0;
        wheel.poll(start + Duration::from_millis(100), |_, _| fired += 1);
        assert_eq!(fired, 0, "same slot, earlier round: must not fire");
        wheel.poll(start + Duration::from_millis(260), |_, _| fired += 1);
        assert_eq!(fired, 1);
    }

    #[test]
    fn stale_generations_surface_for_the_caller_to_ignore() {
        let mut wheel = TimerWheel::new(Duration::from_millis(5), 32);
        let start = Instant::now();
        // The connection re-armed: generation 0 is stale, 1 is live.
        wheel.schedule(Token(3), 0, start + Duration::from_millis(10));
        wheel.schedule(Token(3), 1, start + Duration::from_millis(20));
        let live_generation = 1u64;
        let mut live_fires = 0;
        wheel.poll(start + Duration::from_millis(50), |_, g| {
            if g == live_generation {
                live_fires += 1;
            }
        });
        assert_eq!(live_fires, 1, "exactly the live arm fires");
    }

    #[test]
    fn next_timeout_tracks_armed_state() {
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 16);
        let start = Instant::now();
        assert!(wheel.next_timeout(start).is_none(), "idle wheel: sleep forever");
        wheel.schedule(Token(4), 0, start + Duration::from_millis(15));
        let sleep = wheel.next_timeout(start).unwrap();
        assert!(sleep <= Duration::from_millis(10), "wake within one tick");
        wheel.poll(start + Duration::from_millis(30), |_, _| {});
        assert!(wheel.next_timeout(start + Duration::from_millis(30)).is_none());
    }
}
