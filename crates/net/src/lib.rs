//! # mst-net — a dependency-free epoll readiness loop
//!
//! The building blocks `mst-serve`'s event-driven transport stands on,
//! written straight against the Linux syscall surface (the build
//! environment is offline, so no `mio`/`tokio`; the few C symbols
//! needed are declared by hand in `sys`):
//!
//! * [`Poller`] — an epoll instance: register nonblocking fds with a
//!   [`Token`] and an [`Interest`] (level- or edge-triggered), then
//!   [`Poller::wait`] for readiness. One thread can watch tens of
//!   thousands of sockets; a parked keep-alive connection costs a slab
//!   slot and two buffers, not a thread.
//! * [`Waker`] — an `eventfd` escape hatch: any thread pops the loop
//!   out of `wait` (dispatch workers use it to say "response bytes are
//!   ready to flush").
//! * [`TimerWheel`] — hashed-wheel deadlines with lazy generation-based
//!   cancellation, for keep-alive idle timeouts and per-request I/O
//!   budgets.
//! * [`Slab`] — the dense `token -> connection` store with O(1)
//!   insert/remove and index reuse.
//!
//! Off Linux everything compiles but [`Poller::new`] reports
//! `Unsupported`; callers (the serve crate) fall back to their threaded
//! transport.
//!
//! ```
//! # #[cfg(target_os = "linux")] {
//! use mst_net::{Interest, Poller, Token};
//! use std::io::Write;
//! use std::os::unix::io::AsRawFd;
//! use std::time::Duration;
//!
//! let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
//! let mut client = std::net::TcpStream::connect(listener.local_addr()?)?;
//! let (conn, _) = listener.accept()?;
//! conn.set_nonblocking(true)?;
//!
//! let mut poller = Poller::new()?;
//! poller.add(conn.as_raw_fd(), Token(0), Interest::READ)?;
//! client.write_all(b"ping")?;
//! let mut ready = None;
//! poller.wait(Some(Duration::from_secs(5)), |ev| ready = Some(ev.token))?;
//! assert_eq!(ready, Some(Token(0)));
//! # }
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod poller;
pub mod signal;
pub mod slab;
pub(crate) mod sys;
pub mod timer;

pub use poller::{Event, Interest, PollStats, Poller, Token, Waker};
pub use signal::{install_sigint_handler, sigint_received};
pub use slab::Slab;
pub use sys::raise_nofile_limit;
pub use timer::TimerWheel;
