//! A single heterogeneous processor: incoming-link latency and work time.

use crate::error::PlatformError;
use crate::time::Time;
use std::fmt;

/// One processor of the platform, bundled with its *incoming* link.
///
/// Following the paper's Figure 1, processor `i` is reached through a link
/// of latency `c_i` and processes one task in `w_i` ticks. Both values are
/// strictly positive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Processor {
    /// Latency of the incoming communication link (`c_i`).
    pub comm: Time,
    /// Time to process one task (`w_i`).
    pub work: Time,
}

impl Processor {
    /// Builds a processor, validating positivity of both parameters.
    pub fn new(comm: Time, work: Time) -> Result<Self, PlatformError> {
        if comm <= 0 {
            return Err(PlatformError::NonPositiveTime { field: "c", index: 0, value: comm });
        }
        if work <= 0 {
            return Err(PlatformError::NonPositiveTime { field: "w", index: 0, value: work });
        }
        Ok(Processor { comm, work })
    }

    /// Builds a processor without validation. Panics (debug) on invalid data.
    ///
    /// Convenient in tests and generators where positivity is known.
    #[inline]
    pub fn of(comm: Time, work: Time) -> Self {
        debug_assert!(comm > 0 && work > 0, "Processor::of({comm}, {work})");
        Processor { comm, work }
    }

    /// `m_i = max(c_i, w_i)` — the node-expansion period of the paper's
    /// Figure 6: the `q`-th virtual single-task slave of this node has
    /// processing time `w_i + q * m_i`.
    ///
    /// Intuition: a node can absorb one task every `m_i` ticks in steady
    /// state (it is limited either by its link or by its CPU), so the
    /// `q`-th-from-last task on this node needs `q` extra periods of slack.
    #[inline]
    pub fn period(&self) -> Time {
        self.comm.max(self.work)
    }

    /// Whether this processor is communication-bound (`c_i >= w_i`).
    #[inline]
    pub fn comm_bound(&self) -> bool {
        self.comm >= self.work
    }
}

impl fmt::Display for Processor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(c={}, w={})", self.comm, self.work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_positivity() {
        assert!(Processor::new(1, 1).is_ok());
        assert!(matches!(
            Processor::new(0, 1),
            Err(PlatformError::NonPositiveTime { field: "c", .. })
        ));
        assert!(matches!(
            Processor::new(1, 0),
            Err(PlatformError::NonPositiveTime { field: "w", .. })
        ));
        assert!(Processor::new(-3, 5).is_err());
    }

    #[test]
    fn period_is_max_of_comm_and_work() {
        assert_eq!(Processor::of(2, 5).period(), 5);
        assert_eq!(Processor::of(5, 2).period(), 5);
        assert_eq!(Processor::of(4, 4).period(), 4);
    }

    #[test]
    fn comm_bound_classification() {
        assert!(Processor::of(5, 2).comm_bound());
        assert!(Processor::of(4, 4).comm_bound());
        assert!(!Processor::of(2, 5).comm_bound());
    }

    #[test]
    fn display_round_trip_readable() {
        assert_eq!(Processor::of(2, 5).to_string(), "(c=2, w=5)");
    }
}
