//! Integer time, as used throughout the paper.
//!
//! The paper types all starting and emission times in `N` (Definition 1).
//! We use a signed 64-bit tick so that the backward construction of the
//! chain algorithm may transiently produce *negative* candidate emission
//! times: in the `T_lim` variant of Section 7 a negative first-link
//! emission time is precisely the stop condition.

/// One scheduling tick. All latencies, processing times, start times and
/// emission times are expressed in this unit.
pub type Time = i64;

/// A time value larger than any quantity a well-formed instance can
/// produce, usable as "+infinity" without risking overflow when a few
/// latencies are subtracted from it.
pub const TIME_INFINITY: Time = i64::MAX / 4;

/// Saturating ceiling division of two non-negative times.
///
/// Used by analytic bounds (e.g. steady-state task counts within a
/// deadline). Panics in debug builds if either operand is negative.
#[inline]
pub fn div_ceil(num: Time, den: Time) -> Time {
    debug_assert!(num >= 0 && den > 0, "div_ceil expects num >= 0, den > 0");
    (num + den - 1) / den
}

/// Inclusive-exclusive occupation interval `[start, end)` of a resource
/// (a link transferring one task, or a processor computing one task).
///
/// Intervals are half-open: a communication of latency `c` emitted at `t`
/// occupies `[t, t + c)`, so another emission may start exactly at
/// `t + c` — this matches properties (1)–(4) of Definition 1, which all
/// use non-strict inequalities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Interval {
    /// First tick during which the resource is busy.
    pub start: Time,
    /// First tick at which the resource is free again.
    pub end: Time,
}

impl Interval {
    /// Builds `[start, end)`. Panics if `end < start`.
    #[inline]
    pub fn new(start: Time, end: Time) -> Self {
        assert!(end >= start, "interval end {end} precedes start {start}");
        Interval { start, end }
    }

    /// Builds `[start, start + len)`. Panics if `len < 0`.
    #[inline]
    pub fn with_len(start: Time, len: Time) -> Self {
        assert!(len >= 0, "interval length {len} is negative");
        Interval { start, end: start + len }
    }

    /// Duration of the interval.
    #[inline]
    pub fn len(&self) -> Time {
        self.end - self.start
    }

    /// Whether the interval is empty (zero duration).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether two intervals share at least one tick.
    ///
    /// Empty intervals never overlap anything.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// Whether `t` lies inside the interval.
    #[inline]
    pub fn contains(&self, t: Time) -> bool {
        self.start <= t && t < self.end
    }

    /// The interval shifted by `delta` ticks (possibly negative).
    #[inline]
    pub fn shifted(&self, delta: Time) -> Interval {
        Interval { start: self.start + delta, end: self.end + delta }
    }
}

/// Returns `true` if no two intervals in the (arbitrarily ordered) slice
/// overlap. `O(m log m)`.
pub fn pairwise_disjoint(intervals: &[Interval]) -> bool {
    let mut sorted: Vec<Interval> = intervals.iter().filter(|iv| !iv.is_empty()).copied().collect();
    sorted.sort();
    sorted.windows(2).all(|w| w[0].end <= w[1].start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basic_properties() {
        let iv = Interval::new(3, 7);
        assert_eq!(iv.len(), 4);
        assert!(!iv.is_empty());
        assert!(iv.contains(3));
        assert!(iv.contains(6));
        assert!(!iv.contains(7));
        assert!(!iv.contains(2));
    }

    #[test]
    fn interval_with_len_matches_new() {
        assert_eq!(Interval::with_len(5, 2), Interval::new(5, 7));
        assert_eq!(Interval::with_len(5, 0), Interval::new(5, 5));
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn interval_rejects_negative_span() {
        let _ = Interval::new(7, 3);
    }

    #[test]
    fn overlap_is_symmetric_and_half_open() {
        let a = Interval::new(0, 4);
        let b = Interval::new(4, 8);
        let c = Interval::new(3, 5);
        // touching at the boundary is NOT an overlap: half-open semantics
        assert!(!a.overlaps(&b));
        assert!(!b.overlaps(&a));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
    }

    #[test]
    fn empty_intervals_never_overlap() {
        let e = Interval::new(2, 2);
        let a = Interval::new(0, 4);
        assert!(!e.overlaps(&a));
        assert!(!a.overlaps(&e));
        assert!(!e.overlaps(&e));
    }

    #[test]
    fn shifted_moves_both_ends() {
        assert_eq!(Interval::new(1, 3).shifted(10), Interval::new(11, 13));
        assert_eq!(Interval::new(1, 3).shifted(-1), Interval::new(0, 2));
    }

    #[test]
    fn pairwise_disjoint_detects_conflicts() {
        let free = vec![Interval::new(0, 2), Interval::new(2, 4), Interval::new(10, 11)];
        assert!(pairwise_disjoint(&free));
        let clash = vec![Interval::new(0, 3), Interval::new(2, 4)];
        assert!(!pairwise_disjoint(&clash));
        // empty intervals are ignored
        let with_empty = vec![Interval::new(0, 3), Interval::new(1, 1)];
        assert!(pairwise_disjoint(&with_empty));
    }

    #[test]
    fn div_ceil_rounds_up() {
        assert_eq!(div_ceil(0, 3), 0);
        assert_eq!(div_ceil(1, 3), 1);
        assert_eq!(div_ceil(3, 3), 1);
        assert_eq!(div_ceil(4, 3), 2);
    }
}
