//! General out-trees of processors, rooted at the master.
//!
//! The paper's conclusion names scheduling on general trees as the long
//! term objective, to be approached by "covering those graphs with simpler
//! structures" (chains and spiders). This module provides the tree
//! representation used by the `mst-tree` covering heuristics and by the
//! exact baselines (chains and spiders embed into trees, so a single exact
//! evaluator over trees covers every topology).

use crate::chain::Chain;
use crate::error::PlatformError;
use crate::processor::Processor;
use crate::spider::Spider;
use crate::time::Time;
use std::fmt;

/// One processor of a [`Tree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TreeNode {
    /// Parent node id; `0` is the master (which is not itself a
    /// [`TreeNode`]), other values refer to 1-based node ids.
    pub parent: usize,
    /// Latency of the link from `parent` to this node.
    pub comm: Time,
    /// Per-task processing time of this node.
    pub work: Time,
}

/// An out-tree of heterogeneous processors rooted at the master.
///
/// Node ids are **1-based** (`1..=len`); id `0` denotes the master, which
/// stores the tasks and computes nothing. Every node obeys the one-port
/// model: one incoming communication at a time (its parent link) and one
/// outgoing communication at a time (shared among *all* its children
/// links) — this shared out-port is what makes trees hard and what the
/// spider algorithm handles specially at the master.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tree {
    nodes: Vec<TreeNode>,
}

impl Tree {
    /// Builds a tree, checking that parents precede children (which also
    /// rules out cycles) and that all times are positive.
    pub fn new(nodes: Vec<TreeNode>) -> Result<Self, PlatformError> {
        if nodes.is_empty() {
            return Err(PlatformError::EmptyTopology("tree"));
        }
        for (idx, node) in nodes.iter().enumerate() {
            let id = idx + 1;
            if node.parent >= id {
                return Err(PlatformError::Structure(format!(
                    "node {id} has parent {} >= its own id (nodes must be listed parents-first)",
                    node.parent
                )));
            }
            if node.comm <= 0 {
                return Err(PlatformError::NonPositiveTime {
                    field: "c",
                    index: id,
                    value: node.comm,
                });
            }
            if node.work <= 0 {
                return Err(PlatformError::NonPositiveTime {
                    field: "w",
                    index: id,
                    value: node.work,
                });
            }
        }
        Ok(Tree { nodes })
    }

    /// Builds a tree from `(parent, c, w)` triples (ids assigned 1..).
    pub fn from_triples(triples: &[(usize, Time, Time)]) -> Result<Self, PlatformError> {
        Tree::new(
            triples.iter().map(|&(parent, comm, work)| TreeNode { parent, comm, work }).collect(),
        )
    }

    /// Embeds a chain: node `i`'s parent is `i - 1`.
    pub fn from_chain(chain: &Chain) -> Tree {
        let nodes = chain
            .processors()
            .iter()
            .enumerate()
            .map(|(idx, p)| TreeNode { parent: idx, comm: p.comm, work: p.work })
            .collect();
        Tree { nodes }
    }

    /// Embeds a spider: each leg becomes a root-anchored path.
    pub fn from_spider(spider: &Spider) -> Tree {
        let mut nodes = Vec::with_capacity(spider.num_processors());
        for leg in spider.legs() {
            let mut parent = 0usize;
            for p in leg.processors() {
                nodes.push(TreeNode { parent, comm: p.comm, work: p.work });
                parent = nodes.len();
            }
        }
        Tree { nodes }
    }

    /// Number of processors (master excluded).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff the tree has no processors (never constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node `id` (**1-based**).
    #[inline]
    pub fn node(&self, id: usize) -> TreeNode {
        self.nodes[id - 1]
    }

    /// All nodes; index `i` holds node id `i + 1`.
    #[inline]
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Children lists indexed by node id (`children[0]` = master's).
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.nodes.len() + 1];
        for (idx, node) in self.nodes.iter().enumerate() {
            out[node.parent].push(idx + 1);
        }
        out
    }

    /// Ids of leaf nodes (no children).
    pub fn leaves(&self) -> Vec<usize> {
        let children = self.children();
        (1..=self.len()).filter(|&id| children[id].is_empty()).collect()
    }

    /// The path of node ids from the master's child down to `id`
    /// (inclusive), i.e. the route a task for `id` travels.
    pub fn path_from_root(&self, id: usize) -> Vec<usize> {
        let mut path = Vec::new();
        let mut cur = id;
        while cur != 0 {
            path.push(cur);
            cur = self.node(cur).parent;
        }
        path.reverse();
        path
    }

    /// Depth of node `id` (1 for a child of the master).
    pub fn depth(&self, id: usize) -> usize {
        self.path_from_root(id).len()
    }

    /// `true` iff no node has more than one child, and the master has
    /// exactly one — i.e. the tree is a chain.
    pub fn is_chain(&self) -> bool {
        let children = self.children();
        children[0].len() == 1 && (1..=self.len()).all(|id| children[id].len() <= 1)
    }

    /// `true` iff only the master has arity possibly exceeding one — i.e.
    /// the tree is a spider.
    pub fn is_spider(&self) -> bool {
        let children = self.children();
        (1..=self.len()).all(|id| children[id].len() <= 1)
    }

    /// Converts to a [`Spider`] when [`Tree::is_spider`] holds.
    pub fn to_spider(&self) -> Option<Spider> {
        if !self.is_spider() {
            return None;
        }
        let children = self.children();
        let mut legs = Vec::new();
        for &head in &children[0] {
            let mut procs = Vec::new();
            let mut cur = head;
            loop {
                let node = self.node(cur);
                procs.push(Processor { comm: node.comm, work: node.work });
                match children[cur].first() {
                    Some(&next) => cur = next,
                    None => break,
                }
            }
            legs.push(Chain::new(procs).expect("non-empty leg"));
        }
        Spider::new(legs).ok()
    }

    /// The chain formed by the nodes along the root path of `leaf`
    /// (used by covering heuristics: a root-to-leaf path is a chain).
    pub fn path_chain(&self, leaf: usize) -> Chain {
        let procs = self
            .path_from_root(leaf)
            .iter()
            .map(|&id| {
                let n = self.node(id);
                Processor { comm: n.comm, work: n.work }
            })
            .collect();
        Chain::new(procs).expect("path is non-empty")
    }
}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "tree ({} nodes):", self.nodes.len())?;
        for (idx, n) in self.nodes.iter().enumerate() {
            writeln!(f, "  {} <- parent {} (c={}, w={})", idx + 1, n.parent, n.comm, n.work)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// master -> 1 -> {2, 3}; master -> 4
    fn sample() -> Tree {
        Tree::from_triples(&[(0, 1, 2), (1, 2, 3), (1, 3, 4), (0, 4, 5)]).unwrap()
    }

    #[test]
    fn validates_parent_ordering_and_positivity() {
        assert!(Tree::from_triples(&[]).is_err());
        assert!(Tree::from_triples(&[(1, 1, 1)]).is_err()); // self/forward parent
        assert!(Tree::from_triples(&[(0, 0, 1)]).is_err());
        assert!(Tree::from_triples(&[(0, 1, -2)]).is_err());
        assert!(sample().len() == 4);
    }

    #[test]
    fn children_and_leaves() {
        let t = sample();
        let ch = t.children();
        assert_eq!(ch[0], vec![1, 4]);
        assert_eq!(ch[1], vec![2, 3]);
        assert!(ch[2].is_empty());
        assert_eq!(t.leaves(), vec![2, 3, 4]);
    }

    #[test]
    fn paths_and_depths() {
        let t = sample();
        assert_eq!(t.path_from_root(3), vec![1, 3]);
        assert_eq!(t.path_from_root(4), vec![4]);
        assert_eq!(t.depth(3), 2);
        assert_eq!(t.depth(4), 1);
    }

    #[test]
    fn shape_detection() {
        let t = sample();
        assert!(!t.is_chain());
        assert!(!t.is_spider()); // node 1 has two children
        let chain_tree = Tree::from_chain(&Chain::paper_figure2());
        assert!(chain_tree.is_chain());
        assert!(chain_tree.is_spider());
        let spider = Spider::from_legs(&[&[(1, 1), (2, 2)], &[(3, 3)]]).unwrap();
        let spider_tree = Tree::from_spider(&spider);
        assert!(!spider_tree.is_chain());
        assert!(spider_tree.is_spider());
        assert_eq!(spider_tree.to_spider().unwrap(), spider);
        assert!(t.to_spider().is_none());
    }

    #[test]
    fn path_chain_extracts_route() {
        let t = sample();
        let chain = t.path_chain(3);
        assert_eq!(chain.len(), 2);
        assert_eq!((chain.c(1), chain.w(1)), (1, 2));
        assert_eq!((chain.c(2), chain.w(2)), (3, 4));
    }

    #[test]
    fn chain_round_trip() {
        let chain = Chain::paper_figure2();
        let t = Tree::from_chain(&chain);
        let spider = t.to_spider().unwrap();
        assert!(spider.is_chain());
        assert_eq!(spider.leg(0), &chain);
    }
}
