//! Seeded synthetic instance generators.
//!
//! The paper motivates the problem with volunteer-computing platforms
//! (SETI@home, the Mersenne prime search): large pools of commodity
//! machines with wildly different link and CPU speeds. No trace of those
//! platforms is available, so the experiment harness draws platforms from
//! parametric heterogeneity regimes instead. All generators are fully
//! deterministic given a seed, so every experiment in `EXPERIMENTS.md` is
//! reproducible bit-for-bit.

use crate::chain::Chain;
use crate::fork::Fork;
use crate::processor::Processor;
use crate::spider::Spider;
use crate::time::Time;
use crate::tree::{Tree, TreeNode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The heterogeneity regime from which `(c_i, w_i)` pairs are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeterogeneityProfile {
    /// `c` and `w` drawn independently and uniformly from the given
    /// inclusive ranges. The workhorse profile.
    Uniform {
        /// Inclusive range for link latencies.
        c: (Time, Time),
        /// Inclusive range for processing times.
        w: (Time, Time),
    },
    /// Identical processors — the degenerate case covered by the divisible
    /// load literature the paper compares against.
    Homogeneous {
        /// Common link latency.
        c: Time,
        /// Common processing time.
        w: Time,
    },
    /// Slow links, fast CPUs (`c` in the high range, `w` in the low one):
    /// distribution cost dominates, so the optimal schedule keeps work
    /// close to the master.
    CommBound,
    /// Fast links, slow CPUs: computation dominates, so the optimal
    /// schedule spreads work deep into the platform.
    ComputeBound,
    /// Two populations: a fraction of "fast" nodes (small `w`) among slow
    /// ones, modelling a volunteer pool with a few dedicated servers.
    Bimodal {
        /// Percentage (0–100) of fast nodes.
        fast_pct: u8,
    },
    /// `w` positively correlated with `c` (a far-away node is also slow),
    /// modelling distance-decaying platforms such as the layered networks
    /// of the paper's reference \[7].
    Correlated,
}

impl HeterogeneityProfile {
    /// All named profiles, for sweep-style experiments.
    pub const ALL: [HeterogeneityProfile; 5] = [
        HeterogeneityProfile::Uniform { c: (1, 5), w: (1, 5) },
        HeterogeneityProfile::Homogeneous { c: 2, w: 3 },
        HeterogeneityProfile::CommBound,
        HeterogeneityProfile::ComputeBound,
        HeterogeneityProfile::Bimodal { fast_pct: 25 },
    ];

    /// The profile a stable name refers to, with the default
    /// parameterisation — the inverse of [`HeterogeneityProfile::name`]
    /// used by the CLI and the service front-end to resolve
    /// `--profile`/`"profile"` arguments.
    pub fn by_name(name: &str) -> Option<HeterogeneityProfile> {
        Some(match name {
            "uniform" => HeterogeneityProfile::Uniform { c: (1, 5), w: (1, 5) },
            "homogeneous" => HeterogeneityProfile::Homogeneous { c: 2, w: 3 },
            "comm-bound" => HeterogeneityProfile::CommBound,
            "compute-bound" => HeterogeneityProfile::ComputeBound,
            "bimodal" => HeterogeneityProfile::Bimodal { fast_pct: 25 },
            "correlated" => HeterogeneityProfile::Correlated,
            _ => return None,
        })
    }

    /// A short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            HeterogeneityProfile::Uniform { .. } => "uniform",
            HeterogeneityProfile::Homogeneous { .. } => "homogeneous",
            HeterogeneityProfile::CommBound => "comm-bound",
            HeterogeneityProfile::ComputeBound => "compute-bound",
            HeterogeneityProfile::Bimodal { .. } => "bimodal",
            HeterogeneityProfile::Correlated => "correlated",
        }
    }

    fn sample(&self, rng: &mut StdRng) -> Processor {
        let (c, w) = match *self {
            HeterogeneityProfile::Uniform { c, w } => {
                (rng.gen_range(c.0..=c.1), rng.gen_range(w.0..=w.1))
            }
            HeterogeneityProfile::Homogeneous { c, w } => (c, w),
            HeterogeneityProfile::CommBound => (rng.gen_range(4..=9), rng.gen_range(1..=3)),
            HeterogeneityProfile::ComputeBound => (rng.gen_range(1..=3), rng.gen_range(4..=9)),
            HeterogeneityProfile::Bimodal { fast_pct } => {
                let c = rng.gen_range(1..=4);
                let w = if rng.gen_range(0u32..100) < fast_pct as u32 {
                    rng.gen_range(1..=2)
                } else {
                    rng.gen_range(6..=10)
                };
                (c, w)
            }
            HeterogeneityProfile::Correlated => {
                let c = rng.gen_range(1..=6);
                let w = c + rng.gen_range(0i64..=2);
                (c, w)
            }
        };
        debug_assert!(c > 0 && w > 0);
        Processor { comm: c, work: w }
    }
}

/// A seeded generator of platforms.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Heterogeneity regime.
    pub profile: HeterogeneityProfile,
    /// RNG seed; equal seeds yield equal instances.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Builds a generator with the given profile and seed.
    pub fn new(profile: HeterogeneityProfile, seed: u64) -> Self {
        GeneratorConfig { profile, seed }
    }

    fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// A random chain of `p` processors.
    pub fn chain(&self, p: usize) -> Chain {
        assert!(p >= 1);
        let mut rng = self.rng();
        let procs = (0..p).map(|_| self.profile.sample(&mut rng)).collect();
        Chain::new(procs).expect("p >= 1")
    }

    /// A random fork of `p` slaves.
    pub fn fork(&self, p: usize) -> Fork {
        assert!(p >= 1);
        let mut rng = self.rng();
        let slaves = (0..p).map(|_| self.profile.sample(&mut rng)).collect();
        Fork::new(slaves).expect("p >= 1")
    }

    /// A random spider with `legs` legs of length between `min_len` and
    /// `max_len` (inclusive).
    pub fn spider(&self, legs: usize, min_len: usize, max_len: usize) -> Spider {
        assert!(legs >= 1 && min_len >= 1 && max_len >= min_len);
        let mut rng = self.rng();
        let mut chains = Vec::with_capacity(legs);
        for _ in 0..legs {
            let len = rng.gen_range(min_len..=max_len);
            let procs = (0..len).map(|_| self.profile.sample(&mut rng)).collect();
            chains.push(Chain::new(procs).expect("len >= 1"));
        }
        Spider::new(chains).expect("legs >= 1")
    }

    /// A random tree of `size` processors in which each new node attaches
    /// to a uniformly random earlier node (or the master), giving the
    /// classic random recursive tree shape.
    pub fn tree(&self, size: usize) -> Tree {
        assert!(size >= 1);
        let mut rng = self.rng();
        let mut nodes = Vec::with_capacity(size);
        for id in 1..=size {
            let parent = rng.gen_range(0..id);
            let p = self.profile.sample(&mut rng);
            nodes.push(TreeNode { parent, comm: p.comm, work: p.work });
        }
        Tree::new(nodes).expect("parents precede children by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_instance() {
        let a = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 42);
        let b = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 42);
        assert_eq!(a.chain(8), b.chain(8));
        assert_eq!(a.spider(3, 1, 4), b.spider(3, 1, 4));
        assert_eq!(a.tree(12), b.tree(12));
        assert_eq!(a.fork(6), b.fork(6));
    }

    #[test]
    fn different_seeds_differ() {
        let a = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 1);
        let b = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 2);
        // With 16 processors over a 5x5 grid of values a collision is
        // astronomically unlikely; treat equality as a bug.
        assert_ne!(a.chain(16), b.chain(16));
    }

    #[test]
    fn profiles_respect_their_regimes() {
        let comm = GeneratorConfig::new(HeterogeneityProfile::CommBound, 7).chain(32);
        assert!(comm.processors().iter().all(|p| p.comm >= p.work));
        let compute = GeneratorConfig::new(HeterogeneityProfile::ComputeBound, 7).chain(32);
        assert!(compute.processors().iter().all(|p| p.comm <= p.work));
        let homo =
            GeneratorConfig::new(HeterogeneityProfile::Homogeneous { c: 2, w: 3 }, 7).chain(8);
        assert!(homo.processors().iter().all(|p| p.comm == 2 && p.work == 3));
        let corr = GeneratorConfig::new(HeterogeneityProfile::Correlated, 7).chain(32);
        assert!(corr.processors().iter().all(|p| p.work >= p.comm));
    }

    #[test]
    fn generated_sizes_match_requests() {
        let g = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 3);
        assert_eq!(g.chain(5).len(), 5);
        assert_eq!(g.fork(7).len(), 7);
        let s = g.spider(4, 2, 3);
        assert_eq!(s.num_legs(), 4);
        assert!(s.legs().iter().all(|l| (2..=3).contains(&l.len())));
        assert_eq!(g.tree(9).len(), 9);
    }

    #[test]
    fn profile_names_are_stable() {
        assert_eq!(HeterogeneityProfile::CommBound.name(), "comm-bound");
        assert_eq!(HeterogeneityProfile::Bimodal { fast_pct: 10 }.name(), "bimodal");
    }

    #[test]
    fn profile_lookup_inverts_names() {
        for profile in HeterogeneityProfile::ALL {
            assert_eq!(HeterogeneityProfile::by_name(profile.name()), Some(profile));
        }
        let corr = HeterogeneityProfile::Correlated;
        assert_eq!(HeterogeneityProfile::by_name(corr.name()), Some(corr));
        assert_eq!(HeterogeneityProfile::by_name("alien"), None);
    }
}
