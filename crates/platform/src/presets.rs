//! Named platform presets modelling the paper's motivating scenarios.
//!
//! The introduction motivates the problem with wide-area volunteer
//! computing (SETI@home, the Mersenne prime search) and the related-work
//! section with layered networks reduced to heterogeneous chains
//! (reference \[7], Li 2002). These presets give the examples,
//! experiments and docs a shared, recognisable vocabulary of platforms —
//! all deterministic, no RNG involved.

use crate::chain::Chain;
use crate::fork::Fork;
use crate::spider::Spider;
use crate::time::Time;

/// The paper's own worked instance (Figure 2): `c = (2, 3)`,
/// `w = (3, 5)`. Identical to [`Chain::paper_figure2`], re-exported here
/// so all presets live in one namespace.
pub fn figure2_chain() -> Chain {
    Chain::paper_figure2()
}

/// A layered network à la the paper's reference \[7]: `depth` stages,
/// links slowing with distance (aggregation cost) while the folded
/// compute stages speed up — the platform where the optimal schedule's
/// "how deep to forward" decision is most visible.
pub fn layered_network(depth: usize) -> Chain {
    assert!((1..=64).contains(&depth), "depth out of the sensible range");
    let pairs: Vec<(Time, Time)> =
        (0..depth).map(|d| (1 + d as Time, 1 + 2 * (depth - d) as Time)).collect();
    Chain::from_pairs(&pairs).expect("positive by construction")
}

/// A campus cluster: a handful of identical machines behind one switch
/// (a homogeneous fork) — the degenerate case where the divisible-load
/// bus results of the paper's reference \[10] apply.
pub fn campus_cluster(machines: usize, comm: Time, work: Time) -> Fork {
    assert!(machines >= 1);
    Fork::from_pairs(&vec![(comm, work); machines]).expect("positive parameters")
}

/// A volunteer pool in the SETI@home spirit: a few fast dedicated sites
/// on good links plus a tail of slow home machines on poor links,
/// arranged as a fork (every volunteer talks directly to the master).
pub fn volunteer_pool(fast_sites: usize, slow_sites: usize) -> Fork {
    assert!(fast_sites + slow_sites >= 1);
    let mut pairs = Vec::with_capacity(fast_sites + slow_sites);
    for i in 0..fast_sites {
        pairs.push((1 + (i as Time % 2), 2 + (i as Time % 3)));
    }
    for i in 0..slow_sites {
        pairs.push((3 + (i as Time % 4), 8 + (i as Time % 5)));
    }
    Fork::from_pairs(&pairs).expect("positive parameters")
}

/// A federation of laboratories: each lab is a short chain (gateway then
/// workers) hanging off the master — the spider of the paper's
/// Section 7 in its most natural clothing.
pub fn lab_federation(labs: usize) -> Spider {
    assert!((1..=16).contains(&labs));
    let mut legs: Vec<Vec<(Time, Time)>> = Vec::with_capacity(labs);
    for l in 0..labs as Time {
        // Gateway: decent link, modest compute; workers behind it.
        legs.push(vec![(1 + l % 3, 4 + l % 2), (2, 2 + l % 4), (1 + l % 2, 3)]);
    }
    let refs: Vec<&[(Time, Time)]> = legs.iter().map(Vec::as_slice).collect();
    Spider::from_legs(&refs).expect("positive parameters")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_alias_matches() {
        assert_eq!(figure2_chain(), Chain::paper_figure2());
    }

    #[test]
    fn layered_network_shapes() {
        let c = layered_network(6);
        assert_eq!(c.len(), 6);
        // Links slow down with depth, compute speeds up.
        for d in 1..6 {
            assert!(c.c(d + 1) > c.c(d));
            assert!(c.w(d + 1) < c.w(d));
        }
        assert_eq!(layered_network(1).len(), 1);
    }

    #[test]
    #[should_panic(expected = "sensible range")]
    fn layered_network_rejects_zero_depth() {
        let _ = layered_network(0);
    }

    #[test]
    fn campus_cluster_is_homogeneous() {
        let f = campus_cluster(5, 2, 7);
        assert_eq!(f.len(), 5);
        assert!(f.slaves().iter().all(|p| p.comm == 2 && p.work == 7));
    }

    #[test]
    fn volunteer_pool_mixes_fast_and_slow() {
        let f = volunteer_pool(2, 6);
        assert_eq!(f.len(), 8);
        let fastest = f.slaves().iter().map(|p| p.work).min().unwrap();
        let slowest = f.slaves().iter().map(|p| p.work).max().unwrap();
        assert!(slowest >= 3 * fastest, "pool should be strongly bimodal");
        // degenerate but valid: all-slow pool
        assert_eq!(volunteer_pool(0, 3).len(), 3);
    }

    #[test]
    fn lab_federation_is_a_proper_spider() {
        let s = lab_federation(4);
        assert_eq!(s.num_legs(), 4);
        assert!(s.legs().iter().all(|leg| leg.len() == 3));
        assert!(!s.is_fork());
    }

    #[test]
    fn presets_are_deterministic() {
        assert_eq!(lab_federation(3), lab_federation(3));
        assert_eq!(volunteer_pool(2, 2), volunteer_pool(2, 2));
        assert_eq!(layered_network(4), layered_network(4));
    }
}
