//! Error type shared by all platform constructors and parsers.

use std::fmt;

/// Errors produced while building or parsing a platform description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// A latency or processing time was zero or negative.
    ///
    /// The paper assumes strictly positive `c_i` and `w_i`: a zero latency
    /// would let the master flood a link, and a zero processing time would
    /// make a processor infinitely fast, both of which break the one-port
    /// reasoning of Definition 1.
    NonPositiveTime {
        /// Which field was invalid (`"c"` or `"w"`).
        field: &'static str,
        /// 1-based processor index, when meaningful.
        index: usize,
        /// The offending value.
        value: i64,
    },
    /// A topology was empty where at least one processor is required.
    EmptyTopology(&'static str),
    /// A structural rule was violated (e.g. a spider chain of length zero,
    /// a tree edge pointing to a missing node, a cycle in a tree).
    Structure(String),
    /// The instance text format could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::NonPositiveTime { field, index, value } => {
                write!(f, "{field}_{index} = {value} must be strictly positive")
            }
            PlatformError::EmptyTopology(what) => {
                write!(f, "{what} must contain at least one processor")
            }
            PlatformError::Structure(msg) => write!(f, "invalid structure: {msg}"),
            PlatformError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PlatformError::NonPositiveTime { field: "c", index: 3, value: 0 };
        assert_eq!(e.to_string(), "c_3 = 0 must be strictly positive");
        let e = PlatformError::EmptyTopology("chain");
        assert!(e.to_string().contains("chain"));
        let e = PlatformError::Parse { line: 7, message: "bad token".into() };
        assert!(e.to_string().contains("line 7"));
    }
}
