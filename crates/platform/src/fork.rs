//! The fork (star) topology of the paper's Section 6.

use crate::error::PlatformError;
use crate::processor::Processor;
use crate::time::Time;
use std::fmt;

/// A fork graph: the master directly feeds `p` slaves, slave `i` through a
/// link of latency `c_i`, computing one task in `w_i`.
///
/// This is the topology solved by Beaumont, Carter, Ferrante, Legrand and
/// Robert (IPDPS 2002) — the paper's reference \[2] — whose algorithm the
/// spider construction of Section 7 reuses. The master obeys the one-port
/// model: it sends at most one task at a time, over whichever link.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fork {
    slaves: Vec<Processor>,
}

impl Fork {
    /// Builds a fork from its slaves.
    pub fn new(slaves: Vec<Processor>) -> Result<Self, PlatformError> {
        if slaves.is_empty() {
            return Err(PlatformError::EmptyTopology("fork"));
        }
        Ok(Fork { slaves })
    }

    /// Builds a fork from `(c_i, w_i)` pairs, validating positivity.
    pub fn from_pairs(pairs: &[(Time, Time)]) -> Result<Self, PlatformError> {
        if pairs.is_empty() {
            return Err(PlatformError::EmptyTopology("fork"));
        }
        let mut slaves = Vec::with_capacity(pairs.len());
        for (idx, &(c, w)) in pairs.iter().enumerate() {
            if c <= 0 {
                return Err(PlatformError::NonPositiveTime {
                    field: "c",
                    index: idx + 1,
                    value: c,
                });
            }
            if w <= 0 {
                return Err(PlatformError::NonPositiveTime {
                    field: "w",
                    index: idx + 1,
                    value: w,
                });
            }
            slaves.push(Processor { comm: c, work: w });
        }
        Ok(Fork { slaves })
    }

    /// Number of slaves.
    #[inline]
    pub fn len(&self) -> usize {
        self.slaves.len()
    }

    /// `true` iff there are no slaves (never constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slaves.is_empty()
    }

    /// Link latency `c_i` of slave `i` (**1-based**).
    #[inline]
    pub fn c(&self, i: usize) -> Time {
        self.slaves[i - 1].comm
    }

    /// Processing time `w_i` of slave `i` (**1-based**).
    #[inline]
    pub fn w(&self, i: usize) -> Time {
        self.slaves[i - 1].work
    }

    /// Slave `i` (**1-based**).
    #[inline]
    pub fn slave(&self, i: usize) -> Processor {
        self.slaves[i - 1]
    }

    /// All slaves (0-based slice).
    #[inline]
    pub fn slaves(&self) -> &[Processor] {
        &self.slaves
    }

    /// An upper bound on the makespan of `n` tasks: run everything on the
    /// slave with the best single-task round trip, back to back.
    pub fn makespan_upper_bound(&self, n: usize) -> Time {
        assert!(n >= 1);
        self.slaves
            .iter()
            .map(|p| p.comm + (n as Time - 1) * p.period() + p.work)
            .min()
            .expect("fork is non-empty")
    }
}

impl fmt::Display for Fork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fork[")?;
        for (i, p) in self.slaves.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_validates() {
        assert!(Fork::from_pairs(&[]).is_err());
        assert!(Fork::from_pairs(&[(1, 0)]).is_err());
        assert!(Fork::from_pairs(&[(0, 1)]).is_err());
        let f = Fork::from_pairs(&[(1, 2), (3, 4)]).unwrap();
        assert_eq!(f.len(), 2);
        assert_eq!(f.c(2), 3);
        assert_eq!(f.w(2), 4);
    }

    #[test]
    fn upper_bound_picks_best_slave() {
        let f = Fork::from_pairs(&[(1, 10), (2, 3)]).unwrap();
        // slave 1: 1 + (n-1)*10 + 10 ; slave 2: 2 + (n-1)*3 + 3
        assert_eq!(f.makespan_upper_bound(1), 5); // slave 2: 2 + 3
        assert_eq!(f.makespan_upper_bound(4), 2 + 9 + 3); // slave 2 wins
    }

    #[test]
    fn display_lists_slaves() {
        let f = Fork::from_pairs(&[(1, 2), (3, 4)]).unwrap();
        assert_eq!(f.to_string(), "fork[(c=1, w=2), (c=3, w=4)]");
    }
}
