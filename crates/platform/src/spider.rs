//! The spider topology of the paper's Sections 6–7 (Figure 5).

use crate::chain::Chain;
use crate::error::PlatformError;
use crate::fork::Fork;
use crate::processor::Processor;
use crate::time::Time;
use std::fmt;

/// Address of a processor inside a [`Spider`]: the (0-based) leg index and
/// the (**1-based**, paper-style) depth along that leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    /// Which chain (leg) of the spider, `0..spider.num_legs()`.
    pub leg: usize,
    /// Position along the leg, `1..=leg_len`, 1 adjacent to the master.
    pub depth: usize,
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "leg{}:{}", self.leg, self.depth)
    }
}

/// A spider graph: a tree whose only node of arity greater than two is the
/// master (the root), i.e. a bundle of [`Chain`]s sharing the master.
///
/// The master sends at most one task at a time *in total* (one out-port
/// shared by all legs); within each leg the chain semantics of
/// [`Chain`] apply unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Spider {
    legs: Vec<Chain>,
}

impl Spider {
    /// Builds a spider from its legs.
    pub fn new(legs: Vec<Chain>) -> Result<Self, PlatformError> {
        if legs.is_empty() {
            return Err(PlatformError::EmptyTopology("spider"));
        }
        Ok(Spider { legs })
    }

    /// Builds a spider from per-leg `(c, w)` pair lists.
    pub fn from_legs(legs: &[&[(Time, Time)]]) -> Result<Self, PlatformError> {
        if legs.is_empty() {
            return Err(PlatformError::EmptyTopology("spider"));
        }
        let mut chains = Vec::with_capacity(legs.len());
        for leg in legs {
            chains.push(Chain::from_pairs(leg)?);
        }
        Ok(Spider { legs: chains })
    }

    /// A spider with a single leg — semantically identical to that chain.
    pub fn from_chain(chain: Chain) -> Spider {
        Spider { legs: vec![chain] }
    }

    /// A spider whose legs all have length one — semantically identical to
    /// the given fork (star).
    pub fn from_fork(fork: &Fork) -> Spider {
        let legs = fork
            .slaves()
            .iter()
            .map(|&p| Chain::new(vec![p]).expect("single-processor chain"))
            .collect();
        Spider { legs }
    }

    /// Number of legs (the arity of the master).
    #[inline]
    pub fn num_legs(&self) -> usize {
        self.legs.len()
    }

    /// Total number of processors over all legs.
    pub fn num_processors(&self) -> usize {
        self.legs.iter().map(Chain::len).sum()
    }

    /// Leg `l` (0-based).
    #[inline]
    pub fn leg(&self, l: usize) -> &Chain {
        &self.legs[l]
    }

    /// All legs.
    #[inline]
    pub fn legs(&self) -> &[Chain] {
        &self.legs
    }

    /// The processor at `id`.
    #[inline]
    pub fn node(&self, id: NodeId) -> Processor {
        self.legs[id.leg].proc(id.depth)
    }

    /// Iterator over every node address.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.legs
            .iter()
            .enumerate()
            .flat_map(|(leg, chain)| (1..=chain.len()).map(move |depth| NodeId { leg, depth }))
    }

    /// An always-feasible makespan upper bound for `n` tasks: the best
    /// single-leg `T_infinity` (run everything on one leg's first
    /// processor).
    pub fn makespan_upper_bound(&self, n: usize) -> Time {
        assert!(n >= 1);
        self.legs.iter().map(|c| c.t_infinity(n)).min().expect("spider is non-empty")
    }

    /// `true` iff the spider degenerates to a single chain.
    #[inline]
    pub fn is_chain(&self) -> bool {
        self.legs.len() == 1
    }

    /// `true` iff the spider degenerates to a fork (all legs length 1).
    pub fn is_fork(&self) -> bool {
        self.legs.iter().all(|c| c.len() == 1)
    }

    /// The fork obtained by keeping only the first processor of each leg,
    /// or the exact equivalent fork when [`Spider::is_fork`].
    pub fn head_fork(&self) -> Fork {
        let slaves = self.legs.iter().map(|c| c.proc(1)).collect();
        Fork::new(slaves).expect("spider has legs")
    }
}

impl fmt::Display for Spider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "spider ({} legs):", self.legs.len())?;
        for (i, leg) in self.legs.iter().enumerate() {
            writeln!(f, "  leg {i}: {leg}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Spider {
        Spider::from_legs(&[&[(2, 3), (3, 5)], &[(1, 4)], &[(2, 2), (2, 2), (2, 2)]]).unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let s = sample();
        assert_eq!(s.num_legs(), 3);
        assert_eq!(s.num_processors(), 6);
        assert!(!s.is_chain());
        assert!(!s.is_fork());
    }

    #[test]
    fn rejects_empty() {
        assert!(Spider::from_legs(&[]).is_err());
        let empty: &[(Time, Time)] = &[];
        assert!(Spider::from_legs(&[empty]).is_err());
    }

    #[test]
    fn node_addressing_is_one_based_in_depth() {
        let s = sample();
        let n = s.node(NodeId { leg: 0, depth: 2 });
        assert_eq!((n.comm, n.work), (3, 5));
        let n = s.node(NodeId { leg: 1, depth: 1 });
        assert_eq!((n.comm, n.work), (1, 4));
    }

    #[test]
    fn node_ids_enumerates_all() {
        let s = sample();
        let ids: Vec<NodeId> = s.node_ids().collect();
        assert_eq!(ids.len(), 6);
        assert!(ids.contains(&NodeId { leg: 2, depth: 3 }));
        assert!(!ids.contains(&NodeId { leg: 1, depth: 2 }));
    }

    #[test]
    fn degenerate_conversions() {
        let chain = Chain::paper_figure2();
        let s = Spider::from_chain(chain.clone());
        assert!(s.is_chain());
        assert_eq!(s.leg(0), &chain);

        let f = Fork::from_pairs(&[(1, 2), (3, 4)]).unwrap();
        let s = Spider::from_fork(&f);
        assert!(s.is_fork());
        assert_eq!(s.head_fork(), f);
    }

    #[test]
    fn upper_bound_picks_best_leg() {
        let s = sample();
        // leg 0: 2 + (n-1)*3 + 3 ; leg 1: 1 + (n-1)*4 + 4 ; leg 2: 2+(n-1)*2+2
        assert_eq!(s.makespan_upper_bound(1), 4); // leg 2: 2 + 2
        assert_eq!(s.makespan_upper_bound(10), 2 + 9 * 2 + 2); // leg 2
    }
}
