//! The chain topology of the paper's Figure 1.

use crate::error::PlatformError;
use crate::processor::Processor;
use crate::time::Time;
use std::fmt;

/// A chain of heterogeneous processors fed by a master.
///
/// Processors are numbered `1..=p` as in the paper, processor 1 being the
/// one directly connected to the master (the source of tasks). Processor
/// `i` is reached through a link of latency `c_i` leaving processor
/// `i - 1` (the master for `i = 1`) and computes one task in `w_i` ticks.
///
/// ```text
///            c_1          c_2                 c_p
///  master ────────► w_1 ────────► w_2  ···  ────────► w_p
/// ```
///
/// Every node obeys the one-port model: at most one incoming and one
/// outgoing communication at any time, but communication and computation
/// overlap freely, and received tasks may be buffered.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Chain {
    procs: Vec<Processor>,
}

impl Chain {
    /// Builds a chain from processors listed master-outwards.
    pub fn new(procs: Vec<Processor>) -> Result<Self, PlatformError> {
        if procs.is_empty() {
            return Err(PlatformError::EmptyTopology("chain"));
        }
        Ok(Chain { procs })
    }

    /// Builds a chain from `(c_i, w_i)` pairs listed master-outwards,
    /// validating positivity.
    ///
    /// ```
    /// use mst_platform::Chain;
    /// let chain = Chain::from_pairs(&[(2, 3), (3, 5)]).unwrap();
    /// assert_eq!(chain.len(), 2);
    /// assert_eq!((chain.c(1), chain.w(2)), (2, 5));
    /// assert!(Chain::from_pairs(&[(0, 1)]).is_err());
    /// ```
    pub fn from_pairs(pairs: &[(Time, Time)]) -> Result<Self, PlatformError> {
        if pairs.is_empty() {
            return Err(PlatformError::EmptyTopology("chain"));
        }
        let mut procs = Vec::with_capacity(pairs.len());
        for (idx, &(c, w)) in pairs.iter().enumerate() {
            if c <= 0 {
                return Err(PlatformError::NonPositiveTime {
                    field: "c",
                    index: idx + 1,
                    value: c,
                });
            }
            if w <= 0 {
                return Err(PlatformError::NonPositiveTime {
                    field: "w",
                    index: idx + 1,
                    value: w,
                });
            }
            procs.push(Processor { comm: c, work: w });
        }
        Ok(Chain { procs })
    }

    /// The worked example of the paper's Figure 2: a two-processor chain
    /// with `c = (2, 3)` and `w = (3, 5)`.
    ///
    /// With `n = 5` tasks the optimal makespan is 14, the first-link
    /// emission times are `{0, 2, 4, 6, 9}`, one task runs on processor 2
    /// (the one emitted at time 4) and the second task received by
    /// processor 1 is buffered for one tick before starting — the dashed
    /// curve of Figure 2. Its fork transformation (Figure 7) yields five
    /// single-task slaves with communication time 2 and processing times
    /// `{12, 10, 8, 6, 3}`, the task mapped to processor 2 being the node
    /// of processing time 8, exactly as the paper states.
    pub fn paper_figure2() -> Chain {
        Chain::from_pairs(&[(2, 3), (3, 5)]).expect("static example is valid")
    }

    /// Number of processors `p`.
    #[inline]
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// `true` iff the chain has no processors (never constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Latency `c_i` of the link entering processor `i` (**1-based**, as in
    /// the paper). Panics if `i` is out of `1..=p`.
    #[inline]
    pub fn c(&self, i: usize) -> Time {
        self.procs[i - 1].comm
    }

    /// Processing time `w_i` of processor `i` (**1-based**).
    #[inline]
    pub fn w(&self, i: usize) -> Time {
        self.procs[i - 1].work
    }

    /// Processor `i` (**1-based**).
    #[inline]
    pub fn proc(&self, i: usize) -> Processor {
        self.procs[i - 1]
    }

    /// All processors, master-outwards (0-based slice).
    #[inline]
    pub fn processors(&self) -> &[Processor] {
        &self.procs
    }

    /// The sub-chain `(c_i, w_i)_{i in from..=p}` rooted one hop further
    /// from the master, as used by Lemma 2 (`from` is 1-based; `from = 2`
    /// drops the first processor). Returns `None` when the sub-chain
    /// would be empty.
    pub fn subchain(&self, from: usize) -> Option<Chain> {
        if from < 1 || from > self.procs.len() {
            return None;
        }
        Some(Chain { procs: self.procs[from - 1..].to_vec() })
    }

    /// The sum of link latencies `c_1 + ... + c_k` (1-based, inclusive):
    /// the minimum travel time of a task to processor `k`.
    pub fn travel_time(&self, k: usize) -> Time {
        self.procs[..k].iter().map(|p| p.comm).sum()
    }

    /// `T_infinity` of Section 3: the makespan of the trivial schedule
    /// placing all `n` tasks on processor 1,
    /// `c_1 + (n - 1) * max(w_1, c_1) + w_1`.
    ///
    /// The backward construction of the chain algorithm anchors the end of
    /// the schedule at this value; it is always achievable, hence an upper
    /// bound on the optimal makespan.
    pub fn t_infinity(&self, n: usize) -> Time {
        assert!(n >= 1, "t_infinity requires at least one task");
        let c1 = self.c(1);
        let w1 = self.w(1);
        c1 + (n as Time - 1) * w1.max(c1) + w1
    }

    /// A simple analytic lower bound on the makespan of `n` tasks.
    ///
    /// Every task crosses link 1 and emissions on link 1 are spaced by at
    /// least `c_1` (property (4)); the last-emitted task still has to
    /// reach some processor `k` and be computed, which costs at least
    /// `min_k (c_2 + ... + c_k + w_k)` after its link-1 emission completes.
    /// Hence `makespan >= n * c_1 + min_k (travel(2..k) + w_k)` ... except
    /// that when all tasks run on processor 1 the pipeline bound
    /// `c_1 + n * w_1` may be weaker/stronger, so we also take the best
    /// single-processor completion for one task as the tail.
    pub fn makespan_lower_bound(&self, n: usize) -> Time {
        assert!(n >= 1);
        let c1 = self.c(1);
        // Tail: cheapest way to finish ONE task once its link-1 emission
        // slot is over: continue to processor k (k >= 1).
        let mut tail = Time::MAX;
        let mut travel_past_1 = 0;
        for k in 1..=self.len() {
            if k > 1 {
                travel_past_1 += self.c(k);
            }
            tail = tail.min(travel_past_1 + self.w(k));
        }
        (n as Time) * c1 + tail
    }

    /// Steady-state task throughput upper bound, as a rational
    /// `(tasks, ticks)`: the bandwidth-centric recursive bound
    /// `rate(i) = min(1 / c_i, 1 / w_i + rate(i + 1))`.
    ///
    /// Returned as an exact fraction to avoid floating-point drift;
    /// `rate = tasks / ticks`. This matches the steady-state analysis the
    /// paper cites from Beaumont et al. and is used by the steady-state
    /// experiment (E2 in DESIGN.md).
    pub fn steady_state_rate(&self) -> (u64, u64) {
        // Work backwards from the tail of the chain with exact fractions.
        let mut num: u64 = 0; // tasks
        let mut den: u64 = 1; // ticks
        for p in self.procs.iter().rev() {
            // rate = min(1/c_i, 1/w_i + num/den)
            let (cn, cd) = (1u64, p.comm as u64);
            // 1/w + num/den = (den + w*num) / (w*den)
            let sn = den + p.work as u64 * num;
            let sd = p.work as u64 * den;
            // min of cn/cd and sn/sd
            let (rn, rd) = if cn * sd <= sn * cd { (cn, cd) } else { (sn, sd) };
            let g = gcd(rn, rd);
            num = rn / g;
            den = rd / g;
        }
        (num, den)
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a.max(1)
    } else {
        gcd(b, a % b)
    }
}

impl fmt::Display for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chain[")?;
        for (i, p) in self.procs.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_validates() {
        assert!(Chain::from_pairs(&[]).is_err());
        assert!(Chain::from_pairs(&[(0, 1)]).is_err());
        assert!(Chain::from_pairs(&[(1, 0)]).is_err());
        let ch = Chain::from_pairs(&[(2, 5), (3, 3)]).unwrap();
        assert_eq!(ch.len(), 2);
    }

    #[test]
    fn one_based_accessors_match_paper_indices() {
        let ch = Chain::paper_figure2();
        assert_eq!(ch.c(1), 2);
        assert_eq!(ch.w(1), 3);
        assert_eq!(ch.c(2), 3);
        assert_eq!(ch.w(2), 5);
    }

    #[test]
    fn t_infinity_matches_formula() {
        let ch = Chain::paper_figure2();
        // c1 + (n-1) * max(w1, c1) + w1 = 2 + 4*3 + 3 = 17 for n = 5
        assert_eq!(ch.t_infinity(5), 17);
        assert_eq!(ch.t_infinity(1), 2 + 3);
        // comm-bound first processor: max(w1, c1) = c1
        let cb = Chain::from_pairs(&[(7, 3)]).unwrap();
        assert_eq!(cb.t_infinity(3), 7 + 2 * 7 + 3);
    }

    #[test]
    fn subchain_drops_front() {
        let ch = Chain::paper_figure2();
        let sub = ch.subchain(2).unwrap();
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.c(1), 3);
        assert_eq!(sub.w(1), 5);
        assert!(ch.subchain(3).is_none());
        assert!(ch.subchain(0).is_none());
        assert_eq!(ch.subchain(1).unwrap(), ch);
    }

    #[test]
    fn travel_time_accumulates_latencies() {
        let ch = Chain::from_pairs(&[(2, 5), (3, 3), (4, 1)]).unwrap();
        assert_eq!(ch.travel_time(1), 2);
        assert_eq!(ch.travel_time(2), 5);
        assert_eq!(ch.travel_time(3), 9);
    }

    #[test]
    fn lower_bound_below_t_infinity() {
        let ch = Chain::paper_figure2();
        for n in 1..10 {
            assert!(ch.makespan_lower_bound(n) <= ch.t_infinity(n));
        }
    }

    #[test]
    fn lower_bound_figure2_value() {
        let ch = Chain::paper_figure2();
        // The last of 5 link-1 emissions completes at >= 5 * 2 = 10, and
        // that task still needs min(w1, c2 + w2) = min(3, 8) = 3 ticks:
        // bound 13, one below the true optimum 14 (the bound is not tight
        // because processor 1's pipeline saturates earlier).
        assert_eq!(ch.makespan_lower_bound(5), 13);
    }

    #[test]
    fn steady_state_rate_examples() {
        // Single processor (c=2, w=5): rate = min(1/2, 1/5) = 1/5
        let ch = Chain::from_pairs(&[(2, 5)]).unwrap();
        assert_eq!(ch.steady_state_rate(), (1, 5));
        // Figure 2 chain: rate(2) = min(1/3, 1/5) = 1/5;
        // rate(1) = min(1/2, 1/3 + 1/5) = min(1/2, 8/15) = 1/2
        let ch = Chain::paper_figure2();
        assert_eq!(ch.steady_state_rate(), (1, 2));
    }

    #[test]
    fn display_shows_structure() {
        let s = Chain::paper_figure2().to_string();
        assert!(s.contains("(c=2, w=3)"));
        assert!(s.contains("->"));
    }
}
