//! A tiny line-oriented text format for platform instances.
//!
//! Rather than pulling a serialization framework, instances are stored in
//! a human-editable format:
//!
//! ```text
//! # comments start with '#'
//! chain
//! 2 3     # c_1 w_1
//! 3 5     # c_2 w_2
//! ```
//!
//! ```text
//! spider
//! leg 2 3  3 5      # one leg per line: c_1 w_1  c_2 w_2 ...
//! leg 1 4
//! ```
//!
//! ```text
//! tree
//! node 0 1 2        # parent c w (ids assigned 1.. in file order)
//! node 1 2 3
//! ```
//!
//! Forks are written as `fork` followed by `c w` lines, like chains.

use crate::chain::Chain;
use crate::error::PlatformError;
use crate::fork::Fork;
use crate::spider::Spider;
use crate::time::Time;
use crate::tree::Tree;
use std::fmt::Write as _;

/// Any parsed platform instance.
#[derive(Debug, Clone, PartialEq)]
pub enum Instance {
    /// A chain of processors.
    Chain(Chain),
    /// A fork (star).
    Fork(Fork),
    /// A spider.
    Spider(Spider),
    /// A general tree.
    Tree(Tree),
}

fn parse_err(line: usize, message: impl Into<String>) -> PlatformError {
    PlatformError::Parse { line, message: message.into() }
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn parse_times(tokens: &[&str], line_no: usize) -> Result<Vec<Time>, PlatformError> {
    tokens
        .iter()
        .map(|t| {
            t.parse::<Time>()
                .map_err(|_| parse_err(line_no, format!("expected an integer, found {t:?}")))
        })
        .collect()
}

/// Parses an instance from its text form.
///
/// ```
/// use mst_platform::format::{parse, Instance};
/// let inst = parse("chain\n2 3\n3 5\n").unwrap();
/// let Instance::Chain(chain) = inst else { panic!() };
/// assert_eq!(chain.len(), 2);
/// ```
pub fn parse(text: &str) -> Result<Instance, PlatformError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, strip_comment(l).trim()))
        .filter(|(_, l)| !l.is_empty());

    let (header_line, header) = lines.next().ok_or_else(|| parse_err(1, "empty instance"))?;
    match header {
        "chain" | "fork" => {
            let mut pairs = Vec::new();
            for (no, line) in lines {
                let tokens: Vec<&str> = line.split_whitespace().collect();
                let values = parse_times(&tokens, no)?;
                if values.len() != 2 {
                    return Err(parse_err(no, "expected exactly `c w`"));
                }
                pairs.push((values[0], values[1]));
            }
            if header == "chain" {
                Chain::from_pairs(&pairs).map(Instance::Chain)
            } else {
                Fork::from_pairs(&pairs).map(Instance::Fork)
            }
        }
        "spider" => {
            let mut legs: Vec<Vec<(Time, Time)>> = Vec::new();
            for (no, line) in lines {
                let tokens: Vec<&str> = line.split_whitespace().collect();
                match tokens.split_first() {
                    Some((&"leg", rest)) => {
                        let values = parse_times(rest, no)?;
                        if values.is_empty() || values.len() % 2 != 0 {
                            return Err(parse_err(no, "leg needs pairs `c w  c w ...`"));
                        }
                        legs.push(values.chunks(2).map(|cw| (cw[0], cw[1])).collect());
                    }
                    _ => return Err(parse_err(no, "expected `leg c w ...`")),
                }
            }
            let refs: Vec<&[(Time, Time)]> = legs.iter().map(Vec::as_slice).collect();
            Spider::from_legs(&refs).map(Instance::Spider)
        }
        "tree" => {
            let mut triples = Vec::new();
            for (no, line) in lines {
                let tokens: Vec<&str> = line.split_whitespace().collect();
                match tokens.split_first() {
                    Some((&"node", rest)) if rest.len() == 3 => {
                        let parent: usize =
                            rest[0].parse().map_err(|_| parse_err(no, "bad parent id"))?;
                        let values = parse_times(&rest[1..], no)?;
                        triples.push((parent, values[0], values[1]));
                    }
                    _ => return Err(parse_err(no, "expected `node parent c w`")),
                }
            }
            Tree::from_triples(&triples).map(Instance::Tree)
        }
        other => Err(parse_err(header_line, format!("unknown topology {other:?}"))),
    }
}

/// Serializes an instance to the text form accepted by [`parse`].
pub fn to_text(instance: &Instance) -> String {
    let mut out = String::new();
    match instance {
        Instance::Chain(chain) => {
            out.push_str("chain\n");
            for p in chain.processors() {
                writeln!(out, "{} {}", p.comm, p.work).unwrap();
            }
        }
        Instance::Fork(fork) => {
            out.push_str("fork\n");
            for p in fork.slaves() {
                writeln!(out, "{} {}", p.comm, p.work).unwrap();
            }
        }
        Instance::Spider(spider) => {
            out.push_str("spider\n");
            for leg in spider.legs() {
                out.push_str("leg");
                for p in leg.processors() {
                    write!(out, " {} {}", p.comm, p.work).unwrap();
                }
                out.push('\n');
            }
        }
        Instance::Tree(tree) => {
            out.push_str("tree\n");
            for n in tree.nodes() {
                writeln!(out, "node {} {} {}", n.parent, n.comm, n.work).unwrap();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, HeterogeneityProfile};

    #[test]
    fn chain_round_trip() {
        let inst = Instance::Chain(Chain::paper_figure2());
        let text = to_text(&inst);
        assert_eq!(parse(&text).unwrap(), inst);
    }

    #[test]
    fn fork_round_trip() {
        let inst = Instance::Fork(Fork::from_pairs(&[(1, 2), (3, 4), (5, 6)]).unwrap());
        assert_eq!(parse(&to_text(&inst)).unwrap(), inst);
    }

    #[test]
    fn spider_round_trip() {
        let spider = Spider::from_legs(&[&[(2, 3), (3, 5)], &[(1, 4)]]).unwrap();
        let inst = Instance::Spider(spider);
        assert_eq!(parse(&to_text(&inst)).unwrap(), inst);
    }

    #[test]
    fn tree_round_trip() {
        let tree = Tree::from_triples(&[(0, 1, 2), (1, 2, 3), (1, 3, 4)]).unwrap();
        let inst = Instance::Tree(tree);
        assert_eq!(parse(&to_text(&inst)).unwrap(), inst);
    }

    #[test]
    fn random_instances_round_trip() {
        for seed in 0..20 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[seed as usize % 5], seed);
            for inst in [
                Instance::Chain(g.chain(6)),
                Instance::Fork(g.fork(5)),
                Instance::Spider(g.spider(3, 1, 3)),
                Instance::Tree(g.tree(7)),
            ] {
                assert_eq!(parse(&to_text(&inst)).unwrap(), inst, "seed {seed}");
            }
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a chain\nchain\n\n2 3   # first\n3 5\n";
        assert_eq!(parse(text).unwrap(), Instance::Chain(Chain::paper_figure2()));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        match parse("chain\n2\n") {
            Err(PlatformError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse("").is_err());
        assert!(parse("pentagon\n1 2\n").is_err());
        assert!(parse("spider\nleg 1\n").is_err());
        assert!(parse("tree\nnode 0 1\n").is_err());
        assert!(parse("chain\nx y\n").is_err());
    }
}
