//! # mst-platform — platform model for heterogeneous master-slave tasking
//!
//! This crate models the *platforms* of Dutot, "Master-slave Tasking on
//! Heterogeneous Processors" (IPPS 2003): a master node holding `n`
//! independent, identical tasks, connected to heterogeneous slave processors
//! through heterogeneous one-port communication links.
//!
//! The topologies of the paper are all provided:
//!
//! * [`Chain`] — processors in a line, the master feeding processor 1
//!   (Figure 1 of the paper). Processor `i` has an incoming-link latency
//!   `c_i` and a per-task processing time `w_i`.
//! * [`Fork`] — a star: every slave is a direct child of the master
//!   (the substrate of the paper's Section 6, from Beaumont et al.).
//! * [`Spider`] — a tree where only the master has arity greater than two,
//!   i.e. several chains glued at the master (Section 6, Figure 5).
//! * [`Tree`] — general out-trees, used by the `mst-tree` extension crate
//!   (the paper's stated future work) and by the exact baselines.
//!
//! Everything is measured in integer ticks ([`Time`]), exactly as in the
//! paper where emission and start times live in `N`.
//!
//! The crate also ships seeded random [`generator`]s for the heterogeneity
//! regimes exercised by the experiment harness, and a small hand-rolled
//! text [`mod@format`] so instances can be stored in files without pulling a
//! serialization framework.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chain;
pub mod error;
pub mod fork;
pub mod format;
pub mod generator;
pub mod presets;
pub mod processor;
pub mod spider;
pub mod time;
pub mod tree;

pub use chain::Chain;
pub use error::PlatformError;
pub use fork::Fork;
pub use generator::{GeneratorConfig, HeterogeneityProfile};
pub use processor::Processor;
pub use spider::{NodeId, Spider};
pub use time::Time;
pub use tree::{Tree, TreeNode};
