//! # mst-store — the persistent result store
//!
//! An append-only record of solved instances: which tenant solved what,
//! with which solver, how fast, and the full canonical solution — enough
//! to warm-start the in-memory solution cache of `mst-serve` after a
//! restart and to answer `GET /history` / `mst history` queries offline.
//!
//! Two zero-dependency backends implement one [`StoreBackend`] trait:
//!
//! * [`MemoryStore`] — a mutex-guarded vector, for tests and embedders;
//! * [`FileStore`] — an append-only file log of length-prefixed JSON
//!   frames (`[u32 LE length][record JSON]`). Opening a log validates it
//!   frame by frame and **truncates the torn tail** left by a crash or
//!   `SIGKILL` mid-append, so recovery is automatic: everything before
//!   the first bad byte survives, everything after it is dropped.
//!
//! [`FlakyStore`] wraps either backend with a toggleable write-failure
//! injection point, so degraded-mode tests and the chaos harness can
//! force the append path to fail deterministically and watch the service
//! keep serving.
//!
//! Records store the *canonical* form of each instance (see
//! `mst_api::canon`): the platform text and deadline are
//! post-normalisation, and `canon_hash` is the cache key's content hash,
//! so a warm start can insert each record into the memo without
//! re-solving or re-canonicalising anything.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use mst_api::wire::{solution_from_json, Json, WireError};
use mst_platform::Time;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Frames longer than this are treated as corruption, not data — no real
/// record comes close, and it bounds recovery-time allocations.
const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// One solved instance, as persisted.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Tenant the solve was accounted to (`"default"` for anonymous).
    pub tenant: String,
    /// Solver name the request asked for.
    pub solver: String,
    /// Canonical platform in the instance text format.
    pub platform: String,
    /// Task count of the instance.
    pub tasks: usize,
    /// Canonical deadline (already divided by the extracted scale);
    /// `None` for plain makespan solves.
    pub deadline: Option<Time>,
    /// The cache key's 128-bit content hash, as 32 lowercase hex digits.
    pub canon_hash: String,
    /// Makespan of the canonical solution.
    pub makespan: Time,
    /// Tasks scheduled by the witness (0 for unwitnessed solutions).
    pub scheduled: usize,
    /// Wall-clock solve time, microseconds.
    pub elapsed_us: u64,
    /// The canonical solution as a `mst_api::wire::solution_to_json`
    /// object — decodable via [`mst_api::wire::solution_from_json`].
    pub solution: Json,
}

impl Record {
    /// Encodes the record as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("tenant", Json::str(self.tenant.clone())),
            ("solver", Json::str(self.solver.clone())),
            ("platform", Json::str(self.platform.clone())),
            ("tasks", Json::int(self.tasks as i64)),
            ("deadline", self.deadline.map(Json::int).unwrap_or(Json::Null)),
            ("canon_hash", Json::str(self.canon_hash.clone())),
            ("makespan", Json::int(self.makespan)),
            ("scheduled", Json::int(self.scheduled as i64)),
            ("elapsed_us", Json::int(self.elapsed_us as i64)),
            ("solution", self.solution.clone()),
        ])
    }

    /// Decodes a record, validating field types — including that the
    /// embedded solution decodes as a well-formed wire solution.
    pub fn from_json(json: &Json) -> Result<Record, WireError> {
        let text = |key: &str| -> Result<String, WireError> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| WireError::new(format!("missing string field \"{key}\"")))
        };
        let non_negative = |key: &str| -> Result<i64, WireError> {
            json.get(key).and_then(Json::as_i64).filter(|&n| n >= 0).ok_or_else(|| {
                WireError::new(format!("missing non-negative integer field \"{key}\""))
            })
        };
        let deadline = match json.get("deadline") {
            None | Some(Json::Null) => None,
            Some(value) => Some(
                value.as_i64().ok_or_else(|| WireError::new("\"deadline\" must be an integer"))?,
            ),
        };
        let solution = json
            .get("solution")
            .ok_or_else(|| WireError::new("missing object field \"solution\""))?
            .clone();
        // The embedded solution must itself decode; a store carrying
        // undecodable solutions could never warm-start the cache.
        solution_from_json(&solution)?;
        Ok(Record {
            tenant: text("tenant")?,
            solver: text("solver")?,
            platform: text("platform")?,
            tasks: non_negative("tasks")? as usize,
            deadline,
            canon_hash: text("canon_hash")?,
            makespan: json
                .get("makespan")
                .and_then(Json::as_i64)
                .ok_or_else(|| WireError::new("missing integer field \"makespan\""))?,
            scheduled: non_negative("scheduled")? as usize,
            elapsed_us: non_negative("elapsed_us")? as u64,
            solution,
        })
    }
}

/// An append-only store of [`Record`]s. Implementations are thread-safe;
/// one instance serves every connection handler concurrently.
pub trait StoreBackend: Send + Sync + std::fmt::Debug {
    /// Appends one record durably (for file-backed stores, flushed
    /// before returning).
    fn append(&self, record: &Record) -> io::Result<()>;

    /// Appends a batch of records; the default loops [`StoreBackend::append`].
    fn append_all(&self, records: &[Record]) -> io::Result<()> {
        for record in records {
            self.append(record)?;
        }
        Ok(())
    }

    /// A snapshot of every record, oldest first.
    fn records(&self) -> Vec<Record>;

    /// Number of records currently stored.
    fn len(&self) -> usize;

    /// Whether the store holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Filters a record snapshot the way `GET /history` does: optional
/// tenant and solver equality filters, then the **newest** `limit`
/// records, newest first.
pub fn query<'a>(
    records: &'a [Record],
    tenant: Option<&str>,
    solver: Option<&str>,
    limit: usize,
) -> Vec<&'a Record> {
    records
        .iter()
        .rev()
        .filter(|r| tenant.is_none_or(|t| r.tenant == t))
        .filter(|r| solver.is_none_or(|s| r.solver == s))
        .take(limit)
        .collect()
}

/// The in-memory backend: a mutex-guarded vector.
#[derive(Debug, Default)]
pub struct MemoryStore {
    records: Mutex<Vec<Record>>,
}

impl MemoryStore {
    /// An empty in-memory store.
    pub fn new() -> MemoryStore {
        MemoryStore::default()
    }
}

impl StoreBackend for MemoryStore {
    fn append(&self, record: &Record) -> io::Result<()> {
        self.records.lock().expect("store poisoned").push(record.clone());
        Ok(())
    }

    fn records(&self) -> Vec<Record> {
        self.records.lock().expect("store poisoned").clone()
    }

    fn len(&self) -> usize {
        self.records.lock().expect("store poisoned").len()
    }
}

/// A fault-injection wrapper around any backend: while
/// [`FlakyStore::set_failing`] is on, every append returns an I/O error
/// without touching the inner store. This is the write-failure injection
/// point behind the degraded-mode server tests and the chaos harness —
/// a solve path in front of a `FlakyStore` must keep serving results
/// while the store is down and resume persisting when it recovers.
#[derive(Debug)]
pub struct FlakyStore {
    inner: std::sync::Arc<dyn StoreBackend>,
    failing: std::sync::atomic::AtomicBool,
    failed_appends: std::sync::atomic::AtomicU64,
}

impl FlakyStore {
    /// Wraps `inner`; writes succeed until [`FlakyStore::set_failing`].
    pub fn new(inner: std::sync::Arc<dyn StoreBackend>) -> FlakyStore {
        FlakyStore {
            inner,
            failing: std::sync::atomic::AtomicBool::new(false),
            failed_appends: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Turns write failure injection on or off.
    pub fn set_failing(&self, failing: bool) {
        self.failing.store(failing, std::sync::atomic::Ordering::SeqCst);
    }

    /// Whether appends currently fail.
    pub fn is_failing(&self) -> bool {
        self.failing.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// How many appends were refused by injection so far.
    pub fn failed_appends(&self) -> u64 {
        self.failed_appends.load(std::sync::atomic::Ordering::SeqCst)
    }
}

impl StoreBackend for FlakyStore {
    fn append(&self, record: &Record) -> io::Result<()> {
        if self.is_failing() {
            self.failed_appends.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            return Err(io::Error::other("injected store write failure"));
        }
        self.inner.append(record)
    }

    fn records(&self) -> Vec<Record> {
        self.inner.records()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

struct FileInner {
    file: File,
    records: Vec<Record>,
}

/// The append-only file log: `[u32 LE length][record JSON]` frames.
///
/// All records are mirrored in memory (the store is a history, not a
/// database — `mst-serve` reads it whole at boot anyway), so queries
/// never touch the disk after open.
pub struct FileStore {
    path: PathBuf,
    inner: Mutex<FileInner>,
}

impl FileStore {
    /// Opens (or creates) the log at `path`, validating every frame.
    ///
    /// Recovery is built into open: at the first torn or undecodable
    /// frame the file is truncated to the last good byte and scanning
    /// stops — a crash mid-append costs at most the record being
    /// written, never the log.
    pub fn open(path: impl AsRef<Path>) -> io::Result<FileStore> {
        let path = path.as_ref().to_path_buf();
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let Some(frame) = decode_frame(&bytes[pos..]) else { break };
            records.push(frame.0);
            pos += frame.1;
        }
        if pos < bytes.len() {
            // Torn tail: drop everything from the first bad frame on.
            file.set_len(pos as u64)?;
        }
        file.seek(SeekFrom::Start(pos as u64))?;
        Ok(FileStore { path, inner: Mutex::new(FileInner { file, records }) })
    }

    /// The path this store appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Decodes one frame from the head of `bytes`; `None` when the frame is
/// torn, oversized or undecodable. Returns the record and the total
/// frame size (prefix + payload).
fn decode_frame(bytes: &[u8]) -> Option<(Record, usize)> {
    let len_bytes: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_FRAME_BYTES {
        return None;
    }
    let payload = bytes.get(4..4 + len as usize)?;
    let text = std::str::from_utf8(payload).ok()?;
    let record = Record::from_json(&Json::parse(text).ok()?).ok()?;
    Some((record, 4 + len as usize))
}

fn encode_frame(record: &Record) -> Vec<u8> {
    let payload = record.to_json().to_string().into_bytes();
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

impl StoreBackend for FileStore {
    fn append(&self, record: &Record) -> io::Result<()> {
        self.append_all(std::slice::from_ref(record))
    }

    fn append_all(&self, records: &[Record]) -> io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut buffer = Vec::new();
        for record in records {
            buffer.extend_from_slice(&encode_frame(record));
        }
        let mut inner = self.inner.lock().expect("store poisoned");
        inner.file.write_all(&buffer)?;
        inner.file.flush()?;
        inner.records.extend(records.iter().cloned());
        Ok(())
    }

    fn records(&self) -> Vec<Record> {
        self.inner.lock().expect("store poisoned").records.clone()
    }

    fn len(&self) -> usize {
        self.inner.lock().expect("store poisoned").records.len()
    }
}

impl std::fmt::Debug for FileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStore").field("path", &self.path).field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_api::wire::solution_to_json;
    use mst_api::{Instance, Platform, SolverRegistry};

    fn sample(tenant: &str, solver: &str, tasks: usize) -> Record {
        let instance = Instance::new(Platform::parse("chain\n2 3\n3 5\n").unwrap(), tasks);
        let solution = SolverRegistry::global().solve(solver, &instance).unwrap();
        Record {
            tenant: tenant.to_string(),
            solver: solver.to_string(),
            platform: instance.platform.to_text(),
            tasks,
            deadline: None,
            canon_hash: format!("{:032x}", tasks as u128),
            makespan: solution.makespan(),
            scheduled: solution.n(),
            elapsed_us: 42,
            solution: solution_to_json(&solution),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("mst-store-test-{}-{name}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn records_round_trip_through_json() {
        let record = sample("acme", "optimal", 5);
        let json = record.to_json();
        let back = Record::from_json(&Json::parse(&json.to_string()).unwrap()).unwrap();
        assert_eq!(back, record);
        // And the embedded solution is decodable.
        let solution = solution_from_json(&back.solution).unwrap();
        assert_eq!(solution.makespan(), record.makespan);
    }

    #[test]
    fn bad_record_bodies_are_rejected() {
        for body in [
            r#"{}"#,
            r#"{"tenant": "a", "solver": "s", "platform": "p", "tasks": 1,
                "canon_hash": "00", "makespan": 1, "scheduled": 0, "elapsed_us": 0}"#,
            r#"{"tenant": "a", "solver": "s", "platform": "p", "tasks": -1,
                "canon_hash": "00", "makespan": 1, "scheduled": 0, "elapsed_us": 0,
                "solution": {"solver": "s", "makespan": 1}}"#,
            r#"{"tenant": "a", "solver": "s", "platform": "p", "tasks": 1,
                "canon_hash": "00", "makespan": 1, "scheduled": 0, "elapsed_us": 0,
                "solution": {"makespan": 1}}"#,
        ] {
            assert!(Record::from_json(&Json::parse(body).unwrap()).is_err(), "{body}");
        }
    }

    #[test]
    fn memory_store_appends_and_queries() {
        let store = MemoryStore::new();
        store.append(&sample("a", "optimal", 3)).unwrap();
        store.append(&sample("b", "exact", 4)).unwrap();
        store.append(&sample("a", "optimal", 5)).unwrap();
        assert_eq!(store.len(), 3);
        let records = store.records();
        let a = query(&records, Some("a"), None, 10);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].tasks, 5, "newest first");
        let exact = query(&records, None, Some("exact"), 10);
        assert_eq!(exact.len(), 1);
        assert_eq!(query(&records, None, None, 2).len(), 2);
        assert!(query(&records, Some("nope"), None, 10).is_empty());
    }

    #[test]
    fn file_store_persists_across_reopen() {
        let path = tmp("reopen");
        {
            let store = FileStore::open(&path).unwrap();
            assert!(store.is_empty());
            store.append_all(&[sample("a", "optimal", 3), sample("a", "optimal", 4)]).unwrap();
            store.append(&sample("b", "exact", 5)).unwrap();
            assert_eq!(store.len(), 3);
        }
        let reopened = FileStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 3);
        assert_eq!(reopened.records()[2].tenant, "b");
        // Appends after reopen extend the same log.
        reopened.append(&sample("c", "optimal", 6)).unwrap();
        drop(reopened);
        assert_eq!(FileStore::open(&path).unwrap().len(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tails_are_truncated_on_open() {
        let path = tmp("torn");
        {
            let store = FileStore::open(&path).unwrap();
            store.append_all(&[sample("a", "optimal", 3), sample("a", "optimal", 4)]).unwrap();
        }
        let intact = std::fs::metadata(&path).unwrap().len();
        // A crash mid-append: a length prefix promising more bytes than
        // were ever written.
        {
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(&1000u32.to_le_bytes()).unwrap();
            file.write_all(b"{\"tenant\": \"half").unwrap();
        }
        let recovered = FileStore::open(&path).unwrap();
        assert_eq!(recovered.len(), 2, "both intact records survive");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), intact, "tail truncated");
        // Appending after recovery produces a clean log again.
        recovered.append(&sample("b", "exact", 5)).unwrap();
        drop(recovered);
        assert_eq!(FileStore::open(&path).unwrap().len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_frames_stop_the_scan_cleanly() {
        let path = tmp("garbage");
        {
            let store = FileStore::open(&path).unwrap();
            store.append(&sample("a", "optimal", 3)).unwrap();
        }
        {
            // A complete frame whose payload is not a record.
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            let junk = b"not json at all";
            file.write_all(&(junk.len() as u32).to_le_bytes()).unwrap();
            file.write_all(junk).unwrap();
            // And a record after it that recovery must NOT resurrect
            // (the log is append-only; once a frame is bad, everything
            // after it is unreachable).
            file.write_all(&encode_frame(&sample("b", "exact", 4))).unwrap();
        }
        let recovered = FileStore::open(&path).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered.records()[0].tenant, "a");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crash_at_every_byte_offset_of_a_frame_recovers_and_appends() {
        // Drive the torn-tail recovery through every possible crash
        // point: a log of two good records plus the first k bytes of a
        // third frame, for every k short of the full frame. Reopening
        // must keep exactly the two good records, truncate the torn
        // prefix, and accept fresh appends afterwards.
        let path = tmp("every-offset");
        {
            let store = FileStore::open(&path).unwrap();
            store.append_all(&[sample("a", "optimal", 3), sample("a", "optimal", 4)]).unwrap();
        }
        let base = std::fs::read(&path).unwrap();
        let frame = encode_frame(&sample("b", "exact", 5));
        for cut in 0..frame.len() {
            let mut torn = base.clone();
            torn.extend_from_slice(&frame[..cut]);
            std::fs::write(&path, &torn).unwrap();
            let recovered = FileStore::open(&path).unwrap();
            assert_eq!(recovered.len(), 2, "cut at byte {cut}: good records survive");
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                base.len() as u64,
                "cut at byte {cut}: torn prefix truncated"
            );
            recovered.append(&sample("c", "optimal", 6)).unwrap();
            drop(recovered);
            assert_eq!(
                FileStore::open(&path).unwrap().len(),
                3,
                "cut at byte {cut}: append after recovery persists"
            );
        }
        // The full frame, untorn, is of course kept.
        let mut whole = base.clone();
        whole.extend_from_slice(&frame);
        std::fs::write(&path, &whole).unwrap();
        assert_eq!(FileStore::open(&path).unwrap().len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flaky_store_injects_and_clears_write_failures() {
        let inner = std::sync::Arc::new(MemoryStore::new());
        let store = FlakyStore::new(inner.clone());
        store.append(&sample("a", "optimal", 3)).unwrap();
        store.set_failing(true);
        assert!(store.append(&sample("a", "optimal", 4)).is_err());
        assert!(store.append_all(&[sample("a", "optimal", 5)]).is_err());
        assert_eq!(store.failed_appends(), 2);
        assert_eq!(store.len(), 1, "failed appends never reach the inner store");
        store.set_failing(false);
        store.append(&sample("b", "exact", 6)).unwrap();
        assert_eq!(inner.len(), 2, "recovery resumes persisting");
    }

    #[test]
    fn empty_and_zero_length_prefix_logs_recover() {
        let path = tmp("empty");
        std::fs::write(&path, [0u8; 4]).unwrap();
        let store = FileStore::open(&path).unwrap();
        assert!(store.is_empty());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        let _ = std::fs::remove_file(&path);
    }
}
