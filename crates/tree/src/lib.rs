//! # mst-tree — scheduling general trees by spider covering
//!
//! The paper closes with its long-term goal: "provide good heuristics for
//! scheduling on complicated graphs of heterogeneous processors, by
//! covering those graphs with simpler structures". This crate implements
//! that programme for out-trees:
//!
//! 1. **Cover** ([`cover`]): select one root-to-leaf path per child of
//!    the master; the selected paths form a spider sub-platform (they
//!    share no node and only meet at the master). Off-path processors
//!    simply stay idle, so any spider schedule on the cover is a valid
//!    tree schedule.
//! 2. **Schedule** ([`schedule`]): run the optimal spider algorithm of
//!    `mst-spider` on the covered sub-platform.
//!
//! Several path-selection strategies are provided, plus an exhaustive
//! cover search for small trees; experiment E3 measures the gap between
//! the best cover and the true tree optimum.
//!
//! The [`witness`] module closes the loop on verification: any
//! assignment sequence — in particular the optimal one found by the
//! exhaustive search of `mst-baselines` — replays into a full
//! [`mst_schedule::TreeSchedule`] that the independent
//! [`mst_schedule::check_tree`] oracle can falsify, and every cover
//! schedule re-expresses as a tree schedule on the *full* tree through
//! [`TreeScheduleOutcome::tree_schedule`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cover;
pub mod schedule;
pub mod witness;

pub use cover::{all_covers, cover_tree, PathStrategy, SpiderCover};
pub use schedule::{best_cover_schedule, schedule_tree, TreeScheduleOutcome};
pub use witness::tree_schedule_from_sequence;
