//! Reconstructing checkable [`TreeSchedule`] witnesses.
//!
//! The exhaustive branch-and-bound of `mst-baselines` searches over
//! *assignment sequences* (the node each task is routed to, in
//! master-emission order) and historically reported only the optimal
//! makespan for general trees — a number the feasibility oracle could
//! not falsify. This module closes that hole: replaying a sequence
//! through the same greedy [`TreeAsap`] evaluator the search uses yields
//! the full schedule — every emission time along every route — as a
//! [`TreeSchedule`] that [`mst_schedule::check_tree`] can verify
//! independently.

use mst_baselines::asap::TreeAsap;
use mst_platform::Tree;
use mst_schedule::{CommVector, TreeSchedule, TreeTask};

/// Replays an assignment sequence on `tree` and rebuilds the complete
/// [`TreeSchedule`] from the greedy earliest-feasible placements.
///
/// The replay is exactly the evaluation the branch-and-bound performs,
/// so the schedule's makespan equals the makespan the search reported
/// for this sequence — but now as a witness the oracle can check.
///
/// ```
/// use mst_platform::Tree;
/// use mst_schedule::check_tree;
/// use mst_tree::tree_schedule_from_sequence;
///
/// // master -> 1 -> {2, 3}: one interior fork.
/// let tree = Tree::from_triples(&[(0, 1, 2), (1, 2, 3), (1, 1, 1)]).unwrap();
/// let schedule = tree_schedule_from_sequence(&tree, &[2, 3, 1]);
/// assert_eq!(schedule.n(), 3);
/// check_tree(&tree, &schedule).assert_feasible();
/// ```
pub fn tree_schedule_from_sequence(tree: &Tree, sequence: &[usize]) -> TreeSchedule {
    let mut state = TreeAsap::new(tree);
    let tasks = sequence
        .iter()
        .map(|&node| {
            let (emissions, start, _) = state.place(node);
            TreeTask::new(node, start, CommVector::new(emissions), tree.node(node).work)
        })
        .collect();
    TreeSchedule::new(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_baselines::asap_tree;
    use mst_platform::{GeneratorConfig, HeterogeneityProfile};
    use mst_schedule::check_tree;

    #[test]
    fn replayed_sequences_are_feasible_and_match_the_asap_makespan() {
        for seed in 0..30u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let tree = g.tree(2 + (seed % 5) as usize);
            // A deterministic but varied sequence over the node ids.
            let n = 1 + (seed % 6) as usize;
            let sequence: Vec<usize> =
                (0..n).map(|i| 1 + ((seed as usize + i * 7) % tree.len())).collect();
            let schedule = tree_schedule_from_sequence(&tree, &sequence);
            assert_eq!(schedule.n(), n);
            let report = check_tree(&tree, &schedule);
            report.assert_feasible();
            assert_eq!(schedule.makespan(), asap_tree(&tree, &sequence), "seed {seed}");
            assert_eq!(report.makespan, schedule.makespan());
        }
    }

    #[test]
    fn single_node_sequence_pipelines_on_the_master_port() {
        // master -> {1, 2}: consecutive tasks to different children
        // serialise on the master's out-port and stay feasible.
        let tree = Tree::from_triples(&[(0, 3, 1), (0, 2, 1)]).unwrap();
        let schedule = tree_schedule_from_sequence(&tree, &[1, 2, 1]);
        check_tree(&tree, &schedule).assert_feasible();
        assert_eq!(schedule.task(1).comms.first(), 0);
        assert_eq!(schedule.task(2).comms.first(), 3, "port busy until 3");
    }

    #[test]
    fn empty_sequence_is_the_empty_schedule() {
        let tree = Tree::from_triples(&[(0, 1, 1)]).unwrap();
        let schedule = tree_schedule_from_sequence(&tree, &[]);
        assert!(schedule.is_empty());
        check_tree(&tree, &schedule).assert_feasible();
    }
}
