//! Scheduling trees through their spider covers.

use crate::cover::{all_covers, cover_tree, PathStrategy, SpiderCover};
use mst_platform::{Time, Tree};
use mst_schedule::{SpiderSchedule, TreeSchedule, TreeTask};
use mst_spider::schedule_spider;

/// A tree schedule obtained through a spider cover.
#[derive(Debug, Clone)]
pub struct TreeScheduleOutcome {
    /// Makespan of the schedule.
    pub makespan: Time,
    /// The cover that was used.
    pub cover: SpiderCover,
    /// The optimal spider schedule on the cover; node `(leg, depth)`
    /// means tree node `cover.node_map[leg][depth - 1]`.
    pub schedule: SpiderSchedule,
}

impl TreeScheduleOutcome {
    /// Re-addresses the cover schedule by the **full tree's** node ids:
    /// every spider placement `(leg, depth)` becomes the tree node
    /// `cover.node_map[leg][depth - 1]`, times unchanged. The result is
    /// feasible on the whole tree (off-cover nodes idle), so it passes
    /// [`mst_schedule::check_tree`] without knowing the cover — the
    /// lossless witness format for tree solutions.
    pub fn tree_schedule(&self) -> TreeSchedule {
        TreeSchedule::new(
            self.schedule
                .tasks()
                .iter()
                .map(|t| {
                    TreeTask::new(
                        self.cover.node_map[t.node.leg][t.node.depth - 1],
                        t.start,
                        t.comms.clone(),
                        t.work,
                    )
                })
                .collect(),
        )
    }
}

/// Schedules `n` tasks on the tree by covering it with `strategy` and
/// running the optimal spider algorithm on the cover.
///
/// The result is feasible for the full tree (off-cover nodes stay idle);
/// it is optimal *for the cover*, and a heuristic for the tree — the gap
/// is what experiment E3 measures.
///
/// ```
/// use mst_platform::Tree;
/// use mst_tree::{schedule_tree, PathStrategy};
/// // master -> 1 -> {2, 3}: one interior fork.
/// let tree = Tree::from_triples(&[(0, 1, 2), (1, 2, 3), (1, 1, 1)]).unwrap();
/// let out = schedule_tree(&tree, 4, PathStrategy::BestRate);
/// assert_eq!(out.schedule.n(), 4);
/// assert_eq!(out.cover.covered_nodes(), 2); // one branch is dropped
/// ```
pub fn schedule_tree(tree: &Tree, n: usize, strategy: PathStrategy) -> TreeScheduleOutcome {
    let cover = cover_tree(tree, strategy);
    let (makespan, schedule) = schedule_spider(&cover.spider, n);
    TreeScheduleOutcome { makespan, cover, schedule }
}

/// Tries every strategy and keeps the best schedule.
pub fn best_cover_schedule(tree: &Tree, n: usize) -> TreeScheduleOutcome {
    PathStrategy::ALL
        .iter()
        .map(|&s| schedule_tree(tree, n, s))
        .min_by_key(|o| o.makespan)
        .expect("at least one strategy")
}

/// The best makespan over **all** spider covers (exponential; small
/// trees only) — the limit of what covering can achieve.
pub fn exhaustive_cover_makespan(tree: &Tree, n: usize) -> Time {
    all_covers(tree)
        .into_iter()
        .map(|c| schedule_spider(&c.spider, n).0)
        .min()
        .expect("every tree has a cover")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_baselines::optimal_tree_makespan;
    use mst_platform::{GeneratorConfig, HeterogeneityProfile, Spider};
    use mst_schedule::check_spider;

    #[test]
    fn cover_schedules_are_feasible_on_their_cover() {
        for seed in 0..20u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let tree = g.tree(2 + (seed % 5) as usize);
            for strategy in PathStrategy::ALL {
                let out = schedule_tree(&tree, 4, strategy);
                assert_eq!(out.schedule.n(), 4);
                check_spider(&out.cover.spider, &out.schedule).assert_feasible();
                assert_eq!(out.schedule.makespan(), out.makespan);
            }
        }
    }

    #[test]
    fn cover_schedules_re_address_to_feasible_tree_schedules() {
        use mst_schedule::check_tree;
        for seed in 0..20u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let tree = g.tree(2 + (seed % 5) as usize);
            let out = best_cover_schedule(&tree, 1 + (seed % 5) as usize);
            let witness = out.tree_schedule();
            assert_eq!(witness.n(), out.schedule.n());
            assert_eq!(witness.makespan(), out.makespan);
            let report = check_tree(&tree, &witness);
            report.assert_feasible();
            assert_eq!(report.makespan, out.makespan);
        }
    }

    #[test]
    fn cover_never_beats_the_true_tree_optimum() {
        for seed in 0..20u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let tree = g.tree(2 + (seed % 4) as usize);
            let n = 1 + (seed % 4) as usize;
            let opt = optimal_tree_makespan(&tree, n);
            let best = best_cover_schedule(&tree, n).makespan;
            assert!(best >= opt, "cover beat the optimum (seed {seed})");
            let exhaustive = exhaustive_cover_makespan(&tree, n);
            assert!(exhaustive >= opt);
            assert!(best >= exhaustive, "strategy covers are a subset of all covers");
        }
    }

    #[test]
    fn covering_is_exact_on_spider_shaped_trees() {
        // When the tree IS a spider, the cover is lossless and the
        // heuristic equals the true optimum (Theorem 3 carried over).
        for seed in 0..15u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let spider = g.spider(2, 1, 2);
            let tree = mst_platform::Tree::from_spider(&spider);
            let n = 1 + (seed % 4) as usize;
            let opt = optimal_tree_makespan(&tree, n);
            let cover = best_cover_schedule(&tree, n).makespan;
            assert_eq!(cover, opt, "seed {seed}");
        }
    }

    #[test]
    fn covering_loses_when_a_branch_must_be_dropped() {
        // An interior fork with two compute-bound leaves: the cover keeps
        // one and idles the other, so with enough tasks it must lose to
        // the optimum that alternates between both.
        let tree = Tree::from_triples(&[(0, 1, 9), (1, 1, 3), (1, 1, 3)]).unwrap();
        let n = 6;
        let opt = optimal_tree_makespan(&tree, n);
        let cover = exhaustive_cover_makespan(&tree, n);
        assert!(cover > opt, "cover {cover} should exceed optimum {opt} here");
    }

    #[test]
    fn best_cover_at_least_matches_every_strategy() {
        let g = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 11);
        let tree = g.tree(6);
        let best = best_cover_schedule(&tree, 5).makespan;
        for s in PathStrategy::ALL {
            assert!(best <= schedule_tree(&tree, 5, s).makespan);
        }
    }

    #[test]
    fn single_chain_tree_matches_chain_optimum() {
        use mst_core::schedule_chain;
        let chain = mst_platform::Chain::paper_figure2();
        let tree = Tree::from_chain(&chain);
        let out = best_cover_schedule(&tree, 5);
        assert_eq!(out.makespan, schedule_chain(&chain, 5).makespan());
        assert_eq!(out.cover.spider, Spider::from_chain(chain));
    }
}
