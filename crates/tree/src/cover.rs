//! Extracting spider covers from general trees.

use mst_platform::{Chain, Processor, Spider, Tree};

/// How to pick the one path kept per master child.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathStrategy {
    /// The path whose chain has the highest steady-state task rate —
    /// best for long batches.
    BestRate,
    /// The path minimising the single-task completion
    /// `min_k (c_1 + .. + c_k + w_k)` over its own nodes — best for tiny
    /// batches.
    BestSingleTask,
    /// The longest path (most processors kept).
    Deepest,
    /// The shortest path (cheapest masters-side links only).
    Shallowest,
}

impl PathStrategy {
    /// All strategies, for sweep experiments.
    pub const ALL: [PathStrategy; 4] = [
        PathStrategy::BestRate,
        PathStrategy::BestSingleTask,
        PathStrategy::Deepest,
        PathStrategy::Shallowest,
    ];

    /// Short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PathStrategy::BestRate => "best-rate",
            PathStrategy::BestSingleTask => "best-single-task",
            PathStrategy::Deepest => "deepest",
            PathStrategy::Shallowest => "shallowest",
        }
    }
}

/// A spider sub-platform of a tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpiderCover {
    /// The covered sub-platform.
    pub spider: Spider,
    /// `node_map[leg][depth - 1]` = tree node id of the spider node
    /// `(leg, depth)`.
    pub node_map: Vec<Vec<usize>>,
}

impl SpiderCover {
    /// Number of tree processors the cover keeps.
    pub fn covered_nodes(&self) -> usize {
        self.node_map.iter().map(Vec::len).sum()
    }
}

/// Enumerates the root-to-leaf paths inside the subtree hanging off
/// `head` (a child of the master); every path starts at `head`.
fn paths_from(tree: &Tree, head: usize) -> Vec<Vec<usize>> {
    let children = tree.children();
    let mut out = Vec::new();
    let mut stack = vec![vec![head]];
    while let Some(path) = stack.pop() {
        let last = *path.last().expect("paths are non-empty");
        if children[last].is_empty() {
            out.push(path);
        } else {
            for &child in &children[last] {
                let mut next = path.clone();
                next.push(child);
                stack.push(next);
            }
        }
    }
    out
}

fn chain_of(tree: &Tree, path: &[usize]) -> Chain {
    Chain::new(
        path.iter()
            .map(|&id| {
                let n = tree.node(id);
                Processor { comm: n.comm, work: n.work }
            })
            .collect(),
    )
    .expect("paths are non-empty")
}

fn score(tree: &Tree, path: &[usize], strategy: PathStrategy) -> (i64, i64) {
    let chain = chain_of(tree, path);
    match strategy {
        PathStrategy::BestRate => {
            let (t, d) = chain.steady_state_rate();
            // higher rate first: compare t/d descending via -t*LCMish;
            // use negated cross-product against 1 tick reference.
            // Sort key: (-t * K / d) — avoid floats with a scaled ratio.
            let scaled = -((t as i64) * 1_000_000 / d as i64);
            (scaled, path.len() as i64)
        }
        PathStrategy::BestSingleTask => {
            let best = (1..=chain.len())
                .map(|k| chain.travel_time(k) + chain.w(k))
                .min()
                .expect("non-empty");
            (best, -(path.len() as i64))
        }
        PathStrategy::Deepest => (-(path.len() as i64), 0),
        PathStrategy::Shallowest => (path.len() as i64, 0),
    }
}

/// Covers `tree` with a spider using `strategy` to pick one path per
/// master child. Deterministic: ties fall back to the enumeration order.
pub fn cover_tree(tree: &Tree, strategy: PathStrategy) -> SpiderCover {
    let children = tree.children();
    let mut legs = Vec::new();
    let mut node_map = Vec::new();
    for &head in &children[0] {
        let paths = paths_from(tree, head);
        let best = paths
            .into_iter()
            .min_by_key(|p| score(tree, p, strategy))
            .expect("every head has at least the trivial path");
        legs.push(chain_of(tree, &best));
        node_map.push(best);
    }
    SpiderCover { spider: Spider::new(legs).expect("master has at least one child"), node_map }
}

/// Enumerates **every** spider cover of the tree (the Cartesian product
/// of per-head path choices). Exponential; for the small trees of the
/// covering experiments only.
pub fn all_covers(tree: &Tree) -> Vec<SpiderCover> {
    let children = tree.children();
    let per_head: Vec<Vec<Vec<usize>>> = children[0].iter().map(|&h| paths_from(tree, h)).collect();
    let mut covers = vec![Vec::new()];
    for head_paths in &per_head {
        let mut next = Vec::with_capacity(covers.len() * head_paths.len());
        for partial in &covers {
            for path in head_paths {
                let mut c = partial.clone();
                c.push(path.clone());
                next.push(c);
            }
        }
        covers = next;
    }
    covers
        .into_iter()
        .map(|node_map| SpiderCover {
            spider: Spider::new(node_map.iter().map(|p| chain_of(tree, p)).collect())
                .expect("non-empty"),
            node_map,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// master -> 1 -> {2, 3}, master -> 4 -> 5
    fn sample() -> Tree {
        Tree::from_triples(&[
            (0, 1, 2), // 1
            (1, 2, 3), // 2
            (1, 3, 1), // 3
            (0, 2, 2), // 4
            (4, 1, 1), // 5
        ])
        .unwrap()
    }

    #[test]
    fn covers_have_one_leg_per_master_child() {
        let t = sample();
        for strategy in PathStrategy::ALL {
            let cover = cover_tree(&t, strategy);
            assert_eq!(cover.spider.num_legs(), 2, "{}", strategy.name());
            // Each leg's first node is a master child.
            assert!(cover.node_map.iter().all(|p| [1, 4].contains(&p[0])));
        }
    }

    #[test]
    fn all_covers_enumerates_the_product() {
        let t = sample();
        // Head 1 has two leaf paths (via 2 or via 3); head 4 has one.
        let covers = all_covers(&t);
        assert_eq!(covers.len(), 2);
        assert!(covers.iter().all(|c| c.spider.num_legs() == 2));
    }

    #[test]
    fn spider_trees_cover_themselves() {
        let t = Tree::from_triples(&[(0, 1, 2), (1, 2, 3), (0, 3, 1)]).unwrap();
        assert!(t.is_spider());
        let covers = all_covers(&t);
        assert_eq!(covers.len(), 1, "a spider has exactly one cover");
        assert_eq!(covers[0].spider, t.to_spider().unwrap());
        for strategy in PathStrategy::ALL {
            assert_eq!(cover_tree(&t, strategy).spider, t.to_spider().unwrap());
        }
    }

    #[test]
    fn deepest_and_shallowest_differ_where_expected() {
        let t = sample();
        let deep = cover_tree(&t, PathStrategy::Deepest);
        let shallow = cover_tree(&t, PathStrategy::Shallowest);
        // Head 1's subtree: deepest keeps a 2-node path, shallowest too
        // (both paths have length 2) — but head 4's subtree is a fixed
        // 2-node path, so compare total covered nodes on a better tree:
        let t2 = Tree::from_triples(&[(0, 1, 1), (1, 1, 1), (2, 1, 1), (1, 9, 9)]).unwrap();
        // paths from head 1: [1,2,3] and [1,4]
        let deep2 = cover_tree(&t2, PathStrategy::Deepest);
        let shallow2 = cover_tree(&t2, PathStrategy::Shallowest);
        assert_eq!(deep2.covered_nodes(), 3);
        assert_eq!(shallow2.covered_nodes(), 2);
        // (keep the first pair alive for coverage)
        assert_eq!(deep.covered_nodes(), 4);
        assert_eq!(shallow.covered_nodes(), 4);
    }

    #[test]
    fn best_rate_picks_the_fast_branch() {
        // Head 1 forks into a fast leaf (2) and a slow leaf (3). The head
        // link is generous (c_1 = 1) and the head CPU slow (w_1 = 4), so
        // the leaf's rate decides: via leaf 2 the chain sustains
        // min(1, 1/4 + min(1/2, 1/4)) = 1/2, via leaf 3 only ~0.26.
        let t = Tree::from_triples(&[(0, 1, 4), (1, 2, 4), (1, 2, 100)]).unwrap();
        let cover = cover_tree(&t, PathStrategy::BestRate);
        assert_eq!(cover.node_map, vec![vec![1, 2]]);
    }

    #[test]
    fn node_map_matches_spider_shape() {
        let t = sample();
        let cover = cover_tree(&t, PathStrategy::BestRate);
        for (leg, path) in cover.node_map.iter().enumerate() {
            assert_eq!(cover.spider.leg(leg).len(), path.len());
            for (d, &id) in path.iter().enumerate() {
                let n = t.node(id);
                let p = cover.spider.leg(leg).proc(d + 1);
                assert_eq!((p.comm, p.work), (n.comm, n.work));
            }
        }
    }
}
