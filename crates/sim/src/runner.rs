//! A minimal parallel sweep executor for the experiment harness.
//!
//! Experiments evaluate thousands of independent (instance, scheduler)
//! pairs; this helper fans them out over all cores with `std::thread`
//! scoped threads and a shared atomic work index — no dependency on a
//! task-parallel runtime, and results come back in input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on all available cores; returns results in
/// input order.
///
/// `f` must be `Sync` (shared by reference across workers). Panics in a
/// worker propagate after the scope joins, so a failing experiment fails
/// loudly rather than silently dropping results.
pub fn run_parallel<I, R, F>(items: &[I], f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(&I) -> R + Sync,
{
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = threads.min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= items.len() {
                    break;
                }
                let r = f(&items[idx]);
                results.lock().expect("no worker poisoned the results")[idx] = Some(r);
            });
        }
    });

    results
        .into_inner()
        .expect("scope joined every worker")
        .into_iter()
        .map(|r| r.expect("every index visited"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = run_parallel(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_empty_and_single_inputs() {
        let empty: Vec<u64> = vec![];
        assert!(run_parallel(&empty, |&x| x).is_empty());
        assert_eq!(run_parallel(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_matches_serial_for_real_workload() {
        use mst_platform::{Chain, GeneratorConfig, HeterogeneityProfile};
        let chains: Vec<Chain> = (0..64)
            .map(|seed| {
                GeneratorConfig::new(HeterogeneityProfile::ALL[seed as usize % 5], seed).chain(4)
            })
            .collect();
        // A toy metric (t_infinity) computed both ways.
        let par = run_parallel(&chains, |c| c.t_infinity(10));
        let ser: Vec<_> = chains.iter().map(|c| c.t_infinity(10)).collect();
        assert_eq!(par, ser);
    }
}
