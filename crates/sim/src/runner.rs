//! The parallel sweep entry point, backed by the shared [`WorkerPool`].
//!
//! Experiments evaluate thousands of independent (instance, scheduler)
//! pairs; [`run_parallel`] fans them out over all cores. Since the
//! hot-path overhaul it no longer spawns threads per call: the first
//! call builds one process-wide [`WorkerPool`] and every later call
//! reuses its sleeping workers — no scope setup, no result mutex, and
//! results still come back in input order.

use crate::pool::WorkerPool;
use std::sync::{Arc, OnceLock};

/// The process-wide pool shared by [`run_parallel`] and (by default)
/// every `mst_api::Batch`. Built on first use, sized to the machine;
/// its workers sleep between sweeps and are never respawned.
pub fn shared_pool() -> Arc<WorkerPool> {
    static POOL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
    Arc::clone(POOL.get_or_init(|| Arc::new(WorkerPool::new())))
}

/// Applies `f` to every item on all available cores; returns results in
/// input order.
///
/// `f` must be `Sync` (shared by reference across workers). Panics in a
/// worker propagate after the sweep drains, so a failing experiment
/// fails loudly rather than silently dropping results. Empty input
/// returns immediately without waking a single worker.
pub fn run_parallel<I, R, F>(items: &[I], f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(&I) -> R + Sync,
{
    shared_pool().run(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = run_parallel(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_empty_and_single_inputs() {
        let empty: Vec<u64> = vec![];
        assert!(run_parallel(&empty, |&x| x).is_empty());
        assert_eq!(run_parallel(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn shared_pool_is_reused_across_calls() {
        let before = Arc::as_ptr(&shared_pool());
        let items: Vec<u64> = (0..64).collect();
        run_parallel(&items, |&x| x);
        run_parallel(&items, |&x| x + 1);
        assert_eq!(Arc::as_ptr(&shared_pool()), before, "one pool for the whole process");
    }

    #[test]
    fn parallel_matches_serial_for_real_workload() {
        use mst_platform::{Chain, GeneratorConfig, HeterogeneityProfile};
        let chains: Vec<Chain> = (0..64)
            .map(|seed| {
                GeneratorConfig::new(HeterogeneityProfile::ALL[seed as usize % 5], seed).chain(4)
            })
            .collect();
        // A toy metric (t_infinity) computed both ways.
        let par = run_parallel(&chains, |c| c.t_infinity(10));
        let ser: Vec<_> = chains.iter().map(|c| c.t_infinity(10)).collect();
        assert_eq!(par, ser);
    }
}
