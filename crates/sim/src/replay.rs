//! Event-driven replay of static schedules.
//!
//! The replay engine executes a schedule exactly as a real platform
//! would: resources are state machines that refuse double-booking, and a
//! task must physically arrive at a node before that node may forward or
//! execute it. A schedule that passes replay *ran*; its simulated
//! makespan is compared against the analytic one by the integration
//! tests (the analytic == executable triangle).

use crate::trace::{Event, EventKind, Trace};
use mst_platform::{Chain, Spider, Time};
use mst_schedule::{ChainSchedule, SpiderSchedule};
use std::fmt;

/// A replay failure: the schedule asked the platform to do something the
/// one-port model forbids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A resource was claimed while still busy.
    ResourceBusy {
        /// Human-readable resource name (e.g. `"leg 0 link 2"`).
        resource: String,
        /// The claiming task.
        task: usize,
        /// When the claim was attempted.
        at: Time,
        /// When the resource actually frees up.
        busy_until: Time,
    },
    /// A node was asked to forward or execute a task it has not received.
    TaskNotPresent {
        /// The task.
        task: usize,
        /// Where it was expected.
        at_node: String,
        /// When the action was attempted.
        at: Time,
        /// When the task actually arrives.
        arrives: Time,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ResourceBusy { resource, task, at, busy_until } => write!(
                f,
                "task {task} claims {resource} at t={at} but it is busy until t={busy_until}"
            ),
            SimError::TaskNotPresent { task, at_node, at, arrives } => write!(
                f,
                "task {task} handled at {at_node} at t={at} but only arrives at t={arrives}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// One-port resource: busy intervals must be claimed in non-decreasing
/// start order per resource; replay feeds claims in task-emission order
/// per link, which the one-port model already serialises.
#[derive(Debug, Clone, Default)]
struct Port {
    busy_until: Time,
}

impl Port {
    fn claim(&mut self, name: &str, task: usize, start: Time, len: Time) -> Result<(), SimError> {
        if start < self.busy_until {
            return Err(SimError::ResourceBusy {
                resource: name.to_string(),
                task,
                at: start,
                busy_until: self.busy_until,
            });
        }
        self.busy_until = start + len;
        Ok(())
    }
}

/// Replays a chain schedule; returns the event trace.
///
/// Fails with the first [`SimError`] if the schedule over-books a link or
/// processor or handles a task before its arrival — conditions
/// equivalent to the Definition-1 properties, but enforced by an
/// independent executable machine rather than pairwise inequalities.
///
/// ```
/// use mst_platform::Chain;
/// use mst_core::schedule_chain;
/// use mst_sim::replay_chain;
///
/// let chain = Chain::paper_figure2();
/// let schedule = schedule_chain(&chain, 5);
/// let trace = replay_chain(&chain, &schedule).expect("optimal schedules replay");
/// assert_eq!(trace.end_time(), schedule.makespan());
/// ```
pub fn replay_chain(chain: &Chain, schedule: &ChainSchedule) -> Result<Trace, SimError> {
    let spider = Spider::from_chain(chain.clone());
    let tasks: Vec<(usize, Time, Vec<Time>, Time)> = schedule
        .tasks()
        .iter()
        .map(|t| (0usize, t.start, t.comms.times().to_vec(), chain.w(t.proc)))
        .collect();
    replay_impl(&spider, &tasks)
}

/// Replays a spider schedule; returns the event trace.
pub fn replay_spider(spider: &Spider, schedule: &SpiderSchedule) -> Result<Trace, SimError> {
    let tasks: Vec<(usize, Time, Vec<Time>, Time)> = schedule
        .tasks()
        .iter()
        .map(|t| (t.node.leg, t.start, t.comms.times().to_vec(), spider.node(t.node).work))
        .collect();
    replay_impl(spider, &tasks)
}

/// Shared engine. `tasks[i] = (leg, exec_start, emissions, work)`.
fn replay_impl(
    spider: &Spider,
    tasks: &[(usize, Time, Vec<Time>, Time)],
) -> Result<Trace, SimError> {
    // Claims must be fed per resource in start order. Sorting all claims
    // globally by time and processing in order achieves that.
    struct Claim {
        time: Time,
        task: usize,
        /// 1-based link index, or 0 for "execute".
        link: usize,
    }
    let mut claims: Vec<Claim> = Vec::new();
    for (idx, (_, start, emissions, _)) in tasks.iter().enumerate() {
        for (d, &emit) in emissions.iter().enumerate() {
            claims.push(Claim { time: emit, task: idx + 1, link: d + 1 });
        }
        claims.push(Claim { time: *start, task: idx + 1, link: 0 });
    }
    claims.sort_by_key(|c| c.time);

    // Resource state: master port, per (leg, link) in-ports (the link
    // *is* the sender's out-port in a chain), per (leg, depth) CPUs.
    let mut master = Port::default();
    let mut links: Vec<Vec<Port>> =
        spider.legs().iter().map(|c| vec![Port::default(); c.len()]).collect();
    let mut cpus: Vec<Vec<Port>> = links.clone();
    // arrival[task] at current frontier node; start with time 0 at master.
    let mut arrived_at: Vec<(usize, Time)> = tasks.iter().map(|_| (0usize, 0)).collect();

    let mut events = Vec::new();
    for claim in claims {
        let t_idx = claim.task - 1;
        let (leg, exec_start, emissions, work) = &tasks[t_idx];
        let chain = spider.leg(*leg);
        if claim.link >= 1 {
            let latency = chain.c(claim.link);
            // The task must sit at node (claim.link - 1) when forwarded.
            let (frontier, arrival) = arrived_at[t_idx];
            if frontier + 1 != claim.link {
                // claims of one task come in link order because emissions
                // are increasing; a mismatch means overlapping emissions.
                return Err(SimError::TaskNotPresent {
                    task: claim.task,
                    at_node: format!("leg {leg} node {}", claim.link - 1),
                    at: claim.time,
                    arrives: arrival,
                });
            }
            if arrival > claim.time {
                return Err(SimError::TaskNotPresent {
                    task: claim.task,
                    at_node: format!("leg {leg} node {}", claim.link - 1),
                    at: claim.time,
                    arrives: arrival,
                });
            }
            // Claim the sender's out-port: the master's shared port for
            // link 1, the in-chain link otherwise. The in-link of the
            // receiving node is the same physical channel in a chain.
            if claim.link == 1 {
                master.claim("master out-port", claim.task, claim.time, latency)?;
            }
            links[*leg][claim.link - 1].claim(
                &format!("leg {leg} link {}", claim.link),
                claim.task,
                claim.time,
                latency,
            )?;
            arrived_at[t_idx] = (claim.link, claim.time + latency);
            events.push(Event {
                time: claim.time,
                task: claim.task,
                kind: EventKind::CommStart { leg: *leg, link: claim.link },
            });
            events.push(Event {
                time: claim.time + latency,
                task: claim.task,
                kind: EventKind::CommEnd { leg: *leg, link: claim.link },
            });
        } else {
            // Execute at the final node.
            let depth = emissions.len();
            let (frontier, arrival) = arrived_at[t_idx];
            if frontier != depth || arrival > *exec_start {
                return Err(SimError::TaskNotPresent {
                    task: claim.task,
                    at_node: format!("leg {leg} node {depth}"),
                    at: *exec_start,
                    arrives: arrival,
                });
            }
            cpus[*leg][depth - 1].claim(
                &format!("leg {leg} cpu {depth}"),
                claim.task,
                *exec_start,
                *work,
            )?;
            events.push(Event {
                time: *exec_start,
                task: claim.task,
                kind: EventKind::ExecStart { leg: *leg, depth },
            });
            events.push(Event {
                time: *exec_start + *work,
                task: claim.task,
                kind: EventKind::ExecEnd { leg: *leg, depth },
            });
        }
    }
    Ok(Trace::new(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_platform::NodeId;
    use mst_schedule::{CommVector, SpiderTask, TaskAssignment};

    fn cv(times: &[Time]) -> CommVector {
        CommVector::new(times.to_vec())
    }

    fn figure2_schedule() -> ChainSchedule {
        ChainSchedule::new(vec![
            TaskAssignment::new(1, 2, cv(&[0]), 3),
            TaskAssignment::new(1, 5, cv(&[2]), 3),
            TaskAssignment::new(2, 9, cv(&[4, 6]), 5),
            TaskAssignment::new(1, 8, cv(&[6]), 3),
            TaskAssignment::new(1, 11, cv(&[9]), 3),
        ])
    }

    #[test]
    fn figure2_replays_to_makespan_14() {
        let chain = Chain::paper_figure2();
        let trace = replay_chain(&chain, &figure2_schedule()).expect("feasible schedule");
        assert_eq!(trace.end_time(), 14);
        assert_eq!(trace.completed_tasks(), 5);
        // 5 tasks * (2 events per comm hop + 2 exec events):
        // four 1-hop tasks -> 4 events each; one 2-hop task -> 6 events.
        assert_eq!(trace.len(), 4 * 4 + 6);
    }

    #[test]
    fn link_double_booking_is_caught() {
        let chain = Chain::paper_figure2();
        let s = ChainSchedule::new(vec![
            TaskAssignment::new(1, 2, cv(&[0]), 3),
            TaskAssignment::new(1, 6, cv(&[1]), 3), // link 1 still busy at 1
        ]);
        let err = replay_chain(&chain, &s).unwrap_err();
        assert!(matches!(err, SimError::ResourceBusy { task: 2, .. }), "{err}");
    }

    #[test]
    fn cpu_double_booking_is_caught() {
        let chain = Chain::paper_figure2();
        let s = ChainSchedule::new(vec![
            TaskAssignment::new(1, 2, cv(&[0]), 3),
            TaskAssignment::new(1, 4, cv(&[2]), 3), // cpu busy until 5
        ]);
        let err = replay_chain(&chain, &s).unwrap_err();
        assert!(matches!(err, SimError::ResourceBusy { task: 2, .. }), "{err}");
    }

    #[test]
    fn executing_before_arrival_is_caught() {
        let chain = Chain::paper_figure2();
        let s = ChainSchedule::new(vec![TaskAssignment::new(1, 1, cv(&[0]), 3)]);
        let err = replay_chain(&chain, &s).unwrap_err();
        assert!(matches!(err, SimError::TaskNotPresent { task: 1, .. }), "{err}");
    }

    #[test]
    fn forwarding_before_arrival_is_caught() {
        let chain = Chain::paper_figure2();
        // Arrives at node 1 at t=2 but forwarded at t=1.
        let s = ChainSchedule::new(vec![TaskAssignment::new(2, 9, cv(&[0, 1]), 5)]);
        let err = replay_chain(&chain, &s).unwrap_err();
        assert!(matches!(err, SimError::TaskNotPresent { task: 1, .. }), "{err}");
    }

    #[test]
    fn spider_master_port_conflict_is_caught() {
        let spider = Spider::from_legs(&[&[(2, 3)], &[(3, 4)]]).unwrap();
        let s = SpiderSchedule::new(vec![
            SpiderTask::new(NodeId { leg: 0, depth: 1 }, 2, cv(&[0]), 3),
            SpiderTask::new(NodeId { leg: 1, depth: 1 }, 4, cv(&[1]), 4),
        ]);
        let err = replay_spider(&spider, &s).unwrap_err();
        assert!(matches!(err, SimError::ResourceBusy { .. }), "{err}");
    }

    #[test]
    fn spider_replay_succeeds_on_feasible_schedule() {
        let spider = Spider::from_legs(&[&[(2, 3)], &[(3, 4)]]).unwrap();
        let s = SpiderSchedule::new(vec![
            SpiderTask::new(NodeId { leg: 0, depth: 1 }, 2, cv(&[0]), 3),
            SpiderTask::new(NodeId { leg: 1, depth: 1 }, 5, cv(&[2]), 4),
        ]);
        let trace = replay_spider(&spider, &s).expect("feasible");
        assert_eq!(trace.end_time(), 9);
        assert_eq!(trace.completed_tasks(), 2);
    }
}
