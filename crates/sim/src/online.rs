//! Online (demand-driven) scheduling policies, simulated forward.
//!
//! The paper's algorithms are *offline*: they know `n` in advance and
//! build the schedule backwards from the end. A deployed master instead
//! decides task by task. This module simulates such masters on spider
//! platforms so the experiments can measure what clairvoyance is worth
//! (experiment E2: the gap closes as `n` grows — both approaches converge
//! to the steady-state rate — but stays visible for finite batches).

use mst_platform::{NodeId, Spider, Time};
use mst_schedule::{CommVector, SpiderSchedule, SpiderTask};

/// A demand-driven master policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnlinePolicy {
    /// Send each task to the node where it would complete earliest given
    /// everything committed so far (eager earliest-finish).
    EarliestCompletion,
    /// Serve legs in fixed priority of ascending first-link latency
    /// (`c_1`), each leg's tasks going to its first processor — the
    /// bandwidth-centric rule of the steady-state literature, applied
    /// naively.
    BandwidthCentric,
    /// Deal tasks to the first processor of each leg cyclically.
    RoundRobinLegs,
}

/// Forward state of one simulated spider platform.
#[derive(Debug, Clone)]
struct ForwardState<'a> {
    spider: &'a Spider,
    master_port_free: Time,
    /// `out_port_free[leg][depth - 1]`: out-port of node (leg, depth)
    /// (used when forwarding deeper along the leg). Index 0 of a leg is
    /// the first processor's out-port, not the master's.
    out_port_free: Vec<Vec<Time>>,
    /// `cpu_free[leg][depth - 1]`.
    cpu_free: Vec<Vec<Time>>,
}

impl<'a> ForwardState<'a> {
    fn new(spider: &'a Spider) -> Self {
        let zeros: Vec<Vec<Time>> = spider.legs().iter().map(|c| vec![0; c.len()]).collect();
        ForwardState { spider, master_port_free: 0, out_port_free: zeros.clone(), cpu_free: zeros }
    }

    /// Routes one task to `node` ASAP; returns the placement.
    fn place(&mut self, node: NodeId) -> SpiderTask {
        let chain = self.spider.leg(node.leg);
        let mut emissions = Vec::with_capacity(node.depth);
        let mut available = 0;
        for depth in 1..=node.depth {
            let port_free = if depth == 1 {
                self.master_port_free
            } else {
                self.out_port_free[node.leg][depth - 2]
            };
            let emit = available.max(port_free);
            let latency = chain.c(depth);
            if depth == 1 {
                self.master_port_free = emit + latency;
            } else {
                self.out_port_free[node.leg][depth - 2] = emit + latency;
            }
            emissions.push(emit);
            available = emit + latency;
        }
        let start = available.max(self.cpu_free[node.leg][node.depth - 1]);
        let work = chain.w(node.depth);
        self.cpu_free[node.leg][node.depth - 1] = start + work;
        SpiderTask::new(node, start, CommVector::new(emissions), work)
    }

    /// Completion time `place(node)` would produce, without committing.
    fn probe(&self, node: NodeId) -> Time {
        let mut copy = self.clone();
        copy.place(node).end()
    }
}

/// Simulates `n` tasks dispatched by `policy`; returns the resulting
/// schedule (always feasible by construction — resources are only ever
/// claimed when free).
pub fn simulate_online(spider: &Spider, n: usize, policy: OnlinePolicy) -> SpiderSchedule {
    let mut state = ForwardState::new(spider);
    let mut tasks = Vec::with_capacity(n);
    // Fixed priority order for the bandwidth-centric policy.
    let mut legs_by_c1: Vec<usize> = (0..spider.num_legs()).collect();
    legs_by_c1.sort_by_key(|&l| spider.leg(l).c(1));

    for i in 0..n {
        let node = match policy {
            OnlinePolicy::EarliestCompletion => {
                spider.node_ids().min_by_key(|&id| state.probe(id)).expect("spider has nodes")
            }
            OnlinePolicy::BandwidthCentric => {
                // The fastest-link leg whose head CPU will be free by the
                // time a task could arrive; fall back to the overall
                // fastest link.
                let pick = legs_by_c1
                    .iter()
                    .copied()
                    .find(|&l| {
                        let arrival = state.master_port_free.max(0) + spider.leg(l).c(1);
                        state.cpu_free[l][0] <= arrival
                    })
                    .unwrap_or(legs_by_c1[0]);
                NodeId { leg: pick, depth: 1 }
            }
            OnlinePolicy::RoundRobinLegs => NodeId { leg: i % spider.num_legs(), depth: 1 },
        };
        tasks.push(state.place(node));
    }
    SpiderSchedule::new(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_platform::{GeneratorConfig, HeterogeneityProfile};
    use mst_schedule::check_spider;

    #[test]
    fn online_schedules_are_always_feasible() {
        for seed in 0..25u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let spider = g.spider(1 + (seed % 4) as usize, 1, 3);
            for policy in [
                OnlinePolicy::EarliestCompletion,
                OnlinePolicy::BandwidthCentric,
                OnlinePolicy::RoundRobinLegs,
            ] {
                let s = simulate_online(&spider, 8, policy);
                assert_eq!(s.n(), 8);
                check_spider(&spider, &s).assert_feasible();
            }
        }
    }

    #[test]
    fn online_never_beats_offline_optimal() {
        use mst_spider::schedule_spider;
        for seed in 0..20u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let spider = g.spider(1 + (seed % 3) as usize, 1, 2);
            let n = 1 + (seed % 6) as usize;
            let (opt, _) = schedule_spider(&spider, n);
            for policy in [
                OnlinePolicy::EarliestCompletion,
                OnlinePolicy::BandwidthCentric,
                OnlinePolicy::RoundRobinLegs,
            ] {
                let m = simulate_online(&spider, n, policy).makespan();
                assert!(m >= opt, "policy {policy:?} beat the optimum (seed {seed})");
            }
        }
    }

    #[test]
    fn earliest_completion_uses_deep_nodes_when_worthwhile() {
        // Head CPU is terrible, second node is fast: the eager policy
        // must route past the head.
        let spider = Spider::from_legs(&[&[(1, 50), (1, 2)]]).unwrap();
        let s = simulate_online(&spider, 4, OnlinePolicy::EarliestCompletion);
        assert!(s.tasks().iter().any(|t| t.node.depth == 2));
    }

    #[test]
    fn bandwidth_centric_prefers_fast_links() {
        // The fast-link leg is first priority; the slow leg only absorbs
        // overflow while the fast CPU is busy, so it never gets *more*.
        let spider = Spider::from_legs(&[&[(5, 3)], &[(1, 3)]]).unwrap();
        let s = simulate_online(&spider, 6, OnlinePolicy::BandwidthCentric);
        let fast = s.tasks_on_leg(1);
        let slow = s.tasks_on_leg(0);
        assert!(fast >= slow, "fast leg got {fast}, slow leg {slow}");
        // With a fast CPU behind the fast link there is no overflow at
        // all: everything goes to the fast leg.
        let spider = Spider::from_legs(&[&[(5, 3)], &[(1, 1)]]).unwrap();
        let s = simulate_online(&spider, 6, OnlinePolicy::BandwidthCentric);
        assert_eq!(s.tasks_on_leg(1), 6);
        assert_eq!(s.tasks_on_leg(0), 0);
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let spider = Spider::from_legs(&[&[(2, 2)], &[(2, 2)], &[(2, 2)]]).unwrap();
        let s = simulate_online(&spider, 9, OnlinePolicy::RoundRobinLegs);
        for l in 0..3 {
            assert_eq!(s.tasks_on_leg(l), 3);
        }
    }
}
