//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] is a reproducible schedule of failure events — processor
//! deaths, store write failures, connection drops, worker panics — generated
//! from a single `u64` seed by a hand-rolled xorshift PRNG (no external
//! dependencies, no wall-clock entropy). The same seed always yields the
//! same plan, so every chaos run, degraded-mode test, and repair scenario
//! can be replayed exactly from its seed alone.
//!
//! Consumers:
//!
//! * `mst_api::repair` — takes a [`FaultKind::ProcessorDown`] event and
//!   splits a verified schedule at the failure front.
//! * `mst-serve` tests — drive the store-degradation path with
//!   [`FaultKind::StoreWriteFail`] windows.
//! * `mst chaos` — walks a plan against a live server, mapping each event
//!   kind to a concrete hostile action (dropped socket, injected panic,
//!   posted failure event), and asserts availability invariants.

use mst_platform::Time;

/// What kind of failure an event injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A processor (1-based flat index into the platform's processor
    /// order) dies at the event time; tasks not yet completed there are
    /// lost and the schedule must be repaired on the surviving platform.
    ProcessorDown {
        /// 1-based flat processor index.
        processor: usize,
    },
    /// The result-store append path starts failing; writes return errors
    /// until the window closes. The solve path must keep serving.
    StoreWriteFail {
        /// How many consecutive appends fail before writes recover.
        writes: usize,
    },
    /// A client connection is dropped mid-request (socket closed after the
    /// request line, before the response is read).
    ConnectionDrop,
    /// A worker handling the request panics; the server must convert the
    /// panic into a structured 500 and keep the listener alive.
    WorkerPanic,
}

/// One scheduled failure: a kind plus the simulated time it fires at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires, in simulated time units (monotone
    /// non-decreasing within a plan).
    pub at: Time,
    /// What fails.
    pub kind: FaultKind,
}

/// A deterministic, seeded schedule of [`FaultEvent`]s.
///
/// ```
/// use mst_sim::faults::FaultPlan;
/// let a = FaultPlan::seeded(42, 10, 4, 100);
/// let b = FaultPlan::seeded(42, 10, 4, 100);
/// assert_eq!(a.events(), b.events()); // same seed, same plan
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

/// Minimal xorshift64* PRNG: deterministic, dependency-free, good enough
/// to spread fault times and kinds. Not cryptographic, not meant to be.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Seeds the generator. A zero seed is remapped to a fixed non-zero
    /// constant (xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        FaultRng { state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..bound` (`bound == 0` yields 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

impl FaultPlan {
    /// Generates a deterministic plan of `events` faults over the time
    /// range `1..=horizon`, targeting a platform with `processors`
    /// processors. Event times are sorted non-decreasing; kinds cycle
    /// through the four failure families with seeded parameters.
    pub fn seeded(seed: u64, events: usize, processors: usize, horizon: Time) -> Self {
        let mut rng = FaultRng::new(seed);
        let span = horizon.max(1) as u64;
        let mut planned: Vec<FaultEvent> = (0..events)
            .map(|_| {
                let at = 1 + rng.below(span) as Time;
                let kind = match rng.below(4) {
                    0 => FaultKind::ProcessorDown {
                        processor: 1 + rng.below(processors.max(1) as u64) as usize,
                    },
                    1 => FaultKind::StoreWriteFail { writes: 1 + rng.below(8) as usize },
                    2 => FaultKind::ConnectionDrop,
                    _ => FaultKind::WorkerPanic,
                };
                FaultEvent { at, kind }
            })
            .collect();
        planned.sort_by_key(|e| e.at);
        FaultPlan { seed, events: planned }
    }

    /// Builds a plan from an explicit event list (sorted by time).
    pub fn from_events(seed: u64, mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan { seed, events }
    }

    /// The seed this plan was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, sorted by firing time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The first processor-down event, if any — the common entry point for
    /// schedule repair, which handles one failure at a time.
    pub fn first_processor_down(&self) -> Option<(usize, Time)> {
        self.events.iter().find_map(|e| match e.kind {
            FaultKind::ProcessorDown { processor } => Some((processor, e.at)),
            _ => None,
        })
    }

    /// Iterates events that fire at or before `t`, in firing order.
    pub fn fired_by(&self, t: Time) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().take_while(move |e| e.at <= t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::seeded(7, 32, 5, 1000);
        let b = FaultPlan::seeded(7, 32, 5, 1000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::seeded(1, 32, 5, 1000);
        let b = FaultPlan::seeded(2, 32, 5, 1000);
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn events_are_time_sorted_and_in_range() {
        let plan = FaultPlan::seeded(99, 64, 3, 500);
        let mut last = 0;
        for e in plan.events() {
            assert!(e.at >= last, "events must be non-decreasing in time");
            assert!(e.at >= 1 && e.at <= 500);
            if let FaultKind::ProcessorDown { processor } = e.kind {
                assert!((1..=3).contains(&processor));
            }
            last = e.at;
        }
    }

    #[test]
    fn all_kinds_appear_in_a_long_plan() {
        let plan = FaultPlan::seeded(123, 256, 4, 10_000);
        let mut down = false;
        let mut store = false;
        let mut drop = false;
        let mut panic = false;
        for e in plan.events() {
            match e.kind {
                FaultKind::ProcessorDown { .. } => down = true,
                FaultKind::StoreWriteFail { .. } => store = true,
                FaultKind::ConnectionDrop => drop = true,
                FaultKind::WorkerPanic => panic = true,
            }
        }
        assert!(down && store && drop && panic);
    }

    #[test]
    fn first_processor_down_finds_the_earliest() {
        let plan = FaultPlan::from_events(
            0,
            vec![
                FaultEvent { at: 9, kind: FaultKind::ProcessorDown { processor: 2 } },
                FaultEvent { at: 3, kind: FaultKind::ConnectionDrop },
                FaultEvent { at: 5, kind: FaultKind::ProcessorDown { processor: 1 } },
            ],
        );
        assert_eq!(plan.first_processor_down(), Some((1, 5)));
        assert_eq!(plan.fired_by(5).count(), 2);
    }

    #[test]
    fn zero_seed_is_usable() {
        let plan = FaultPlan::seeded(0, 8, 2, 100);
        assert_eq!(plan.len(), 8);
    }
}
