//! Event traces produced by the simulator.

use mst_platform::Time;
use std::fmt;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A communication towards node `(leg, depth)` started on the link
    /// entering that depth.
    CommStart {
        /// Destination leg (0 for chains).
        leg: usize,
        /// Link index along the leg (**1-based**).
        link: usize,
    },
    /// The matching communication completed (the task is now buffered at
    /// the receiving node).
    CommEnd {
        /// Destination leg.
        leg: usize,
        /// Link index.
        link: usize,
    },
    /// Execution started.
    ExecStart {
        /// Leg of the executing node.
        leg: usize,
        /// Depth of the executing node (**1-based**).
        depth: usize,
    },
    /// Execution completed (the task is done).
    ExecEnd {
        /// Leg of the executing node.
        leg: usize,
        /// Depth of the executing node.
        depth: usize,
    },
}

/// One timestamped simulator event, tagged with the task it concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// Simulation time of the event.
    pub time: Time,
    /// Task index (**1-based**, emission order).
    pub task: usize,
    /// What happened.
    pub kind: EventKind,
}

/// A completed simulation: the ordered event log.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// Builds a trace, sorting events by time (stable on ties).
    pub fn new(mut events: Vec<Event>) -> Self {
        events.sort_by_key(|e| e.time);
        Trace { events }
    }

    /// All events in time order.
    #[inline]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff nothing happened.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the last event (the simulated makespan for a complete
    /// run). Zero for an empty trace.
    pub fn end_time(&self) -> Time {
        self.events.last().map(|e| e.time).unwrap_or(0)
    }

    /// Number of `ExecEnd` events — completed tasks.
    pub fn completed_tasks(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, EventKind::ExecEnd { .. })).count()
    }

    /// Events concerning one task, in time order.
    pub fn task_events(&self, task: usize) -> Vec<Event> {
        self.events.iter().filter(|e| e.task == task).copied().collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            let what = match e.kind {
                EventKind::CommStart { leg, link } => format!("comm-start  leg {leg} link {link}"),
                EventKind::CommEnd { leg, link } => format!("comm-end    leg {leg} link {link}"),
                EventKind::ExecStart { leg, depth } => {
                    format!("exec-start  leg {leg} node {depth}")
                }
                EventKind::ExecEnd { leg, depth } => format!("exec-end    leg {leg} node {depth}"),
            };
            writeln!(f, "[t={:>6}] task {:>3}: {what}", e.time, e.task)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_sorts_and_summarises() {
        let t = Trace::new(vec![
            Event { time: 5, task: 1, kind: EventKind::ExecEnd { leg: 0, depth: 1 } },
            Event { time: 0, task: 1, kind: EventKind::CommStart { leg: 0, link: 1 } },
            Event { time: 2, task: 1, kind: EventKind::CommEnd { leg: 0, link: 1 } },
            Event { time: 2, task: 1, kind: EventKind::ExecStart { leg: 0, depth: 1 } },
        ]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.end_time(), 5);
        assert_eq!(t.completed_tasks(), 1);
        assert_eq!(t.events()[0].time, 0);
        assert_eq!(t.task_events(1).len(), 4);
        assert!(t.task_events(2).is_empty());
        let s = t.to_string();
        assert!(s.contains("comm-start"));
        assert!(s.contains("exec-end"));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.end_time(), 0);
        assert_eq!(t.completed_tasks(), 0);
    }
}
