//! # mst-sim — discrete-event simulation of the one-port platform
//!
//! The paper evaluates analytically; this crate supplies the missing
//! *execution* substrate: a discrete-event simulator that actually moves
//! tasks through links and processors under the one-port rules of
//! Definition 1.
//!
//! * [`replay`] — executes a static schedule event by event, verifying at
//!   every step that the claimed resource is actually free and the task has
//!   actually arrived; the resulting [`trace::Trace`] must reproduce the
//!   analytic makespan exactly. Together with the pairwise checker in
//!   `mst-schedule` this closes the *analytic == executable* triangle.
//! * [`online`] — demand-driven policies (the schedulers a deployed
//!   master would really run: eager earliest-completion,
//!   bandwidth-centric fixed priority, round-robin) simulated forward,
//!   for the steady-state comparison experiments.
//! * [`buffered`] — a finite-buffer ablation of the platform model
//!   (Definition 1 implicitly assumes unbounded buffering; this measures
//!   what that assumption is worth).
//! * [`pool`] — a persistent [`pool::WorkerPool`]: threads spawned
//!   once, parked between sweeps, contention-free per-slot result
//!   writes, cooperative cancellation checkpoints
//!   ([`pool::WorkerPool::run_cancellable`]).
//! * [`cancel`] — the [`cancel::CancelToken`] those checkpoints poll:
//!   explicit cancellation plus lazy wall-clock deadline budgets, no
//!   timer thread.
//! * [`faults`] — seeded, deterministic fault injection: a
//!   [`faults::FaultPlan`] reproducibly schedules processor deaths, store
//!   write failures, connection drops and worker panics from a single
//!   seed, consumed by schedule repair, degraded-mode server tests and
//!   the `mst chaos` harness.
//! * [`runner`] — the parallel sweep entry point used by the experiment
//!   harness and the `mst-api` batch engine to evaluate thousands of
//!   instances across cores, backed by one process-wide pool.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod buffered;
pub mod cancel;
pub mod faults;
pub mod online;
pub mod pool;
pub mod replay;
pub mod runner;
pub mod trace;

pub use buffered::simulate_online_buffered;
pub use cancel::CancelToken;
pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultRng};
pub use online::{simulate_online, OnlinePolicy};
pub use pool::WorkerPool;
pub use replay::{replay_chain, replay_spider, SimError};
pub use runner::{run_parallel, shared_pool};
pub use trace::{Event, EventKind, Trace};
