//! Cooperative cancellation for long-running sweeps.
//!
//! A [`CancelToken`] is the handshake between whoever *owns* a
//! computation (a service handler watching its client, an execution
//! policy enforcing a per-request deadline budget) and the worker
//! threads actually burning cores on it. The workers never block on the
//! token — they *poll* it at natural checkpoints (one check per claimed
//! sweep item in [`crate::WorkerPool::run_cancellable`], one per chunk
//! in the service's chunked batch loop), so cancellation costs one
//! relaxed atomic load plus, when a deadline is armed, one monotonic
//! clock read per checkpoint.
//!
//! Two independent triggers fold into the same signal:
//!
//! * **explicit** — [`CancelToken::cancel`], called from any thread
//!   (e.g. the connection handler noticing its client hung up);
//! * **deadline** — a token armed with [`CancelToken::with_budget`]
//!   reports cancelled once the wall-clock budget has elapsed, with no
//!   timer thread anywhere: the deadline is evaluated lazily at each
//!   poll.
//!
//! Clones share the explicit flag (cancelling any clone cancels them
//! all) and carry the same deadline, so a token can be handed to the
//! pool, a watchdog and a response writer simultaneously.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A clonable, pollable cancellation signal with an optional deadline.
///
/// ```
/// use mst_sim::CancelToken;
/// let token = CancelToken::new();
/// assert!(!token.is_cancelled());
/// let observer = token.clone();
/// token.cancel();
/// assert!(observer.is_cancelled(), "clones share the flag");
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fresh token: not cancelled, no deadline.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that self-cancels once `budget` wall-clock time has
    /// elapsed from now — the per-request deadline budget of an
    /// execution policy. It can still be cancelled explicitly earlier.
    pub fn with_budget(budget: Duration) -> CancelToken {
        CancelToken { flag: Arc::default(), deadline: Some(Instant::now() + budget) }
    }

    /// Re-arms this token's deadline (keeping the shared explicit flag);
    /// `None` removes it.
    pub fn deadline_at(mut self, deadline: Option<Instant>) -> CancelToken {
        self.deadline = deadline;
        self
    }

    /// Signals cancellation to every clone of this token. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the computation should stop: explicitly cancelled, or
    /// past the armed deadline. Cheap enough to poll per work item.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
            || self.deadline.is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// The armed deadline, if any (introspection for logs and tests).
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancellation_is_shared_by_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        token.cancel(); // idempotent
        assert!(token.is_cancelled());
    }

    #[test]
    fn budget_tokens_expire_without_a_timer_thread() {
        let token = CancelToken::with_budget(Duration::from_millis(20));
        assert!(token.deadline().is_some());
        assert!(!token.is_cancelled(), "fresh budget is not yet spent");
        std::thread::sleep(Duration::from_millis(30));
        assert!(token.is_cancelled(), "the elapsed budget cancels lazily");
    }

    #[test]
    fn deadlines_can_be_rearmed_and_cleared() {
        let expired = CancelToken::with_budget(Duration::ZERO).deadline_at(None);
        assert!(!expired.is_cancelled(), "clearing the deadline un-expires it");
        let armed = CancelToken::new().deadline_at(Some(Instant::now()));
        assert!(armed.is_cancelled());
    }
}
