//! A persistent worker pool: spawn threads once, reuse them for every
//! sweep.
//!
//! The experiment harness and the `mst-api` batch engine evaluate
//! thousands of independent instances per call — and a service-style
//! deployment makes those calls in a loop. Spawning a fresh
//! `std::thread::scope` per call (the previous [`crate::run_parallel`]
//! implementation) costs thread creation, stack setup and teardown on
//! every batch; funnelling results through one `Mutex<Vec<Option<R>>>`
//! serialises every completion. [`WorkerPool`] fixes both:
//!
//! * **threads are spawned once** (at pool construction) and parked on a
//!   condvar between jobs — [`WorkerPool::run`] only publishes a job
//!   descriptor and wakes them;
//! * **work distribution** stays an atomic claim counter (the cheapest
//!   dynamic load balancer there is), but **results are written into
//!   per-slot cells** — each index is claimed by exactly one worker, so
//!   the writes are disjoint and contention-free, with the completion
//!   countdown providing the happens-before edge back to the caller;
//! * the **caller participates**: the submitting thread claims items
//!   like any worker, so a pool sized `available_parallelism - 1`
//!   saturates the machine and a pool with zero workers still makes
//!   progress;
//! * **empty input never wakes a worker** ([`WorkerPool::run`] returns
//!   before touching the queue), and a **panic in the closure is caught,
//!   carried back and re-raised on the caller** after every in-flight
//!   item has finished — a failing sweep fails loudly, never silently,
//!   and never unwinds while workers still borrow the inputs.
//!
//! Safety rests on one invariant: `run` does not return (normally or by
//! panic) until every claimed item has finished executing, so the
//! borrowed `items`, closure and result slots outlive all worker access.
//! Stale job descriptors keep a dangling data pointer after `run`
//! returns, but their claim counter is exhausted (`next >= len`), so no
//! worker ever dereferences it again.

use crate::cancel::CancelToken;
use std::cell::{Cell, UnsafeCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

thread_local! {
    /// Identity (shared-state address) of the pool whose job this thread
    /// is currently executing, or 0. A nested `run` on the **same** pool
    /// falls back to inline execution instead of deadlocking on the
    /// submit lock; a nested `run` on a *different* pool may still fan
    /// out (it only `try_lock`s, so no submit-lock cycle can form).
    static ACTIVE_POOL: Cell<usize> = const { Cell::new(0) };
}

/// A long-lived set of worker threads executing sweeps on demand.
///
/// ```
/// use mst_sim::WorkerPool;
/// let pool = WorkerPool::new();
/// let items: Vec<u64> = (0..100).collect();
/// let doubled = pool.run(&items, |&x| x * 2);
/// assert_eq!(doubled[99], 198);
/// // The same threads serve every subsequent call.
/// assert_eq!(pool.run(&items, |&x| x + 1)[0], 1);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Serialises job submission: one sweep owns the workers at a time.
    submit: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
    /// Jobs published to the workers since construction (== the epoch).
    jobs: AtomicU64,
}

struct Shared {
    state: Mutex<State>,
    job_ready: Condvar,
}

struct State {
    /// Bumped once per published job; workers compare against the last
    /// epoch they served to detect fresh work.
    epoch: u64,
    job: Option<Job>,
    shutdown: bool,
}

/// A type-erased sweep: `call(data, idx)` runs item `idx` and stores its
/// result. `data` borrows the caller's stack; see the module invariant.
#[derive(Clone)]
struct Job {
    data: DataPtr,
    call: unsafe fn(*const (), usize),
    next: Arc<AtomicUsize>,
    len: usize,
    status: Arc<JobStatus>,
    /// Cooperative cancellation: polled once per claimed item. `None`
    /// for plain [`WorkerPool::run`] sweeps.
    cancel: Option<CancelToken>,
    /// The submitter's ambient trace id (0: none). Workers enter it
    /// while executing this job so their spans attach to the request
    /// that triggered the sweep.
    trace: u64,
}

#[derive(Clone, Copy)]
struct DataPtr(*const ());
// SAFETY: the pointee is a `Ctx` on the submitting caller's stack, kept
// alive until every worker is done with it (`run` blocks on the
// completion countdown before returning).
unsafe impl Send for DataPtr {}

struct JobStatus {
    /// Items not yet finished; the worker that takes it to zero signals
    /// `finished`.
    remaining: AtomicUsize,
    done: Mutex<bool>,
    finished: Condvar,
    /// First panic payload raised by the closure, re-raised by `run`.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// One result slot, written by exactly one worker (the claimer of its
/// index) and read by the caller only after the completion countdown.
#[repr(transparent)]
struct Slot<R>(UnsafeCell<Option<R>>);
// SAFETY: disjoint indices guarantee at most one writer per slot; the
// `remaining` countdown (AcqRel) orders all writes before the caller's
// reads.
unsafe impl<R: Send> Sync for Slot<R> {}

impl WorkerPool {
    /// A pool sized for the machine: `available_parallelism - 1` workers
    /// (the caller thread participates in every sweep, completing the
    /// set).
    pub fn new() -> WorkerPool {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        WorkerPool::with_workers(cores.saturating_sub(1))
    }

    /// A pool saturating `threads` total concurrent executors: the
    /// caller participates in every sweep, so this spawns `threads - 1`
    /// background workers. `with_parallelism(1)` is a fully inline pool.
    ///
    /// This is the sizing a service front-end wants for its `--threads`
    /// knob — the operator states total solve parallelism, not the
    /// background-thread count.
    pub fn with_parallelism(threads: usize) -> WorkerPool {
        WorkerPool::with_workers(threads.max(1) - 1)
    }

    /// A pool with exactly `workers` background threads. `0` is valid:
    /// every sweep then runs inline on the caller.
    pub fn with_workers(workers: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { epoch: 0, job: None, shutdown: false }),
            job_ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("mst-pool-worker".into())
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, submit: Mutex::new(()), handles, jobs: AtomicU64::new(0) }
    }

    /// Number of background worker threads (the caller adds one more to
    /// every sweep).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// This pool's identity: the address of its shared state, matching
    /// what `worker_loop` sees. Used by the nested-`run` guard.
    fn id(&self) -> usize {
        Arc::as_ptr(&self.shared) as usize
    }

    /// Jobs published to the worker threads so far. Stays at zero for
    /// empty and single-item sweeps (which never wake a worker) — the
    /// regression guard for the no-wakeup fast path.
    pub fn jobs_submitted(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }

    /// Applies `f` to every item, fanning out over the pool; results
    /// come back in input order.
    ///
    /// A panic inside `f` is re-raised here once all in-flight items
    /// have finished. Empty input returns immediately; single-item input
    /// and zero-worker pools run inline on the caller.
    pub fn run<I, R, F>(&self, items: &[I], f: F) -> Vec<R>
    where
        I: Sync,
        R: Send,
        F: Fn(&I) -> R + Sync,
    {
        self.run_inner(items, f, None)
            .into_iter()
            .map(|slot| slot.expect("uncancellable sweeps execute every item"))
            .collect()
    }

    /// [`WorkerPool::run`] with a cooperative cancellation checkpoint
    /// before every item: once `cancel` reports cancelled (explicitly,
    /// or past its deadline budget), no *further* item starts — items
    /// already in flight finish normally, so the sweep returns within
    /// one item's latency of the signal and no worker is left stuck.
    ///
    /// Executed items come back as `Some(result)` in input order;
    /// skipped items as `None`. Panics propagate exactly as in `run`.
    pub fn run_cancellable<I, R, F>(
        &self,
        items: &[I],
        f: F,
        cancel: &CancelToken,
    ) -> Vec<Option<R>>
    where
        I: Sync,
        R: Send,
        F: Fn(&I) -> R + Sync,
    {
        self.run_inner(items, f, Some(cancel))
    }

    fn run_inner<I, R, F>(&self, items: &[I], f: F, cancel: Option<&CancelToken>) -> Vec<Option<R>>
    where
        I: Sync,
        R: Send,
        F: Fn(&I) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        // Inline paths: nothing to fan out, or this thread is already
        // executing one of *this* pool's jobs (a same-pool nested sweep
        // would deadlock on the submit lock).
        let inline = |items: &[I]| -> Vec<Option<R>> {
            let _pool = mst_obs::span(mst_obs::Stage::Pool);
            items
                .iter()
                .map(|item| {
                    if cancel.is_some_and(CancelToken::is_cancelled) {
                        return None;
                    }
                    Some(f(item))
                })
                .collect()
        };
        let nested_in = ACTIVE_POOL.with(Cell::get);
        if items.len() == 1 || self.workers() == 0 || nested_in == self.id() {
            return inline(items);
        }

        // One sweep owns the workers at a time. Top-level submitters
        // queue on the lock: waiting one sweep and then fanning out
        // beats computing a large batch single-threaded (and is
        // cycle-free — this thread holds no pool resources anyone else
        // waits on). From inside *another* pool's job, never block
        // (blocking could close a submit-lock cycle across pools):
        // take the lock if free, otherwise run inline. A panicking
        // sweep re-raises below while still holding the guard,
        // poisoning the lock — harmless, since its claimed items are
        // fully drained first, so recover instead of cascading.
        let _submitting = if nested_in == 0 {
            self.submit.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        } else {
            match self.submit.try_lock() {
                Ok(guard) => guard,
                Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => {
                    return inline(items);
                }
            }
        };

        let slots: Vec<Slot<R>> = (0..items.len()).map(|_| Slot(UnsafeCell::new(None))).collect();
        struct Ctx<'a, I, R, F> {
            items: &'a [I],
            f: &'a F,
            slots: &'a [Slot<R>],
        }
        /// SAFETY: `data` must point at a live `Ctx<I, R, F>` and `idx`
        /// must be claimed by exactly one caller.
        unsafe fn call_one<I, R, F: Fn(&I) -> R>(data: *const (), idx: usize) {
            // SAFETY: the caller guarantees `data` points at the live
            // `Ctx` this job was built from (it outlives the scoped
            // wait below) and that `idx` was claimed by exactly one
            // worker, so the slot write is exclusive.
            unsafe {
                let ctx = &*data.cast::<Ctx<'_, I, R, F>>();
                let result = (ctx.f)(&ctx.items[idx]);
                *ctx.slots[idx].0.get() = Some(result);
            }
        }

        let ctx = Ctx { items, f: &f, slots: &slots };
        let status = Arc::new(JobStatus {
            remaining: AtomicUsize::new(items.len()),
            done: Mutex::new(false),
            finished: Condvar::new(),
            panic: Mutex::new(None),
        });
        let job = Job {
            data: DataPtr((&raw const ctx).cast()),
            call: call_one::<I, R, F>,
            next: Arc::new(AtomicUsize::new(0)),
            len: items.len(),
            status: Arc::clone(&status),
            cancel: cancel.cloned(),
            trace: mst_obs::current_trace(),
        };

        {
            let mut state = self.shared.state.lock().expect("workers never poison the state");
            state.epoch += 1;
            state.job = Some(job.clone());
        }
        self.jobs.fetch_add(1, Ordering::Relaxed);
        // Wake only as many workers as there are items beyond the one
        // the caller covers — `notify_all` on a small sweep would herd
        // every worker through the state mutex just to find the claim
        // counter exhausted. Un-woken workers keep sleeping with a stale
        // epoch and simply skip ahead to whatever job is current when
        // next notified.
        for _ in 0..self.workers().min(items.len() - 1) {
            self.shared.job_ready.notify_one();
        }

        // The caller claims items alongside the workers, then waits for
        // the stragglers — `ctx` must stay borrowed until then.
        execute(&job, self.id());
        let mut done = status.done.lock().expect("completion flag is never poisoned");
        while !*done {
            done = status.finished.wait(done).expect("completion wait");
        }
        drop(done);

        if let Some(payload) = status.panic.lock().expect("panic slot").take() {
            resume_unwind(payload);
        }
        slots.into_iter().map(|slot| slot.0.into_inner()).collect()
    }
}

impl Default for WorkerPool {
    fn default() -> WorkerPool {
        WorkerPool::new()
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .field("jobs_submitted", &self.jobs_submitted())
            .finish()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("workers never poison the state");
            state.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        for handle in self.handles.drain(..) {
            handle.join().expect("pool worker exits cleanly");
        }
    }
}

/// The background thread body: sleep until a fresh epoch (or shutdown),
/// serve the published job, repeat.
fn worker_loop(shared: &Shared) {
    let mut served = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("submitters never poison the state");
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != served {
                    served = state.epoch;
                    break state.job.clone().expect("a bumped epoch always publishes a job");
                }
                state = shared.job_ready.wait(state).expect("job wait");
            }
        };
        execute(&job, shared as *const Shared as usize);
    }
}

/// Claims and runs items until the job's counter is exhausted. Panics in
/// the closure are recorded (first wins) and never unwind past here.
/// `pool_id` marks this thread as busy with that pool for the duration
/// (restoring the previous marker, so cross-pool nesting unwinds
/// correctly).
fn execute(job: &Job, pool_id: usize) {
    let previous = ACTIVE_POOL.with(|active| active.replace(pool_id));
    // Adopt the submitter's trace for the duration of this job so any
    // span recorded inside the closure attaches to the right request;
    // the Pool span itself measures this thread's share of the sweep.
    let _trace = mst_obs::enter_trace(job.trace);
    let pool_start = mst_obs::now_ns();
    let mut executed = 0u64;
    loop {
        let idx = job.next.fetch_add(1, Ordering::Relaxed);
        if idx >= job.len {
            break;
        }
        // Cancellation checkpoint: a cancelled sweep stops claiming new
        // work. The claimed item's slot stays `None`; the unclaimed
        // tail is drained exactly like the panic path below (this
        // item's own countdown is still pending, so the completion
        // signal cannot fire early).
        if job.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            let claimed = job.next.swap(job.len, Ordering::Relaxed).min(job.len);
            let unclaimed = job.len - claimed;
            if unclaimed > 0 {
                let before = job.status.remaining.fetch_sub(unclaimed, Ordering::AcqRel);
                debug_assert!(before > unclaimed, "this item has not been counted down yet");
            }
            if job.status.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                let mut done = job.status.done.lock().expect("completion flag");
                *done = true;
                job.status.finished.notify_all();
            }
            continue;
        }
        // SAFETY: `idx < len` is claimed exactly once, and the submitter
        // keeps `data` alive until `remaining` reaches zero.
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data.0, idx) }));
        executed += 1;
        if let Err(payload) = outcome {
            {
                let mut slot = job.status.panic.lock().expect("panic slot");
                slot.get_or_insert(payload);
            }
            // The sweep is failing — drain the unclaimed tail instead of
            // paying for it. In-flight items on other workers still
            // finish (the safety invariant needs only *claimed* items to
            // complete); the bulk decrement cannot take `remaining` to
            // zero because this item's own decrement below is still
            // pending, so the completion signal stays on the normal path.
            let claimed = job.next.swap(job.len, Ordering::Relaxed).min(job.len);
            let unclaimed = job.len - claimed;
            if unclaimed > 0 {
                let before = job.status.remaining.fetch_sub(unclaimed, Ordering::AcqRel);
                debug_assert!(before > unclaimed, "this item has not been counted down yet");
            }
        }
        // AcqRel: the worker driving this to zero has acquired every
        // earlier worker's slot writes, and its release below makes them
        // visible to the caller through the `done` mutex.
        if job.status.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = job.status.done.lock().expect("completion flag");
            *done = true;
            job.status.finished.notify_all();
        }
    }
    if job.trace != 0 && executed > 0 {
        let now = mst_obs::now_ns();
        mst_obs::record_span(job.trace, mst_obs::Stage::Pool, pool_start, now - pool_start);
    }
    ACTIVE_POOL.with(|active| active.set(previous));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order_across_reuse() {
        // Explicit worker count: machine-sized pools have zero workers
        // on single-core machines and would run inline.
        let pool = WorkerPool::with_workers(3);
        let items: Vec<u64> = (0..5000).collect();
        for round in 0..3u64 {
            let out = pool.run(&items, |&x| x * 2 + round);
            assert_eq!(out, items.iter().map(|x| x * 2 + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_returns_without_waking_workers() {
        let pool = WorkerPool::with_workers(2);
        let empty: Vec<u64> = vec![];
        assert!(pool.run(&empty, |&x| x).is_empty());
        assert_eq!(pool.jobs_submitted(), 0, "empty sweeps must not publish a job");
        // Single items run inline on the caller, also without a wakeup.
        assert_eq!(pool.run(&[7u64], |&x| x + 1), vec![8]);
        assert_eq!(pool.jobs_submitted(), 0);
        // A real sweep does publish.
        pool.run(&[1u64, 2, 3], |&x| x);
        assert_eq!(pool.jobs_submitted(), 1);
    }

    #[test]
    fn parallelism_counts_the_caller() {
        assert_eq!(WorkerPool::with_parallelism(1).workers(), 0);
        assert_eq!(WorkerPool::with_parallelism(4).workers(), 3);
        // Zero asks for no concurrency at all; clamp to the inline pool.
        assert_eq!(WorkerPool::with_parallelism(0).workers(), 0);
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::with_workers(0);
        assert_eq!(pool.workers(), 0);
        let items: Vec<u64> = (0..100).collect();
        assert_eq!(pool.run(&items, |&x| x + 1)[99], 100);
        assert_eq!(pool.jobs_submitted(), 0);
    }

    #[test]
    fn panics_propagate_loudly_after_the_sweep_drains() {
        let pool = WorkerPool::with_workers(2);
        let items: Vec<u64> = (0..256).collect();
        let executed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&items, |&x| {
                executed.fetch_add(1, Ordering::Relaxed);
                assert!(x != 40, "injected failure");
                x
            })
        }));
        assert!(result.is_err(), "the sweep must re-raise the worker panic");
        // Every *claimed* item ran to completion before the unwind (the
        // borrowed inputs were never freed under a live worker), and the
        // failing item itself was among them; the unclaimed tail is
        // drained without running.
        let ran = executed.load(Ordering::Relaxed);
        assert!((41..=256).contains(&ran), "claimed items only, got {ran}");
        // The pool survives a panicked sweep and serves the next one.
        assert_eq!(pool.run(&items, |&x| x)[10], 10);
    }

    #[test]
    fn cancellation_stops_claiming_and_leaves_no_stuck_workers() {
        let pool = WorkerPool::with_workers(2);
        let items: Vec<u64> = (0..10_000).collect();
        let token = CancelToken::new();
        let executed = AtomicUsize::new(0);
        let out = pool.run_cancellable(
            &items,
            |&x| {
                let seen = executed.fetch_add(1, Ordering::Relaxed);
                if seen == 64 {
                    token.cancel();
                }
                x * 2
            },
            &token,
        );
        assert_eq!(out.len(), items.len(), "one slot per item, executed or not");
        let ran = out.iter().filter(|r| r.is_some()).count();
        assert!(ran >= 64, "items before the signal executed, got {ran}");
        assert!(ran < items.len(), "the tail after the signal was skipped");
        for (i, slot) in out.iter().enumerate() {
            if let Some(value) = slot {
                assert_eq!(*value, i as u64 * 2, "executed slots hold real results");
            }
        }
        // The pool survives and serves uncancelled sweeps afterwards.
        assert_eq!(pool.run(&items[..100], |&x| x + 1)[99], 100);
    }

    #[test]
    fn pre_cancelled_and_deadline_tokens_skip_everything() {
        let pool = WorkerPool::with_workers(2);
        let items: Vec<u64> = (0..256).collect();
        let token = CancelToken::new();
        token.cancel();
        assert!(pool.run_cancellable(&items, |&x| x, &token).iter().all(Option::is_none));
        // A spent deadline budget behaves the same, including on the
        // inline (zero-worker) path.
        let inline = WorkerPool::with_workers(0);
        let expired = CancelToken::with_budget(std::time::Duration::ZERO);
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(inline.run_cancellable(&items, |&x| x, &expired).iter().all(Option::is_none));
        // An un-cancelled token executes every item.
        let live = CancelToken::new();
        let out = pool.run_cancellable(&items, |&x| x + 1, &live);
        assert!(out.iter().enumerate().all(|(i, r)| *r == Some(i as u64 + 1)));
    }

    #[test]
    fn nested_runs_fall_back_inline_instead_of_deadlocking() {
        let pool = WorkerPool::with_workers(2);
        let outer: Vec<u64> = (0..16).collect();
        let out = pool.run(&outer, |&x| {
            let inner: Vec<u64> = (0..4).collect();
            pool.run(&inner, |&y| y).iter().sum::<u64>() + x
        });
        assert_eq!(out[0], 6);
        assert_eq!(out[15], 21);
    }

    #[test]
    fn cross_pool_nesting_completes_and_may_fan_out() {
        // A job on pool A sweeping on pool B must neither deadlock nor
        // lose results; B's workers serve it when B's submit lock is
        // free (contended A-items fall back inline, still correct).
        let a = WorkerPool::with_workers(2);
        let b = WorkerPool::with_workers(2);
        let outer: Vec<u64> = (0..8).collect();
        let out = a.run(&outer, |&x| {
            let inner: Vec<u64> = (0..50).collect();
            b.run(&inner, |&y| y * 2).iter().sum::<u64>() + x
        });
        for (x, total) in outer.iter().zip(&out) {
            assert_eq!(*total, 2450 + x);
        }
    }

    #[test]
    fn concurrent_submitters_serialise_safely() {
        let pool = WorkerPool::with_workers(2);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let pool = &pool;
                scope.spawn(move || {
                    let items: Vec<u64> = (0..500).collect();
                    let out = pool.run(&items, |&x| x + t);
                    assert_eq!(out[499], 499 + t);
                });
            }
        });
    }
}
