//! Finite-buffer ablation of the platform model.
//!
//! Definition 1 of the paper lets a received task wait arbitrarily long
//! before execution (the "dashed curve" of Figure 2 is exactly a
//! buffered task) — implicitly assuming every node can buffer any number
//! of tasks. Real volunteer nodes hold a bounded work queue. This module
//! simulates demand-driven dispatching when each node can hold at most
//! `buffer_cap` *waiting* tasks (in addition to the one it is computing):
//! a communication towards a full node must be delayed, stalling the
//! master's out-port pipeline.
//!
//! The buffered simulation quantifies how much of the optimal schedules'
//! advantage depends on the unbounded-buffer assumption (experiment E6b).

use crate::online::OnlinePolicy;
use mst_platform::{NodeId, Spider, Time};
use mst_schedule::{CommVector, SpiderSchedule, SpiderTask};

/// Forward state with finite per-node buffers. Only depth-1 placements
/// are supported (online policies on legs' head processors); the
/// interesting contention — the master port stalling on full buffers —
/// lives entirely at depth 1.
#[derive(Debug, Clone)]
struct BufferedState<'a> {
    spider: &'a Spider,
    buffer_cap: usize,
    master_port_free: Time,
    /// Completion times of every task committed to each leg's head CPU,
    /// in start order (used to find when a buffer slot frees up).
    completions: Vec<Vec<Time>>,
    cpu_free: Vec<Time>,
}

impl<'a> BufferedState<'a> {
    fn new(spider: &'a Spider, buffer_cap: usize) -> Self {
        BufferedState {
            spider,
            buffer_cap,
            master_port_free: 0,
            completions: vec![Vec::new(); spider.num_legs()],
            cpu_free: vec![0; spider.num_legs()],
        }
    }

    /// Earliest emission start so that, at *arrival*, the node's waiting
    /// queue has a free slot: the task displacing ours (the one
    /// `buffer_cap + 1` positions back, counting the executing slot)
    /// must have finished by our arrival.
    fn earliest_emission(&self, leg: usize) -> Time {
        let c1 = self.spider.leg(leg).c(1);
        let done = &self.completions[leg];
        // With cap b waiting slots + 1 executing, arrival k (0-based) must
        // wait for completion of task k - (b + 1).
        let k = done.len();
        let slots = self.buffer_cap.saturating_add(1);
        let gate = if k >= slots { done[k - slots] } else { 0 };
        self.master_port_free.max(gate - c1).max(0)
    }

    fn place(&mut self, leg: usize) -> SpiderTask {
        let chain = self.spider.leg(leg);
        let c1 = chain.c(1);
        let w1 = chain.w(1);
        let emit = self.earliest_emission(leg);
        self.master_port_free = emit + c1;
        let arrival = emit + c1;
        let start = arrival.max(self.cpu_free[leg]);
        let end = start + w1;
        self.cpu_free[leg] = end;
        self.completions[leg].push(end);
        SpiderTask::new(NodeId { leg, depth: 1 }, start, CommVector::new(vec![emit]), w1)
    }

    fn probe(&self, leg: usize) -> Time {
        let mut copy = self.clone();
        copy.place(leg).end()
    }
}

/// Simulates `n` tasks dispatched to the legs' head processors under
/// `policy`, with at most `buffer_cap` tasks waiting per node.
///
/// `buffer_cap = usize::MAX` recovers the unbounded model (up to the
/// depth-1 restriction); `buffer_cap = 0` forces fully synchronous
/// hand-offs (a node must be idle-on-arrival).
pub fn simulate_online_buffered(
    spider: &Spider,
    n: usize,
    policy: OnlinePolicy,
    buffer_cap: usize,
) -> SpiderSchedule {
    let mut state = BufferedState::new(spider, buffer_cap);
    let mut legs_by_c1: Vec<usize> = (0..spider.num_legs()).collect();
    legs_by_c1.sort_by_key(|&l| spider.leg(l).c(1));
    let mut tasks = Vec::with_capacity(n);
    for i in 0..n {
        let leg = match policy {
            OnlinePolicy::EarliestCompletion => {
                (0..spider.num_legs()).min_by_key(|&l| state.probe(l)).expect("spider has legs")
            }
            OnlinePolicy::BandwidthCentric => legs_by_c1
                .iter()
                .copied()
                .min_by_key(|&l| state.earliest_emission(l))
                .expect("spider has legs"),
            OnlinePolicy::RoundRobinLegs => i % spider.num_legs(),
        };
        tasks.push(state.place(leg));
    }
    SpiderSchedule::new(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_platform::{GeneratorConfig, HeterogeneityProfile};
    use mst_schedule::check_spider;

    #[test]
    fn buffered_schedules_are_feasible() {
        for seed in 0..20u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let spider = g.spider(1 + (seed % 4) as usize, 1, 1);
            for cap in [0usize, 1, 2, usize::MAX] {
                for policy in [
                    OnlinePolicy::EarliestCompletion,
                    OnlinePolicy::BandwidthCentric,
                    OnlinePolicy::RoundRobinLegs,
                ] {
                    let s = simulate_online_buffered(&spider, 8, policy, cap);
                    assert_eq!(s.n(), 8);
                    check_spider(&spider, &s).assert_feasible();
                }
            }
        }
    }

    #[test]
    fn buffer_occupancy_never_exceeds_cap() {
        for seed in 0..15u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let spider = g.spider(2, 1, 1);
            for cap in [0usize, 1, 3] {
                let s = simulate_online_buffered(&spider, 10, OnlinePolicy::RoundRobinLegs, cap);
                for l in 0..spider.num_legs() {
                    // Count tasks present-but-not-started at every arrival.
                    let mut leg_tasks: Vec<(Time, Time)> = s
                        .tasks()
                        .iter()
                        .filter(|t| t.node.leg == l)
                        .map(|t| (t.comms.first() + spider.leg(l).c(1), t.start))
                        .collect();
                    leg_tasks.sort();
                    for &(arrival, _) in &leg_tasks {
                        let waiting = leg_tasks
                            .iter()
                            .filter(|&&(a, start)| a <= arrival && start > arrival)
                            .count();
                        // `waiting` counts our own task too; one of the
                        // waiters may really be mid-execution started
                        // exactly at its arrival... conservative bound:
                        assert!(
                            waiting <= cap + 1,
                            "seed {seed}, cap {cap}: {waiting} tasks waiting"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tighter_buffers_never_help() {
        for seed in 0..15u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let spider = g.spider(1 + (seed % 3) as usize, 1, 1);
            for policy in [OnlinePolicy::EarliestCompletion, OnlinePolicy::RoundRobinLegs] {
                let m0 = simulate_online_buffered(&spider, 12, policy, 0).makespan();
                let m1 = simulate_online_buffered(&spider, 12, policy, 1).makespan();
                let m_inf = simulate_online_buffered(&spider, 12, policy, usize::MAX).makespan();
                assert!(m0 >= m1, "seed {seed}: cap 0 beat cap 1");
                assert!(m1 >= m_inf, "seed {seed}: cap 1 beat unbounded");
            }
        }
    }

    #[test]
    fn single_leg_loses_nothing_without_buffers() {
        // One leg, c = 1, w = 5, cap 0: the master can time each emission
        // so the task arrives exactly as its predecessor finishes — with
        // deterministic work times, perfect hand-off needs no buffer and
        // the pipeline makespan 1 + 4 * 5 = 21 is preserved.
        let spider = Spider::from_legs(&[&[(1, 5)]]).unwrap();
        let s = simulate_online_buffered(&spider, 4, OnlinePolicy::RoundRobinLegs, 0);
        assert_eq!(s.makespan(), 21);
        let unbounded =
            simulate_online_buffered(&spider, 4, OnlinePolicy::RoundRobinLegs, usize::MAX);
        assert_eq!(unbounded.makespan(), 21);
    }

    #[test]
    fn buffers_matter_under_port_contention() {
        // With several legs, delaying an emission for a full node holds
        // back the shared out-port pipeline: a strict makespan gap.
        // (Instance found by seeded search; see the E6b experiment.)
        let g = GeneratorConfig::new(HeterogeneityProfile::ALL[0], 4);
        let spider = g.spider(4, 1, 1);
        let m0 =
            simulate_online_buffered(&spider, 12, OnlinePolicy::EarliestCompletion, 0).makespan();
        let m_inf =
            simulate_online_buffered(&spider, 12, OnlinePolicy::EarliestCompletion, usize::MAX)
                .makespan();
        assert!(m0 > m_inf, "expected a strict gap, got {m0} vs {m_inf}");
    }
}
