//! Deadline feasibility of single-task slaves: Jackson's rule on the
//! master's out-port.
//!
//! Section 6 of Dutot's paper: "any feasible schedule can be transformed
//! into another feasible schedule where the tasks are sorted in
//! decreasing order of processing times", and a task is insertable iff
//! "the insertion of the communication time in the schedule is possible
//! when tasks are ordered by processing times".
//!
//! Formally, a multiset of single-task slaves `(c_j, t_j)` is feasible by
//! `T_lim` iff, ordering them by decreasing `t_j`, every prefix satisfies
//! `c_1 + ... + c_j + t_j <= T_lim` — i.e. each communication can end by
//! its *due date* `T_lim - t_j`, which is Jackson's earliest-due-date
//! rule for serialising jobs (here: communications) on a single machine
//! (here: the master's out-port).

use mst_platform::Time;

/// One single-task slave with an opaque payload (used by the spider
/// algorithm to remember which chain task a virtual slave stands for).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Item<P> {
    /// Communication (out-port occupation) time.
    pub comm: Time,
    /// Virtual processing time; the communication's due date is
    /// `T_lim - proc_time`.
    pub proc_time: Time,
    /// Caller data carried through selection.
    pub payload: P,
}

/// An incrementally maintained feasible set under Jackson's rule.
///
/// Items are kept sorted by decreasing `proc_time` (increasing due date).
/// [`EddSet::try_insert`] accepts an item iff the set stays feasible; the
/// check and the insertion are `O(k)` for a set of size `k`, giving the
/// quadratic overall bound the paper states for the fork algorithm.
#[derive(Debug, Clone, Default)]
pub struct EddSet<P> {
    deadline: Time,
    /// Selected items, ordered by decreasing `proc_time`.
    items: Vec<Item<P>>,
}

impl<P: Copy> EddSet<P> {
    /// An empty feasible set with the given deadline (`T_lim`).
    pub fn new(deadline: Time) -> Self {
        EddSet { deadline, items: Vec::new() }
    }

    /// Empties the set and retargets it at a new deadline, keeping the
    /// grown buffer capacity — the scratch-reuse hook that lets a
    /// deadline sweep (binary search probes, batch traffic) run
    /// allocation-free steady-state.
    pub fn reset(&mut self, deadline: Time) {
        self.items.clear();
        self.deadline = deadline;
    }

    /// The deadline (`T_lim`) this set is feasible against.
    #[inline]
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// Number of selected items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff nothing is selected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The selected items in emission order (decreasing `proc_time`).
    #[inline]
    pub fn items(&self) -> &[Item<P>] {
        &self.items
    }

    /// Attempts to add an item; returns `true` (and keeps it) iff the set
    /// remains feasible.
    pub fn try_insert(&mut self, item: Item<P>) -> bool {
        // Insertion position: stable among equal proc_times.
        let pos = self.items.partition_point(|x| x.proc_time > item.proc_time);
        // Feasibility: prefix communication sums against due dates.
        // Items before `pos` are unaffected (their prefizes don't change);
        // the new item and every later item gain `item.comm`.
        let mut prefix: Time = self.items[..pos].iter().map(|x| x.comm).sum();
        prefix += item.comm;
        if prefix + item.proc_time > self.deadline {
            return false;
        }
        for x in &self.items[pos..] {
            prefix += x.comm;
            if prefix + x.proc_time > self.deadline {
                return false;
            }
        }
        self.items.insert(pos, item);
        true
    }

    /// The emission (out-port occupation) start times of the selected
    /// items, in the stored order: communications run back to back from
    /// time 0 in decreasing-`proc_time` order, the canonical witness
    /// schedule of Jackson's rule.
    pub fn emission_times(&self) -> Vec<Time> {
        let mut out = Vec::with_capacity(self.items.len());
        let mut clock = 0;
        for item in &self.items {
            out.push(clock);
            clock += item.comm;
        }
        out
    }
}

/// Checks feasibility of a complete set in `O(k log k)` (sort + scan):
/// the non-incremental reference used by tests.
pub fn feasible<P: Copy>(deadline: Time, items: &[Item<P>]) -> bool {
    let mut sorted: Vec<&Item<P>> = items.iter().collect();
    sorted.sort_by_key(|x| std::cmp::Reverse(x.proc_time));
    let mut prefix = 0;
    for item in sorted {
        prefix += item.comm;
        if prefix + item.proc_time > deadline {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn it(comm: Time, proc_time: Time) -> Item<()> {
        Item { comm, proc_time, payload: () }
    }

    #[test]
    fn single_item_fits_iff_comm_plus_proc_within_deadline() {
        let mut set = EddSet::new(10);
        assert!(set.try_insert(it(3, 7)));
        let mut set = EddSet::new(9);
        assert!(!set.try_insert(it(3, 7)));
    }

    #[test]
    fn items_serialise_in_decreasing_proc_order() {
        let mut set = EddSet::new(14);
        // Figure 7's virtual slaves: comm 2, proc {12, 10, 8, 6, 3}.
        for t in [8, 12, 3, 10, 6] {
            assert!(set.try_insert(it(2, t)), "t = {t}");
        }
        let procs: Vec<Time> = set.items().iter().map(|x| x.proc_time).collect();
        assert_eq!(procs, vec![12, 10, 8, 6, 3]);
        assert_eq!(set.emission_times(), vec![0, 2, 4, 6, 8]);
        // A sixth comm-2 slave cannot fit (prefix 12 + proc >= 13 > 14
        // for any proc >= 1, and even proc 1: due 13, prefix 12 ok ...
        // actually proc 2 fails, proc 1 fits: check boundary precisely).
        assert!(!set.clone().try_insert(it(2, 3)));
        assert!(set.clone().try_insert(it(2, 2)));
    }

    #[test]
    fn reset_clears_items_and_retargets_the_deadline() {
        let mut set = EddSet::new(10);
        assert!(set.try_insert(it(2, 8)));
        set.reset(5);
        assert!(set.is_empty());
        assert_eq!(set.deadline(), 5);
        // The old deadline's feasibility must not leak through.
        assert!(!set.try_insert(it(2, 8)));
        assert!(set.try_insert(it(2, 3)));
    }

    #[test]
    fn rejection_leaves_set_unchanged() {
        let mut set = EddSet::new(10);
        assert!(set.try_insert(it(2, 8)));
        let before: Vec<Time> = set.items().iter().map(|x| x.proc_time).collect();
        assert!(!set.try_insert(it(2, 7))); // prefix 4 + 7 > 10
        let after: Vec<Time> = set.items().iter().map(|x| x.proc_time).collect();
        assert_eq!(before, after);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn mid_insertion_revalidates_later_items() {
        let mut set = EddSet::new(20);
        assert!(set.try_insert(it(5, 10))); // due 10, ends 5
        assert!(set.try_insert(it(5, 15))); // due 5, inserted first, ends 5; pushes (5,10) to end 10
                                            // Now inserting (5, 12): would go between; its own end 10 <= 8? due
                                            // is 20-12=8 < 10 -> infeasible.
        assert!(!set.try_insert(it(5, 12)));
        // Inserting (10, 1): due 19; prefix 10+10+10=30 > 19 -> infeasible.
        assert!(!set.try_insert(it(10, 1)));
        // Inserting (5, 4): due 16, prefix 15 + ... own check 15+4 <= 20 ok.
        assert!(set.try_insert(it(5, 4)));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn incremental_matches_reference_checker() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let deadline = rng.gen_range(5..40);
            let mut set = EddSet::new(deadline);
            let mut accepted: Vec<Item<()>> = Vec::new();
            for _ in 0..rng.gen_range(1..12) {
                let item = it(rng.gen_range(1..6), rng.gen_range(1..20));
                let mut candidate = accepted.clone();
                candidate.push(item);
                let should = feasible(deadline, &candidate);
                let did = set.try_insert(item);
                assert_eq!(did, should, "deadline {deadline}, item {item:?}");
                if did {
                    accepted.push(item);
                }
            }
            assert!(feasible(deadline, &accepted));
        }
    }

    #[test]
    fn emission_times_respect_due_dates() {
        let mut set = EddSet::new(30);
        for t in [20, 5, 11, 17, 2] {
            set.try_insert(it(3, t));
        }
        for (item, start) in set.items().iter().zip(set.emission_times()) {
            assert!(start + item.comm + item.proc_time <= 30);
        }
    }
}
