//! # mst-fork — the fork-graph (star) scheduling substrate
//!
//! Re-implementation of the fork-graph algorithm of Beaumont, Carter,
//! Ferrante, Legrand and Robert (IPDPS 2002) — the paper's reference \[2]
//! — which Section 6 of Dutot's paper summarises and Section 7 reuses for
//! spiders. Given a star of heterogeneous slaves, a task budget `n` and a
//! deadline `T_lim`, the algorithm schedules the **maximum number of
//! tasks** all completing by `T_lim`.
//!
//! It proceeds in three moves, each implemented in its own module:
//!
//! 1. **Node expansion** ([`expand`], the paper's Figure 6): a slave
//!    `(c_i, w_i)` that may run any number of tasks is replaced by
//!    single-task *virtual slaves* with the same link latency and
//!    processing times `w_i, w_i + m_i, w_i + 2 m_i, ...` where
//!    `m_i = max(c_i, w_i)` — the `q`-th-from-last task on a node needs
//!    `q` extra steady-state periods of slack.
//! 2. **Deadline feasibility** ([`jackson`]): a set of single-task slaves
//!    is schedulable iff serialising their communications in decreasing
//!    processing-time order meets every deadline `T_lim - t` — Jackson's
//!    earliest-due-date rule on the master's out-port.
//! 3. **Bandwidth-centric greedy** ([`algorithm`]): consider virtual
//!    slaves by ascending link latency (ties: ascending processing time)
//!    and keep every one that stays feasible. Communication time is the
//!    single shared resource, so cheap links are claimed first.
//!
//! The result converts back to an executable star schedule
//! (a [`SpiderSchedule`](mst_schedule::SpiderSchedule) on legs of
//! length 1) and, by binary search on `T_lim`, to a makespan-optimal
//! schedule for `n` tasks ([`algorithm::schedule_fork`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithm;
pub mod expand;
pub mod jackson;

pub use algorithm::{
    count_tasks_fork_by_deadline, max_tasks_fork_by_deadline, max_tasks_fork_by_deadline_scratch,
    schedule_fork, search_min_deadline, ForkOutcome, ForkScratch,
};
pub use expand::{expand_fork, expand_fork_sorted, expand_slave, ExpansionMerge, VirtualSlave};
pub use jackson::{EddSet, Item};
