//! The bandwidth-centric greedy and the executable fork schedule.
//!
//! The selection hot path is allocation-free steady-state: virtual
//! slaves stream out of a reusable [`ExpansionMerge`] (no
//! materialise-then-sort), the greedy's [`EddSet`] keeps its buffer
//! across probes, and [`schedule_fork`]'s binary search counts through
//! one [`ForkScratch`] — only the final witness materialises a
//! [`ForkOutcome`].

use crate::expand::{ExpansionMerge, VirtualSlave};
use crate::jackson::{EddSet, Item};
use mst_platform::{Fork, NodeId, Time};
use mst_schedule::{CommVector, SpiderSchedule, SpiderTask};
use std::cell::RefCell;

/// Result of the deadline-driven fork algorithm.
#[derive(Debug, Clone)]
pub struct ForkOutcome {
    /// The selected virtual slaves with their master-emission start
    /// times, in emission order (decreasing virtual processing time).
    pub selected: Vec<(VirtualSlave, Time)>,
    /// The executable schedule (a spider schedule over legs of length 1).
    pub schedule: SpiderSchedule,
}

impl ForkOutcome {
    /// Number of scheduled tasks.
    pub fn n(&self) -> usize {
        self.selected.len()
    }
}

/// The fork-graph algorithm of the paper's reference \[2]: schedules the
/// maximum number of tasks (at most `max_tasks`) on `fork`, all
/// completing by `deadline`.
///
/// Expansion (Figure 6) turns every node into single-task virtual
/// slaves; virtual slaves are considered by **ascending link latency,
/// ties by ascending processing time**, and greedily kept whenever the
/// growing set stays feasible under Jackson's rule. The witness schedule
/// serialises the kept communications back to back in decreasing
/// processing-time order.
pub fn max_tasks_fork_by_deadline(fork: &Fork, max_tasks: usize, deadline: Time) -> ForkOutcome {
    SCRATCH.with_borrow_mut(|scratch| {
        max_tasks_fork_by_deadline_scratch(fork, max_tasks, deadline, scratch)
    })
}

thread_local! {
    /// Per-thread scratch backing the buffer-less entry points, so batch
    /// traffic calling [`max_tasks_fork_by_deadline`] in a loop reuses
    /// one set of buffers per worker thread.
    static SCRATCH: RefCell<ForkScratch> = RefCell::new(ForkScratch::new());
}

/// Reusable working memory for the fork selection: the merging-expansion
/// heap and the greedy's feasible set. One value threaded through a
/// deadline sweep makes the probes allocation-free steady-state.
#[derive(Debug, Clone)]
pub struct ForkScratch {
    merge: ExpansionMerge,
    set: EddSet<VirtualSlave>,
}

impl ForkScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> ForkScratch {
        ForkScratch { merge: ExpansionMerge::new(), set: EddSet::new(0) }
    }
}

impl Default for ForkScratch {
    fn default() -> ForkScratch {
        ForkScratch::new()
    }
}

/// Runs the greedy selection, leaving the selected items in
/// `scratch.set`; returns the number selected. Allocation-free once the
/// scratch buffers have grown.
///
/// This is also the binary-search probe: the achievable task count by
/// `deadline`, computed without materialising a witness.
pub fn count_tasks_fork_by_deadline(
    fork: &Fork,
    max_tasks: usize,
    deadline: Time,
    scratch: &mut ForkScratch,
) -> usize {
    scratch.merge.begin(fork, deadline, max_tasks);
    scratch.set.reset(deadline);
    while scratch.set.len() < max_tasks {
        let Some(v) = scratch.merge.next_slave() else { break };
        scratch.set.try_insert(Item { comm: v.comm, proc_time: v.proc_time, payload: v });
    }
    scratch.set.len()
}

/// [`max_tasks_fork_by_deadline`] through caller-owned scratch buffers.
pub fn max_tasks_fork_by_deadline_scratch(
    fork: &Fork,
    max_tasks: usize,
    deadline: Time,
    scratch: &mut ForkScratch,
) -> ForkOutcome {
    count_tasks_fork_by_deadline(fork, max_tasks, deadline, scratch);
    materialise(fork, deadline, scratch)
}

/// Converts the selection sitting in `scratch.set` into an owned
/// [`ForkOutcome`] — the only allocating step of the pipeline.
fn materialise(fork: &Fork, deadline: Time, scratch: &ForkScratch) -> ForkOutcome {
    let emissions = scratch.set.emission_times();
    let selected: Vec<(VirtualSlave, Time)> =
        scratch.set.items().iter().zip(&emissions).map(|(item, &t)| (item.payload, t)).collect();
    ForkOutcome { schedule: realise(fork, &selected, deadline), selected }
}

/// Converts selected virtual slaves + emission times into an executable
/// star schedule: each physical node runs its tasks back to back in
/// arrival order. Completion by `deadline` is guaranteed by the
/// expansion's slack encoding and asserted in debug builds.
fn realise(fork: &Fork, selected: &[(VirtualSlave, Time)], deadline: Time) -> SpiderSchedule {
    let mut proc_free = vec![0; fork.len() + 1];
    // Emission order is the serialisation order; arrivals at a node are in
    // emission order, so a single pass suffices.
    let mut tasks = Vec::with_capacity(selected.len());
    for &(v, emit) in selected {
        let arrival = emit + v.comm;
        let start = arrival.max(proc_free[v.source]);
        let end = start + fork.w(v.source);
        proc_free[v.source] = end;
        debug_assert!(end <= deadline, "realised task ends at {end}, past the deadline {deadline}");
        tasks.push(SpiderTask::new(
            NodeId { leg: v.source - 1, depth: 1 },
            start,
            CommVector::new(vec![emit]),
            fork.w(v.source),
        ));
    }
    SpiderSchedule::new(tasks)
}

/// Minimum-makespan schedule of exactly `n` tasks on a fork, by binary
/// search over the deadline. Returns `(makespan, outcome)`.
///
/// The task count achievable by a deadline is non-decreasing in the
/// deadline, so the binary search is exact; the upper bound seeds from
/// running everything on the best single slave.
///
/// ```
/// use mst_platform::Fork;
/// use mst_fork::schedule_fork;
/// let fork = Fork::from_pairs(&[(1, 4), (2, 3)]).unwrap();
/// let (makespan, outcome) = schedule_fork(&fork, 6);
/// assert_eq!(outcome.n(), 6);
/// assert!(makespan <= fork.makespan_upper_bound(6));
/// ```
pub fn schedule_fork(fork: &Fork, n: usize) -> (Time, ForkOutcome) {
    assert!(n >= 1, "schedule_fork requires at least one task");
    SCRATCH.with_borrow_mut(|scratch| {
        // lo = 1: no task can finish by tick 0 (c, w >= 1).
        let (makespan, cached) = search_min_deadline(1, fork.makespan_upper_bound(n), n, |d| {
            count_tasks_fork_by_deadline(fork, n, d, scratch)
        });
        if !cached {
            count_tasks_fork_by_deadline(fork, n, makespan, scratch);
        }
        (makespan, materialise(fork, makespan, scratch))
    })
}

/// Exact binary search for the smallest deadline whose `probe` count
/// reaches `target` — the shared skeleton of the incremental deadline
/// searches (`schedule_fork`, `mst_spider::schedule_spider`).
///
/// `probe` is expected to leave its selection in caller-owned scratch
/// state; the returned flag says whether the **final** probe ran at the
/// returned deadline (the caller can then materialise its witness from
/// the scratch without re-probing). The probe count must be
/// non-decreasing in the deadline, and `hi` must be feasible (asserted
/// in debug builds).
pub fn search_min_deadline(
    mut lo: Time,
    mut hi: Time,
    target: usize,
    mut probe: impl FnMut(Time) -> usize,
) -> (Time, bool) {
    #[cfg(not(debug_assertions))]
    let mut probed: Option<Time> = None;
    #[cfg(debug_assertions)]
    let mut probed: Option<Time> = {
        assert_eq!(probe(hi), target, "the upper bound must be feasible");
        Some(hi)
    };
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let feasible = probe(mid) >= target;
        probed = Some(mid);
        if feasible {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    (lo, probed == Some(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_platform::{GeneratorConfig, HeterogeneityProfile, Spider, Tree};
    use mst_schedule::check_spider;

    fn spider_of(fork: &Fork) -> Spider {
        Spider::from_fork(fork)
    }

    #[test]
    fn single_slave_matches_pipeline_capacity() {
        let fork = Fork::from_pairs(&[(2, 5)]).unwrap();
        for deadline in 0..40 {
            let out = max_tasks_fork_by_deadline(&fork, 100, deadline);
            // capacity: largest k with c + w + (k-1)*max(c,w) <= deadline
            let mut cap = 0;
            while 2 + 5 + cap as Time * 5 <= deadline {
                cap += 1;
            }
            assert_eq!(out.n(), cap, "deadline {deadline}");
            check_spider(&spider_of(&fork), &out.schedule).assert_feasible();
        }
    }

    #[test]
    fn greedy_prefers_cheap_links() {
        // Two identical CPUs, one behind a fast link: with a deadline that
        // fits only a few tasks, the fast link gets them.
        let fork = Fork::from_pairs(&[(1, 4), (4, 4)]).unwrap();
        let out = max_tasks_fork_by_deadline(&fork, 10, 9);
        assert!(out.n() >= 2);
        let fast: usize = out.selected.iter().filter(|(v, _)| v.source == 1).count();
        let slow: usize = out.selected.iter().filter(|(v, _)| v.source == 2).count();
        assert!(fast >= slow, "fast-link slave should carry at least as many tasks");
        check_spider(&spider_of(&fork), &out.schedule).assert_feasible();
    }

    #[test]
    fn schedules_are_feasible_and_meet_deadline() {
        for seed in 0..30u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let fork = g.fork(1 + (seed % 6) as usize);
            for deadline in [3, 8, 15, 30] {
                let out = max_tasks_fork_by_deadline(&fork, 20, deadline);
                check_spider(&spider_of(&fork), &out.schedule).assert_feasible();
                for t in out.schedule.tasks() {
                    assert!(t.end() <= deadline);
                }
                assert_eq!(out.schedule.n(), out.n());
            }
        }
    }

    #[test]
    fn task_count_matches_exhaustive_optimum() {
        // The substrate's own optimality (Beaumont et al.), validated
        // against exhaustive search on small stars.
        use mst_baselines::max_tasks_by_deadline;
        for seed in 0..25u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let fork = g.fork(1 + (seed % 3) as usize);
            let tree = Tree::from_spider(&spider_of(&fork));
            for deadline in [4, 9, 14, 22] {
                let algo = max_tasks_fork_by_deadline(&fork, 5, deadline).n();
                let exact = max_tasks_by_deadline(&tree, deadline, 5);
                assert_eq!(algo, exact, "seed {seed}, deadline {deadline}, {fork}");
            }
        }
    }

    #[test]
    fn binary_searched_makespan_matches_exhaustive_optimum() {
        use mst_baselines::optimal_spider_makespan;
        for seed in 0..20u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let fork = g.fork(1 + (seed % 3) as usize);
            let n = 1 + (seed % 5) as usize;
            let (makespan, out) = schedule_fork(&fork, n);
            assert_eq!(out.n(), n);
            check_spider(&spider_of(&fork), &out.schedule).assert_feasible();
            let exact = optimal_spider_makespan(&spider_of(&fork), n);
            assert_eq!(makespan, exact, "seed {seed}, n {n}, {fork}");
        }
    }

    #[test]
    fn count_is_monotone_in_deadline() {
        let fork = Fork::from_pairs(&[(2, 3), (1, 6), (4, 2)]).unwrap();
        let mut prev = 0;
        for deadline in 0..40 {
            let k = max_tasks_fork_by_deadline(&fork, 50, deadline).n();
            assert!(k >= prev, "deadline {deadline}: {k} < {prev}");
            prev = k;
        }
    }
}
