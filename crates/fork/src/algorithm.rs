//! The bandwidth-centric greedy and the executable fork schedule.

use crate::expand::{expand_fork, VirtualSlave};
use crate::jackson::{EddSet, Item};
use mst_platform::{Fork, NodeId, Time};
use mst_schedule::{CommVector, SpiderSchedule, SpiderTask};

/// Result of the deadline-driven fork algorithm.
#[derive(Debug, Clone)]
pub struct ForkOutcome {
    /// The selected virtual slaves with their master-emission start
    /// times, in emission order (decreasing virtual processing time).
    pub selected: Vec<(VirtualSlave, Time)>,
    /// The executable schedule (a spider schedule over legs of length 1).
    pub schedule: SpiderSchedule,
}

impl ForkOutcome {
    /// Number of scheduled tasks.
    pub fn n(&self) -> usize {
        self.selected.len()
    }
}

/// The fork-graph algorithm of the paper's reference [2]: schedules the
/// maximum number of tasks (at most `max_tasks`) on `fork`, all
/// completing by `deadline`.
///
/// Expansion (Figure 6) turns every node into single-task virtual
/// slaves; virtual slaves are considered by **ascending link latency,
/// ties by ascending processing time**, and greedily kept whenever the
/// growing set stays feasible under Jackson's rule. The witness schedule
/// serialises the kept communications back to back in decreasing
/// processing-time order.
pub fn max_tasks_fork_by_deadline(fork: &Fork, max_tasks: usize, deadline: Time) -> ForkOutcome {
    let mut virtuals = expand_fork(fork, deadline, max_tasks);
    virtuals.sort_by_key(|v| (v.comm, v.proc_time));

    let mut set: EddSet<VirtualSlave> = EddSet::new(deadline);
    for v in virtuals {
        if set.len() == max_tasks {
            break;
        }
        set.try_insert(Item { comm: v.comm, proc_time: v.proc_time, payload: v });
    }

    let emissions = set.emission_times();
    let selected: Vec<(VirtualSlave, Time)> =
        set.items().iter().zip(&emissions).map(|(item, &t)| (item.payload, t)).collect();

    ForkOutcome { schedule: realise(fork, &selected, deadline), selected }
}

/// Converts selected virtual slaves + emission times into an executable
/// star schedule: each physical node runs its tasks back to back in
/// arrival order. Completion by `deadline` is guaranteed by the
/// expansion's slack encoding and asserted in debug builds.
fn realise(fork: &Fork, selected: &[(VirtualSlave, Time)], deadline: Time) -> SpiderSchedule {
    let mut proc_free = vec![0; fork.len() + 1];
    // Emission order is the serialisation order; arrivals at a node are in
    // emission order, so a single pass suffices.
    let mut tasks = Vec::with_capacity(selected.len());
    for &(v, emit) in selected {
        let arrival = emit + v.comm;
        let start = arrival.max(proc_free[v.source]);
        let end = start + fork.w(v.source);
        proc_free[v.source] = end;
        debug_assert!(end <= deadline, "realised task ends at {end}, past the deadline {deadline}");
        tasks.push(SpiderTask::new(
            NodeId { leg: v.source - 1, depth: 1 },
            start,
            CommVector::new(vec![emit]),
            fork.w(v.source),
        ));
    }
    SpiderSchedule::new(tasks)
}

/// Minimum-makespan schedule of exactly `n` tasks on a fork, by binary
/// search over the deadline. Returns `(makespan, outcome)`.
///
/// The task count achievable by a deadline is non-decreasing in the
/// deadline, so the binary search is exact; the upper bound seeds from
/// running everything on the best single slave.
///
/// ```
/// use mst_platform::Fork;
/// use mst_fork::schedule_fork;
/// let fork = Fork::from_pairs(&[(1, 4), (2, 3)]).unwrap();
/// let (makespan, outcome) = schedule_fork(&fork, 6);
/// assert_eq!(outcome.n(), 6);
/// assert!(makespan <= fork.makespan_upper_bound(6));
/// ```
pub fn schedule_fork(fork: &Fork, n: usize) -> (Time, ForkOutcome) {
    assert!(n >= 1, "schedule_fork requires at least one task");
    let mut lo = 1; // no task can finish by tick 0 (c, w >= 1)
    let mut hi = fork.makespan_upper_bound(n);
    debug_assert!(max_tasks_fork_by_deadline(fork, n, hi).n() == n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if max_tasks_fork_by_deadline(fork, n, mid).n() >= n {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    (lo, max_tasks_fork_by_deadline(fork, n, lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_platform::{GeneratorConfig, HeterogeneityProfile, Spider, Tree};
    use mst_schedule::check_spider;

    fn spider_of(fork: &Fork) -> Spider {
        Spider::from_fork(fork)
    }

    #[test]
    fn single_slave_matches_pipeline_capacity() {
        let fork = Fork::from_pairs(&[(2, 5)]).unwrap();
        for deadline in 0..40 {
            let out = max_tasks_fork_by_deadline(&fork, 100, deadline);
            // capacity: largest k with c + w + (k-1)*max(c,w) <= deadline
            let mut cap = 0;
            while 2 + 5 + cap as Time * 5 <= deadline {
                cap += 1;
            }
            assert_eq!(out.n(), cap, "deadline {deadline}");
            check_spider(&spider_of(&fork), &out.schedule).assert_feasible();
        }
    }

    #[test]
    fn greedy_prefers_cheap_links() {
        // Two identical CPUs, one behind a fast link: with a deadline that
        // fits only a few tasks, the fast link gets them.
        let fork = Fork::from_pairs(&[(1, 4), (4, 4)]).unwrap();
        let out = max_tasks_fork_by_deadline(&fork, 10, 9);
        assert!(out.n() >= 2);
        let fast: usize = out.selected.iter().filter(|(v, _)| v.source == 1).count();
        let slow: usize = out.selected.iter().filter(|(v, _)| v.source == 2).count();
        assert!(fast >= slow, "fast-link slave should carry at least as many tasks");
        check_spider(&spider_of(&fork), &out.schedule).assert_feasible();
    }

    #[test]
    fn schedules_are_feasible_and_meet_deadline() {
        for seed in 0..30u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let fork = g.fork(1 + (seed % 6) as usize);
            for deadline in [3, 8, 15, 30] {
                let out = max_tasks_fork_by_deadline(&fork, 20, deadline);
                check_spider(&spider_of(&fork), &out.schedule).assert_feasible();
                for t in out.schedule.tasks() {
                    assert!(t.end() <= deadline);
                }
                assert_eq!(out.schedule.n(), out.n());
            }
        }
    }

    #[test]
    fn task_count_matches_exhaustive_optimum() {
        // The substrate's own optimality (Beaumont et al.), validated
        // against exhaustive search on small stars.
        use mst_baselines::max_tasks_by_deadline;
        for seed in 0..25u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let fork = g.fork(1 + (seed % 3) as usize);
            let tree = Tree::from_spider(&spider_of(&fork));
            for deadline in [4, 9, 14, 22] {
                let algo = max_tasks_fork_by_deadline(&fork, 5, deadline).n();
                let exact = max_tasks_by_deadline(&tree, deadline, 5);
                assert_eq!(algo, exact, "seed {seed}, deadline {deadline}, {fork}");
            }
        }
    }

    #[test]
    fn binary_searched_makespan_matches_exhaustive_optimum() {
        use mst_baselines::optimal_spider_makespan;
        for seed in 0..20u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let fork = g.fork(1 + (seed % 3) as usize);
            let n = 1 + (seed % 5) as usize;
            let (makespan, out) = schedule_fork(&fork, n);
            assert_eq!(out.n(), n);
            check_spider(&spider_of(&fork), &out.schedule).assert_feasible();
            let exact = optimal_spider_makespan(&spider_of(&fork), n);
            assert_eq!(makespan, exact, "seed {seed}, n {n}, {fork}");
        }
    }

    #[test]
    fn count_is_monotone_in_deadline() {
        let fork = Fork::from_pairs(&[(2, 3), (1, 6), (4, 2)]).unwrap();
        let mut prev = 0;
        for deadline in 0..40 {
            let k = max_tasks_fork_by_deadline(&fork, 50, deadline).n();
            assert!(k >= prev, "deadline {deadline}: {k} < {prev}");
            prev = k;
        }
    }
}
