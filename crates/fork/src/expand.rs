//! Node expansion: Figure 6 of the paper.

use mst_platform::{Fork, Processor, Time};

/// A single-task virtual slave produced by expanding a physical node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualSlave {
    /// Link latency (equal to the physical node's `c_i`).
    pub comm: Time,
    /// Virtual processing time `w_i + rank * max(c_i, w_i)`.
    pub proc_time: Time,
    /// The physical slave this came from (**1-based** fork index).
    pub source: usize,
    /// `rank = q`: this virtual slave stands for the `(q+1)`-th-from-last
    /// task executed on the physical node.
    pub rank: usize,
}

impl VirtualSlave {
    /// Latest tick at which this slave's communication may *start* and
    /// still meet `deadline`.
    #[inline]
    pub fn latest_emission(&self, deadline: Time) -> Time {
        deadline - self.proc_time - self.comm
    }
}

/// Expands physical slave `source` (**1-based**) into its virtual slaves
/// that can possibly finish by `deadline`, capped at `max_tasks` ranks.
///
/// Rank `q` has processing time `w + q * max(c, w)`; it is usable only if
/// `c + w + q * m <= deadline`, so the expansion is finite even though
/// the paper draws it as unbounded.
pub fn expand_slave(
    proc: Processor,
    source: usize,
    deadline: Time,
    max_tasks: usize,
) -> Vec<VirtualSlave> {
    let m = proc.period();
    let mut out = Vec::new();
    for rank in 0..max_tasks {
        let proc_time = proc.work + rank as Time * m;
        if proc.comm + proc_time > deadline {
            break;
        }
        out.push(VirtualSlave { comm: proc.comm, proc_time, source, rank });
    }
    out
}

/// Expands every slave of a fork; the result is unsorted.
pub fn expand_fork(fork: &Fork, deadline: Time, max_tasks: usize) -> Vec<VirtualSlave> {
    let mut out = Vec::new();
    for (idx, &p) in fork.slaves().iter().enumerate() {
        out.extend(expand_slave(p, idx + 1, deadline, max_tasks));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_uses_period_max_c_w() {
        // Figure 6: processing times w, w + m, w + 2m with m = max(c, w).
        let p = Processor::of(2, 5); // m = 5
        let vs = expand_slave(p, 1, 100, 4);
        let times: Vec<Time> = vs.iter().map(|v| v.proc_time).collect();
        assert_eq!(times, vec![5, 10, 15, 20]);
        assert!(vs.iter().all(|v| v.comm == 2 && v.source == 1));

        let p = Processor::of(5, 2); // comm-bound: m = 5
        let vs = expand_slave(p, 3, 100, 3);
        let times: Vec<Time> = vs.iter().map(|v| v.proc_time).collect();
        assert_eq!(times, vec![2, 7, 12]);
    }

    #[test]
    fn expansion_truncates_at_deadline() {
        let p = Processor::of(2, 5);
        // c + w + q*5 <= 14  =>  q <= 1.4  =>  ranks 0 and 1
        let vs = expand_slave(p, 1, 14, 10);
        assert_eq!(vs.len(), 2);
        // deadline too tight for even one task
        assert!(expand_slave(p, 1, 6, 10).is_empty());
        assert_eq!(expand_slave(p, 1, 7, 10).len(), 1);
    }

    #[test]
    fn expansion_count_matches_single_node_capacity() {
        // The number of virtual slaves usable by `deadline` must equal the
        // number of tasks the physical node can complete by `deadline`
        // (pipeline: c + w + q * max(c, w)) — the equivalence Figure 6
        // claims.
        for (c, w) in [(2, 5), (5, 2), (3, 3), (1, 7), (7, 1)] {
            let p = Processor::of(c, w);
            for deadline in 0..40 {
                let by_expansion = expand_slave(p, 1, deadline, 100).len();
                // direct count: largest k with c + w + (k-1)*m <= deadline
                let m = p.period();
                let mut direct = 0;
                while c + w + direct as Time * m <= deadline {
                    direct += 1;
                }
                assert_eq!(by_expansion, direct, "c={c}, w={w}, deadline={deadline}");
            }
        }
    }

    #[test]
    fn fork_expansion_tags_sources() {
        let fork = Fork::from_pairs(&[(1, 2), (3, 4)]).unwrap();
        let vs = expand_fork(&fork, 20, 3);
        assert!(vs.iter().any(|v| v.source == 1));
        assert!(vs.iter().any(|v| v.source == 2));
        assert!(vs.iter().all(|v| v.source == 1 && v.comm == 1 || v.source == 2 && v.comm == 3));
    }

    #[test]
    fn latest_emission_accounts_for_comm_and_proc() {
        let v = VirtualSlave { comm: 2, proc_time: 8, source: 1, rank: 0 };
        assert_eq!(v.latest_emission(14), 4);
    }
}
