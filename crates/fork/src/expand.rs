//! Node expansion: Figure 6 of the paper.
//!
//! Two implementations produce the same virtual-slave sequence:
//!
//! * [`expand_fork`] — the reference: materialise every `(node, rank)`
//!   pair into a `Vec` (the caller sorts it). Kept for tests and as the
//!   parity oracle.
//! * [`ExpansionMerge`] — the hot path: each node's virtual slaves are
//!   already emitted in ascending `(comm, proc_time)` order (the comm is
//!   constant and `proc_time` grows by the node's period per rank), so a
//!   k-way merge over per-node rank streams yields the globally sorted
//!   order lazily, without materialising or sorting anything. Its heap
//!   buffer is reusable across calls, so a deadline sweep allocates
//!   nothing steady-state.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use mst_platform::{Fork, Processor, Time};

/// A single-task virtual slave produced by expanding a physical node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualSlave {
    /// Link latency (equal to the physical node's `c_i`).
    pub comm: Time,
    /// Virtual processing time `w_i + rank * max(c_i, w_i)`.
    pub proc_time: Time,
    /// The physical slave this came from (**1-based** fork index).
    pub source: usize,
    /// `rank = q`: this virtual slave stands for the `(q+1)`-th-from-last
    /// task executed on the physical node.
    pub rank: usize,
}

impl VirtualSlave {
    /// Latest tick at which this slave's communication may *start* and
    /// still meet `deadline`.
    #[inline]
    pub fn latest_emission(&self, deadline: Time) -> Time {
        deadline - self.proc_time - self.comm
    }
}

/// Expands physical slave `source` (**1-based**) into its virtual slaves
/// that can possibly finish by `deadline`, capped at `max_tasks` ranks.
///
/// Rank `q` has processing time `w + q * max(c, w)`; it is usable only if
/// `c + w + q * m <= deadline`, so the expansion is finite even though
/// the paper draws it as unbounded.
pub fn expand_slave(
    proc: Processor,
    source: usize,
    deadline: Time,
    max_tasks: usize,
) -> Vec<VirtualSlave> {
    let m = proc.period();
    let mut out = Vec::new();
    for rank in 0..max_tasks {
        let proc_time = proc.work + rank as Time * m;
        if proc.comm + proc_time > deadline {
            break;
        }
        out.push(VirtualSlave { comm: proc.comm, proc_time, source, rank });
    }
    out
}

/// Expands every slave of a fork; the result is unsorted.
pub fn expand_fork(fork: &Fork, deadline: Time, max_tasks: usize) -> Vec<VirtualSlave> {
    let mut out = Vec::new();
    for (idx, &p) in fork.slaves().iter().enumerate() {
        out.extend(expand_slave(p, idx + 1, deadline, max_tasks));
    }
    out
}

/// A k-way merge cursor: the next unconsumed virtual slave of one node.
///
/// Ordered **descending** by `(comm, proc_time, source, rank)` so that
/// [`BinaryHeap`] (a max-heap) pops the *smallest* key first — the exact
/// order `expand_fork` + stable sort by `(comm, proc_time)` produces,
/// since the reference generates ties in ascending `(source, rank)`
/// order and stable sorting preserves that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Cursor(VirtualSlave);

impl Cursor {
    #[inline]
    fn key(&self) -> (Time, Time, usize, usize) {
        (self.0.comm, self.0.proc_time, self.0.source, self.0.rank)
    }
}

impl Ord for Cursor {
    fn cmp(&self, other: &Cursor) -> Ordering {
        other.key().cmp(&self.key())
    }
}

impl PartialOrd for Cursor {
    fn partial_cmp(&self, other: &Cursor) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The merging expansion: streams a fork's virtual slaves in globally
/// ascending `(comm, proc_time)` order without materialising them.
///
/// Construction is `O(p)` pushes; each [`ExpansionMerge::next_slave`] is
/// one heap pop plus at most one push (`O(log p)`), so consuming `k`
/// slaves costs `O((p + k) log p)` against the reference's
/// `O(V log V)` sort over all `V` virtual slaves — and a consumer that
/// stops early (the greedy caps at `max_tasks` accepted) never pays for
/// the tail at all. Reuse one value across calls ([`ExpansionMerge::begin`]
/// clears but keeps the buffers) to run allocation-free steady-state.
#[derive(Debug, Clone, Default)]
pub struct ExpansionMerge {
    heap: BinaryHeap<Cursor>,
    /// Per-node steady-state period `max(c_i, w_i)`, indexed by
    /// `source - 1`; cached so successor cursors need no platform
    /// lookups.
    periods: Vec<Time>,
    max_tasks: usize,
    deadline: Time,
}

impl ExpansionMerge {
    /// An empty merge; call [`ExpansionMerge::begin`] to seed it.
    pub fn new() -> ExpansionMerge {
        ExpansionMerge::default()
    }

    /// (Re)seeds the merge over `fork`'s per-node rank streams, keeping
    /// previously grown buffer capacity.
    pub fn begin(&mut self, fork: &Fork, deadline: Time, max_tasks: usize) {
        self.heap.clear();
        self.periods.clear();
        self.max_tasks = max_tasks;
        self.deadline = deadline;
        for (idx, &p) in fork.slaves().iter().enumerate() {
            self.periods.push(p.period());
            if max_tasks > 0 && p.comm + p.work <= deadline {
                self.heap.push(Cursor(VirtualSlave {
                    comm: p.comm,
                    proc_time: p.work,
                    source: idx + 1,
                    rank: 0,
                }));
            }
        }
    }

    /// The next virtual slave in ascending `(comm, proc_time)` order
    /// (ties: ascending `(source, rank)`), or `None` when every stream
    /// is exhausted under the deadline/rank caps.
    pub fn next_slave(&mut self) -> Option<VirtualSlave> {
        let Cursor(v) = self.heap.pop()?;
        let successor_proc = v.proc_time + self.periods[v.source - 1];
        if v.rank + 1 < self.max_tasks && v.comm + successor_proc <= self.deadline {
            self.heap.push(Cursor(VirtualSlave {
                comm: v.comm,
                proc_time: successor_proc,
                source: v.source,
                rank: v.rank + 1,
            }));
        }
        Some(v)
    }
}

/// Expands every slave of a fork in globally sorted `(comm, proc_time)`
/// order via the merging iterator — the sequence `expand_fork` + stable
/// sort produces, computed lazily.
pub fn expand_fork_sorted(fork: &Fork, deadline: Time, max_tasks: usize) -> Vec<VirtualSlave> {
    let mut merge = ExpansionMerge::new();
    merge.begin(fork, deadline, max_tasks);
    let mut out = Vec::new();
    while let Some(v) = merge.next_slave() {
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_expansion_equals_sorted_reference() {
        use mst_platform::{GeneratorConfig, HeterogeneityProfile};
        for seed in 0..40u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let fork = g.fork(1 + (seed % 7) as usize);
            for deadline in [0, 3, 9, 17, 40] {
                for max_tasks in [0, 1, 5, 50] {
                    let mut reference = expand_fork(&fork, deadline, max_tasks);
                    reference.sort_by_key(|v| (v.comm, v.proc_time));
                    let merged = expand_fork_sorted(&fork, deadline, max_tasks);
                    assert_eq!(merged, reference, "seed {seed}, T {deadline}, cap {max_tasks}");
                }
            }
        }
    }

    #[test]
    fn merge_reuse_keeps_streams_independent() {
        let fork = Fork::from_pairs(&[(2, 5), (1, 3)]).unwrap();
        let mut merge = ExpansionMerge::new();
        merge.begin(&fork, 30, 10);
        let first: Vec<VirtualSlave> = std::iter::from_fn(|| merge.next_slave()).collect();
        // Re-begin on the same buffers: identical stream.
        merge.begin(&fork, 30, 10);
        let second: Vec<VirtualSlave> = std::iter::from_fn(|| merge.next_slave()).collect();
        assert_eq!(first, second);
        // A different deadline truncates, it doesn't leak prior state.
        merge.begin(&fork, 9, 10);
        let truncated: Vec<VirtualSlave> = std::iter::from_fn(|| merge.next_slave()).collect();
        let mut reference = expand_fork(&fork, 9, 10);
        reference.sort_by_key(|v| (v.comm, v.proc_time));
        assert_eq!(truncated, reference);
    }

    #[test]
    fn expansion_uses_period_max_c_w() {
        // Figure 6: processing times w, w + m, w + 2m with m = max(c, w).
        let p = Processor::of(2, 5); // m = 5
        let vs = expand_slave(p, 1, 100, 4);
        let times: Vec<Time> = vs.iter().map(|v| v.proc_time).collect();
        assert_eq!(times, vec![5, 10, 15, 20]);
        assert!(vs.iter().all(|v| v.comm == 2 && v.source == 1));

        let p = Processor::of(5, 2); // comm-bound: m = 5
        let vs = expand_slave(p, 3, 100, 3);
        let times: Vec<Time> = vs.iter().map(|v| v.proc_time).collect();
        assert_eq!(times, vec![2, 7, 12]);
    }

    #[test]
    fn expansion_truncates_at_deadline() {
        let p = Processor::of(2, 5);
        // c + w + q*5 <= 14  =>  q <= 1.4  =>  ranks 0 and 1
        let vs = expand_slave(p, 1, 14, 10);
        assert_eq!(vs.len(), 2);
        // deadline too tight for even one task
        assert!(expand_slave(p, 1, 6, 10).is_empty());
        assert_eq!(expand_slave(p, 1, 7, 10).len(), 1);
    }

    #[test]
    fn expansion_count_matches_single_node_capacity() {
        // The number of virtual slaves usable by `deadline` must equal the
        // number of tasks the physical node can complete by `deadline`
        // (pipeline: c + w + q * max(c, w)) — the equivalence Figure 6
        // claims.
        for (c, w) in [(2, 5), (5, 2), (3, 3), (1, 7), (7, 1)] {
            let p = Processor::of(c, w);
            for deadline in 0..40 {
                let by_expansion = expand_slave(p, 1, deadline, 100).len();
                // direct count: largest k with c + w + (k-1)*m <= deadline
                let m = p.period();
                let mut direct = 0;
                while c + w + direct as Time * m <= deadline {
                    direct += 1;
                }
                assert_eq!(by_expansion, direct, "c={c}, w={w}, deadline={deadline}");
            }
        }
    }

    #[test]
    fn fork_expansion_tags_sources() {
        let fork = Fork::from_pairs(&[(1, 2), (3, 4)]).unwrap();
        let vs = expand_fork(&fork, 20, 3);
        assert!(vs.iter().any(|v| v.source == 1));
        assert!(vs.iter().any(|v| v.source == 2));
        assert!(vs.iter().all(|v| v.source == 1 && v.comm == 1 || v.source == 2 && v.comm == 3));
    }

    #[test]
    fn latest_emission_accounts_for_comm_and_proc() {
        let v = VirtualSlave { comm: 2, proc_time: 8, source: 1, rank: 0 };
        assert_eq!(v.latest_emission(14), 4);
    }
}
