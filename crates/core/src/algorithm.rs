//! The backward greedy construction (Section 3 of the paper).

use crate::state::BackwardState;
use mst_platform::{Chain, Time};
use mst_schedule::{ChainSchedule, CommVector, TaskAssignment};

/// One backward step: the chosen placement for the task, plus every
/// candidate vector considered (index `k - 1` holds the candidate for
/// processor `k`). Exposed for the Lemma-1 structural checks and for the
/// figure-generation binaries.
#[derive(Debug, Clone)]
pub struct Step {
    /// Candidate communication vectors, one per processor.
    pub candidates: Vec<CommVector>,
    /// The selected (greatest) candidate.
    pub chosen: CommVector,
    /// The execution start `T(i) = o_{P(i)} - w_{P(i)}` implied by the
    /// selection.
    pub start: Time,
}

/// The backward greedy scheduler, stepping one task at a time from the
/// anchor towards time zero.
///
/// Most callers want the [`schedule_chain`] / [`schedule_chain_by_deadline`]
/// wrappers; the stepper is public so tests and experiments can observe
/// the intermediate hull/occupancy state and the candidate vectors.
#[derive(Debug, Clone)]
pub struct BackwardScheduler<'a> {
    chain: &'a Chain,
    state: BackwardState,
}

impl<'a> BackwardScheduler<'a> {
    /// A scheduler for `chain` anchored at `horizon` (`T_infinity` or
    /// `T_lim`).
    pub fn new(chain: &'a Chain, horizon: Time) -> Self {
        BackwardScheduler { chain, state: BackwardState::new(chain.len(), horizon) }
    }

    /// Read-only view of the hull/occupancy state.
    pub fn state(&self) -> &BackwardState {
        &self.state
    }

    /// The candidate communication vector `kC(i)` for placing the next
    /// task on processor `k` (paper, Section 3):
    ///
    /// ```text
    /// kC_k = min(o_k - w_k - c_k,  h_k - c_k)
    /// kC_j = min(kC_{j+1} - c_j,   h_j - c_j)      for j = k-1 .. 1
    /// ```
    ///
    /// The first term lets the execution finish exactly when processor
    /// `k` is next busy; the second keeps link `j` free of the already
    /// reserved (later) communications.
    pub fn candidate(&self, k: usize) -> CommVector {
        let chain = self.chain;
        let mut v = vec![0; k];
        v[k - 1] = (self.state.occupancy(k) - chain.w(k) - chain.c(k))
            .min(self.state.hull(k) - chain.c(k));
        for j in (1..k).rev() {
            v[j - 1] = (v[j] - chain.c(j)).min(self.state.hull(j) - chain.c(j));
        }
        CommVector::new(v)
    }

    /// Performs one backward step: evaluates all `p` candidates, commits
    /// the greatest (Definition-3 order) and returns the decision.
    ///
    /// The candidates all have distinct lengths, so the maximum is unique
    /// — "there is only one as their length differ" (Section 3).
    pub fn step(&mut self) -> Step {
        let p = self.chain.len();
        let mut candidates = Vec::with_capacity(p);
        for k in 1..=p {
            candidates.push(self.candidate(k));
        }
        // The paper scans k = p downto 1 replacing the incumbent whenever
        // it is strictly inferior; that is exactly "pick the maximum".
        let chosen = candidates.iter().max().expect("p >= 1").clone();
        let proc = chosen.len();
        let start = self.state.occupancy(proc) - self.chain.w(proc);
        self.state.commit(&chosen, start);
        Step { candidates, chosen, start }
    }

    /// One backward step that commits **only if** the best candidate's
    /// first-link emission is still non-negative (i.e. the task fits the
    /// deadline anchor); returns the committed vector and start, or
    /// `None` without mutating anything.
    ///
    /// This is [`BackwardScheduler::step`] minus the diagnostic
    /// [`Step`]: candidates are evaluated once (the peek-then-step
    /// pattern evaluated all `p` of them twice) and nothing but the
    /// chosen vector is materialised — the hot path of every `T_lim`
    /// probe in the spider deadline search.
    pub fn step_if_feasible(&mut self) -> Option<(CommVector, Time)> {
        let p = self.chain.len();
        let mut chosen = self.candidate(1);
        for k in 2..=p {
            let candidate = self.candidate(k);
            if candidate > chosen {
                chosen = candidate;
            }
        }
        if chosen.first() < 0 {
            return None;
        }
        let proc = chosen.len();
        let start = self.state.occupancy(proc) - self.chain.w(proc);
        self.state.commit(&chosen, start);
        Some((chosen, start))
    }

    /// Runs `count` backward steps and returns the schedule in emission
    /// order, **without** any time shift (times are relative to the
    /// anchor; the first emission may be negative).
    fn run(&mut self, count: usize) -> Vec<TaskAssignment> {
        let mut rev = Vec::with_capacity(count);
        for _ in 0..count {
            let step = self.step();
            let proc = step.chosen.len();
            rev.push(TaskAssignment::new(proc, step.start, step.chosen, self.chain.w(proc)));
        }
        rev.reverse();
        rev
    }
}

/// The makespan variant (Sections 3–5): schedules exactly `n` tasks on
/// `chain`, optimally in makespan (Theorem 1), in `O(n p^2)`.
///
/// The returned schedule is normalised to start at time 0 (the paper's
/// final "shift of `C^1_1` units").
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use mst_platform::Chain;
/// use mst_core::schedule_chain;
///
/// let chain = Chain::paper_figure2();
/// let schedule = schedule_chain(&chain, 5);
/// assert_eq!(schedule.makespan(), 14); // the paper's Figure 2
/// ```
pub fn schedule_chain(chain: &Chain, n: usize) -> ChainSchedule {
    assert!(n >= 1, "schedule_chain requires at least one task");
    let mut scheduler = BackwardScheduler::new(chain, chain.t_infinity(n));
    let tasks = scheduler.run(n);
    let mut schedule = ChainSchedule::new(tasks);
    let shift = schedule.start_time().expect("n >= 1");
    schedule.shift(-shift);
    schedule
}

/// The `T_lim` variant (Section 7): schedules **as many tasks as
/// possible** — at most `max_tasks` — so that every task completes by
/// `deadline`, stopping as soon as a task would need a first-link
/// emission before time 0.
///
/// Times in the returned schedule are absolute (the schedule is *not*
/// shifted): the anchor `deadline` is meaningful to the caller, e.g. the
/// spider transformation which derives virtual processing times
/// `T_lim - C^i_1 - c_1` from the raw emission times.
///
/// The schedule of the `k` tasks returned for a smaller budget is always
/// a suffix of the schedule returned for a larger one — the backward
/// construction is incremental, which is exactly the property Lemma 4
/// exploits.
///
/// ```
/// use mst_platform::Chain;
/// use mst_core::schedule_chain_by_deadline;
///
/// let chain = Chain::paper_figure2();
/// // Exactly the paper's batch fits by its optimal makespan 14 ...
/// assert_eq!(schedule_chain_by_deadline(&chain, 100, 14).n(), 5);
/// // ... and nothing fits before one task can complete (c1 + w1 = 5).
/// assert!(schedule_chain_by_deadline(&chain, 100, 4).is_empty());
/// ```
pub fn schedule_chain_by_deadline(
    chain: &Chain,
    max_tasks: usize,
    deadline: Time,
) -> ChainSchedule {
    let mut scheduler = BackwardScheduler::new(chain, deadline);
    let mut rev: Vec<TaskAssignment> = Vec::new();
    while rev.len() < max_tasks {
        let Some((chosen, start)) = scheduler.step_if_feasible() else { break };
        let proc = chosen.len();
        rev.push(TaskAssignment::new(proc, start, chosen, chain.w(proc)));
    }
    rev.reverse();
    ChainSchedule::new(rev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_platform::{GeneratorConfig, HeterogeneityProfile};
    use mst_schedule::check_chain;

    #[test]
    fn figure2_reproduced_exactly() {
        let chain = Chain::paper_figure2();
        let s = schedule_chain(&chain, 5);
        check_chain(&chain, &s).assert_feasible();
        assert_eq!(s.makespan(), 14, "the paper's Figure 2 makespan");
        // First-link emissions are {0, 2, 4, 6, 9}.
        let emissions: Vec<Time> = s.tasks().iter().map(|t| t.comms.first()).collect();
        assert_eq!(emissions, vec![0, 2, 4, 6, 9]);
        // Exactly one task on processor 2: the one emitted at time 4
        // (the virtual node of processing time 14 - 4 - 2 = 8 in Fig. 7).
        let on2 = s.tasks_on(2);
        assert_eq!(on2.len(), 1);
        assert_eq!(s.task(on2[0]).comms.first(), 4);
    }

    #[test]
    fn single_processor_is_pipeline_optimal() {
        // On one processor the optimum is c1 + (n-1) max(c1,w1) + w1.
        let chain = Chain::from_pairs(&[(2, 5)]).unwrap();
        for n in 1..8 {
            let s = schedule_chain(&chain, n);
            check_chain(&chain, &s).assert_feasible();
            assert_eq!(s.makespan(), chain.t_infinity(n));
        }
        let comm_bound = Chain::from_pairs(&[(5, 2)]).unwrap();
        for n in 1..8 {
            let s = schedule_chain(&comm_bound, n);
            check_chain(&comm_bound, &s).assert_feasible();
            assert_eq!(s.makespan(), comm_bound.t_infinity(n));
        }
    }

    #[test]
    fn single_task_picks_best_processor() {
        // One task: the algorithm must pick argmin_k (travel_k + w_k).
        let chain = Chain::from_pairs(&[(2, 50), (1, 30), (1, 2)]).unwrap();
        let s = schedule_chain(&chain, 1);
        check_chain(&chain, &s).assert_feasible();
        assert_eq!(s.task(1).proc, 3);
        assert_eq!(s.makespan(), 2 + 1 + 1 + 2); // travel 4 + w 2
    }

    #[test]
    fn schedules_are_feasible_on_random_instances() {
        for seed in 0..40u64 {
            let profile = HeterogeneityProfile::ALL[(seed % 5) as usize];
            let g = GeneratorConfig::new(profile, seed);
            let chain = g.chain(1 + (seed % 6) as usize);
            let n = 1 + (seed % 9) as usize;
            let s = schedule_chain(&chain, n);
            assert_eq!(s.n(), n);
            check_chain(&chain, &s).assert_feasible();
            assert!(s.start_time() == Some(0), "schedule must be normalised");
            assert!(s.makespan() <= chain.t_infinity(n), "never worse than master-only");
            assert!(s.makespan() >= chain.makespan_lower_bound(n).min(s.makespan()));
        }
    }

    #[test]
    fn makespan_monotone_in_n() {
        for seed in 0..10u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[0], seed);
            let chain = g.chain(4);
            let mut prev = 0;
            for n in 1..10 {
                let m = schedule_chain(&chain, n).makespan();
                assert!(m >= prev, "makespan must not decrease with more tasks");
                prev = m;
            }
        }
    }

    #[test]
    fn deadline_variant_respects_deadline_and_zero() {
        for seed in 0..25u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let chain = g.chain(1 + (seed % 5) as usize);
            for deadline in [0, 3, 7, 15, 40] {
                let s = schedule_chain_by_deadline(&chain, 50, deadline);
                check_chain(&chain, &s).assert_feasible();
                for t in s.tasks() {
                    assert!(t.end() <= deadline, "task finishes past the deadline");
                    assert!(t.comms.first() >= 0, "emission before time zero");
                }
            }
        }
    }

    #[test]
    fn deadline_variant_matches_makespan_variant_at_optimum() {
        // With deadline = optimal makespan, all n tasks must fit.
        for seed in 0..20u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let chain = g.chain(1 + (seed % 4) as usize);
            let n = 1 + (seed % 7) as usize;
            let makespan = schedule_chain(&chain, n).makespan();
            let s = schedule_chain_by_deadline(&chain, n, makespan);
            assert_eq!(s.n(), n, "optimal deadline must fit all tasks (seed {seed})");
            // ... and one tick less must not.
            let s = schedule_chain_by_deadline(&chain, n, makespan - 1);
            assert!(s.n() < n, "deadline below optimum cannot fit all tasks (seed {seed})");
        }
    }

    #[test]
    fn deadline_task_count_is_monotone_in_deadline() {
        for seed in 0..10u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let chain = g.chain(3);
            let mut prev = 0;
            for deadline in 0..60 {
                let k = schedule_chain_by_deadline(&chain, 100, deadline).n();
                assert!(k >= prev, "task count must not decrease with a later deadline");
                prev = k;
            }
        }
    }

    #[test]
    fn deadline_schedules_are_suffix_closed() {
        // The k-task schedule is the suffix of the m-task schedule, k <= m
        // (Lemma 4's iterative structure).
        for seed in 0..15u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let chain = g.chain(1 + (seed % 4) as usize);
            let deadline = 45;
            let full = schedule_chain_by_deadline(&chain, 12, deadline);
            for k in 0..=full.n() {
                let partial = schedule_chain_by_deadline(&chain, k, deadline);
                assert_eq!(partial.n(), k.min(full.n()));
                let suffix = &full.tasks()[full.n() - partial.n()..];
                assert_eq!(partial.tasks(), suffix, "seed {seed}, k {k}");
            }
        }
    }

    #[test]
    fn impossible_deadline_yields_empty_schedule() {
        let chain = Chain::paper_figure2();
        // One task needs at least c1 + w1 = 5 ticks.
        assert!(schedule_chain_by_deadline(&chain, 5, 4).is_empty());
        assert_eq!(schedule_chain_by_deadline(&chain, 5, 5).n(), 1);
    }

    #[test]
    fn stepper_exposes_candidates() {
        let chain = Chain::paper_figure2();
        let mut sched = BackwardScheduler::new(&chain, chain.t_infinity(1));
        let step = sched.step();
        assert_eq!(step.candidates.len(), 2);
        assert_eq!(step.candidates[0].len(), 1);
        assert_eq!(step.candidates[1].len(), 2);
        assert_eq!(step.chosen.len(), 1, "w1 path wins for a single task here");
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_tasks_panics() {
        let _ = schedule_chain(&Chain::paper_figure2(), 0);
    }
}
