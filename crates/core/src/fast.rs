//! An algebraically equivalent, faster candidate evaluation.
//!
//! The reference implementation ([`crate::BackwardScheduler`]) evaluates
//! all `p` candidate vectors in full — `O(p^2)` per task, the complexity
//! the paper states. Unrolling the candidate recurrence
//!
//! ```text
//! kC_j = min(kC_{j+1} - c_j, h_j - c_j)
//! ```
//!
//! with prefix sums `S_j = c_1 + ... + c_j` gives the closed form
//!
//! ```text
//! kC_j = S_{j-1} + min( min_{m = j..k-1} (h_m - S_m),  A_k - S_k )
//! A_k  = min(o_k - w_k, h_k)
//! ```
//!
//! so the *first* component of every candidate —
//! `kC_1 = min(min_{m<k} (h_m - S_m), A_k - S_k)` — can be computed for
//! all `k` in one `O(p)` sweep with a running prefix minimum. Since the
//! Definition-3 order compares first components first, only the
//! candidates tied on the maximal first component need materialising.
//! Ties are rare in heterogeneous instances, making the step effectively
//! `O(p)`; the worst case stays `O(p^2)`, so this is an *ablation* of the
//! constant factor, not of the asymptotic bound — the `chain_scaling`
//! bench quantifies the difference.

use crate::state::BackwardState;
use mst_platform::{Chain, Time};
use mst_schedule::{ChainSchedule, CommVector, TaskAssignment};

/// Drop-in replacement for [`crate::schedule_chain`] using the prefix-min
/// candidate front. Produces bit-identical schedules (asserted by tests).
// 1-based indexing by processor number mirrors the paper's formulas.
#[allow(clippy::needless_range_loop)]
pub fn schedule_chain_fast(chain: &Chain, n: usize) -> ChainSchedule {
    assert!(n >= 1, "schedule_chain_fast requires at least one task");
    let p = chain.len();
    let horizon = chain.t_infinity(n);
    let mut state = BackwardState::new(p, horizon);

    // Prefix sums of latencies: prefix[j] = c_1 + ... + c_j.
    let mut prefix = vec![0; p + 1];
    for j in 1..=p {
        prefix[j] = prefix[j - 1] + chain.c(j);
    }

    let mut rev: Vec<TaskAssignment> = Vec::with_capacity(n);
    let mut fronts: Vec<Time> = vec![0; p + 1];

    for _ in 0..n {
        // O(p) sweep: first components of all candidates.
        let mut running_min = Time::MAX;
        let mut best_front = Time::MIN;
        for k in 1..=p {
            let a_k = (state.occupancy(k) - chain.w(k)).min(state.hull(k));
            fronts[k] = running_min.min(a_k - prefix[k]);
            best_front = best_front.max(fronts[k]);
            running_min = running_min.min(state.hull(k) - prefix[k]);
        }
        // Materialise only the tied candidates and pick the Definition-3
        // maximum among them.
        let mut chosen: Option<CommVector> = None;
        for k in 1..=p {
            if fronts[k] != best_front {
                continue;
            }
            let cand = materialise(chain, &state, k);
            debug_assert_eq!(cand.first(), best_front);
            chosen = match chosen {
                Some(best) if cand <= best => Some(best),
                _ => Some(cand),
            };
        }
        let chosen = chosen.expect("at least one candidate attains the front");
        let proc = chosen.len();
        let start = state.occupancy(proc) - chain.w(proc);
        state.commit(&chosen, start);
        rev.push(TaskAssignment::new(proc, start, chosen, chain.w(proc)));
    }

    rev.reverse();
    let mut schedule = ChainSchedule::new(rev);
    let shift = schedule.start_time().expect("n >= 1");
    schedule.shift(-shift);
    schedule
}

/// Full candidate vector for processor `k` (the reference recurrence).
fn materialise(chain: &Chain, state: &BackwardState, k: usize) -> CommVector {
    let mut v = vec![0; k];
    v[k - 1] = (state.occupancy(k) - chain.w(k) - chain.c(k)).min(state.hull(k) - chain.c(k));
    for j in (1..k).rev() {
        v[j - 1] = (v[j] - chain.c(j)).min(state.hull(j) - chain.c(j));
    }
    CommVector::new(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::schedule_chain;
    use mst_platform::{GeneratorConfig, HeterogeneityProfile};

    #[test]
    fn identical_to_reference_on_figure2() {
        let chain = Chain::paper_figure2();
        assert_eq!(schedule_chain_fast(&chain, 5), schedule_chain(&chain, 5));
    }

    #[test]
    fn identical_to_reference_on_random_instances() {
        for seed in 0..60u64 {
            let profile = HeterogeneityProfile::ALL[(seed % 5) as usize];
            let g = GeneratorConfig::new(profile, seed);
            let p = 1 + (seed % 7) as usize;
            let n = 1 + (seed % 11) as usize;
            let chain = g.chain(p);
            assert_eq!(
                schedule_chain_fast(&chain, n),
                schedule_chain(&chain, n),
                "divergence at seed {seed} (p={p}, n={n})"
            );
        }
    }

    #[test]
    fn identical_on_tie_heavy_homogeneous_chains() {
        // Homogeneous chains maximise front ties, stressing the
        // tie-breaking path.
        let chain = Chain::from_pairs(&[(2, 2); 6]).unwrap();
        for n in 1..12 {
            assert_eq!(schedule_chain_fast(&chain, n), schedule_chain(&chain, n), "n={n}");
        }
    }
}
