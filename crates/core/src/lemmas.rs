//! Machine checks for the structural lemmas of Sections 4–5.
//!
//! The paper's optimality proof rests on two structural properties of the
//! backward construction. They are proved on paper; here they are
//! *checked on instances*, both as regression tests and as the `--lemma1`
//! table of the experiment harness (experiment F4 in DESIGN.md).

use crate::algorithm::{schedule_chain, BackwardScheduler};
use mst_platform::{Chain, Time};

/// A violation of Lemma 1 found while replaying the construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossingViolation {
    /// Backward step index (0 = last task).
    pub step: usize,
    /// The two candidate processors whose vectors cross.
    pub k: usize,
    /// See `k`.
    pub l: usize,
    /// The suffix start `q` at which the order flipped.
    pub q: usize,
}

/// Checks **Lemma 1** (no crossing) on the full backward run for `n`
/// tasks: whenever candidate `kC(i)` precedes `lC(i)`, every common
/// suffix `{.C_q, ..}` must preserve that order — geometrically, two
/// candidate communication vectors of one task never cross (Figure 4).
///
/// Returns all violations (empty = lemma holds on this instance).
pub fn check_lemma1_no_crossing(chain: &Chain, n: usize) -> Vec<CrossingViolation> {
    let mut violations = Vec::new();
    let mut scheduler = BackwardScheduler::new(chain, chain.t_infinity(n));
    for step_idx in 0..n {
        let step = scheduler.step();
        let cands = &step.candidates;
        for k in 1..=cands.len() {
            for l in 1..=cands.len() {
                if k == l {
                    continue;
                }
                let (ck, cl) = (&cands[k - 1], &cands[l - 1]);
                if !ck.precedes(cl) {
                    continue;
                }
                for q in 1..=k.min(l) {
                    let sk = ck.suffix(q);
                    let sl = cl.suffix(q);
                    if !sk.precedes(&sl) && sk != sl {
                        violations.push(CrossingViolation { step: step_idx, k, l, q });
                    }
                }
            }
        }
    }
    violations
}

/// The outcome of the Lemma-2 consistency check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lemma2Outcome {
    /// The restriction of the chain schedule to processors `>= 2` equals
    /// the algorithm's schedule on the sub-chain, up to the stated time
    /// shift. Carries the number of forwarded tasks `n'`.
    Consistent {
        /// Number of tasks forwarded past processor 1.
        forwarded: usize,
    },
    /// A structural mismatch, described for debugging.
    Mismatch(String),
}

/// Checks **Lemma 2** (sub-chain consistency): the tasks that the
/// `n`-task schedule places on processors `2..=p` form, after the shift
/// `T_shift = min_i C^i_2`, exactly the schedule our algorithm produces
/// for that many tasks on the sub-chain `(c_i, w_i)_{i >= 2}`.
pub fn check_lemma2_subchain(chain: &Chain, n: usize) -> Lemma2Outcome {
    let full = schedule_chain(chain, n);
    let forwarded: Vec<_> = full.tasks().iter().filter(|t| t.proc >= 2).collect();
    let n_prime = forwarded.len();
    if n_prime == 0 {
        return Lemma2Outcome::Consistent { forwarded: 0 };
    }
    let sub_chain = match chain.subchain(2) {
        Some(c) => c,
        None => {
            return Lemma2Outcome::Mismatch("tasks forwarded past a single-processor chain".into())
        }
    };
    let sub = schedule_chain(&sub_chain, n_prime);
    let t_shift: Time = forwarded.iter().map(|t| t.comms.get(2)).min().expect("n' >= 1");

    // Forwarded tasks, ordered by their link-2 emission (their emission
    // order on the sub-chain).
    let mut by_link2 = forwarded.clone();
    by_link2.sort_by_key(|t| t.comms.get(2));

    for (idx, task) in by_link2.iter().enumerate() {
        let hat = sub.task(idx + 1);
        if hat.proc != task.proc - 1 {
            return Lemma2Outcome::Mismatch(format!(
                "task {}: sub-chain processor {} vs expected {}",
                idx + 1,
                hat.proc,
                task.proc - 1
            ));
        }
        if hat.start != task.start - t_shift {
            return Lemma2Outcome::Mismatch(format!(
                "task {}: sub-chain start {} vs expected {}",
                idx + 1,
                hat.start,
                task.start - t_shift
            ));
        }
        for q in 2..=task.proc {
            if hat.comms.get(q - 1) != task.comms.get(q) - t_shift {
                return Lemma2Outcome::Mismatch(format!(
                    "task {}: emission on link {} is {} vs expected {}",
                    idx + 1,
                    q,
                    hat.comms.get(q - 1),
                    task.comms.get(q) - t_shift
                ));
            }
        }
    }
    Lemma2Outcome::Consistent { forwarded: n_prime }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_platform::{GeneratorConfig, HeterogeneityProfile};

    #[test]
    fn lemma1_holds_on_figure2() {
        assert!(check_lemma1_no_crossing(&Chain::paper_figure2(), 5).is_empty());
    }

    #[test]
    fn lemma1_holds_on_random_instances() {
        for seed in 0..40u64 {
            let profile = HeterogeneityProfile::ALL[(seed % 5) as usize];
            let g = GeneratorConfig::new(profile, seed);
            let chain = g.chain(2 + (seed % 5) as usize);
            let n = 1 + (seed % 8) as usize;
            let v = check_lemma1_no_crossing(&chain, n);
            assert!(v.is_empty(), "Lemma 1 violated at seed {seed}: {v:?}");
        }
    }

    #[test]
    fn lemma2_holds_on_figure2() {
        assert_eq!(
            check_lemma2_subchain(&Chain::paper_figure2(), 5),
            Lemma2Outcome::Consistent { forwarded: 1 }
        );
    }

    #[test]
    fn lemma2_holds_on_random_instances() {
        for seed in 0..40u64 {
            let profile = HeterogeneityProfile::ALL[(seed % 5) as usize];
            let g = GeneratorConfig::new(profile, seed);
            let chain = g.chain(2 + (seed % 5) as usize);
            let n = 1 + (seed % 8) as usize;
            match check_lemma2_subchain(&chain, n) {
                Lemma2Outcome::Consistent { .. } => {}
                Lemma2Outcome::Mismatch(m) => panic!("Lemma 2 violated at seed {seed}: {m}"),
            }
        }
    }

    #[test]
    fn lemma2_trivial_when_nothing_forwarded() {
        // A chain whose second processor is useless: everything stays on
        // processor 1.
        let chain = Chain::from_pairs(&[(1, 1), (100, 100)]).unwrap();
        assert_eq!(check_lemma2_subchain(&chain, 6), Lemma2Outcome::Consistent { forwarded: 0 });
    }
}
