//! Batch-size analysis of optimal chain schedules.
//!
//! Utilities answering the questions the paper's motivation raises but
//! its worked example only hints at: how does the optimal makespan grow
//! with the batch, when does the schedule start using deep processors,
//! and how fast does the marginal cost per task converge to the
//! steady-state period?

use crate::algorithm::schedule_chain;
use mst_platform::{Chain, Time};

/// Optimal makespans for batches `1..=n_max` — the makespan curve.
///
/// `O(n_max^2 p^2)` total (one full run per batch size); fine for the
/// curve sizes the experiments use.
///
/// ```
/// use mst_platform::Chain;
/// use mst_core::analysis::makespan_curve;
/// let curve = makespan_curve(&Chain::paper_figure2(), 5);
/// assert_eq!(curve, vec![5, 8, 10, 12, 14]);
/// ```
pub fn makespan_curve(chain: &Chain, n_max: usize) -> Vec<Time> {
    (1..=n_max).map(|n| schedule_chain(chain, n).makespan()).collect()
}

/// Marginal cost of each additional task: `curve[i] - curve[i-1]`
/// (first element is the one-task makespan).
pub fn marginal_costs(curve: &[Time]) -> Vec<Time> {
    let mut out = Vec::with_capacity(curve.len());
    let mut prev = 0;
    for &m in curve {
        out.push(m - prev);
        prev = m;
    }
    out
}

/// The deepest processor used by the optimal schedule for `n` tasks.
pub fn depth_usage(chain: &Chain, n: usize) -> usize {
    schedule_chain(chain, n).tasks().iter().map(|t| t.proc).max().expect("n >= 1")
}

/// The smallest batch size (up to `n_max`) at which the optimal schedule
/// first forwards work past processor 1, or `None` if processor 1 always
/// suffices. This is the "distribution pays off" crossover the layered
/// network example displays.
pub fn distribution_crossover(chain: &Chain, n_max: usize) -> Option<usize> {
    (1..=n_max).find(|&n| depth_usage(chain, n) >= 2)
}

/// Estimate of the asymptotic per-task period from the tail of a
/// makespan curve: the mean of the last `window` marginal costs.
///
/// For long batches this converges to `1 / rate` where `rate` is
/// [`Chain::steady_state_rate`]; the steady-state experiment prints both.
pub fn tail_period_estimate(curve: &[Time], window: usize) -> f64 {
    assert!(!curve.is_empty() && window >= 1);
    let costs = marginal_costs(curve);
    let w = window.min(costs.len());
    costs[costs.len() - w..].iter().sum::<Time>() as f64 / w as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_platform::{GeneratorConfig, HeterogeneityProfile};

    #[test]
    fn curve_is_monotone_and_bounded() {
        for seed in 0..10u64 {
            let g = GeneratorConfig::new(HeterogeneityProfile::ALL[(seed % 5) as usize], seed);
            let chain = g.chain(1 + (seed % 5) as usize);
            let curve = makespan_curve(&chain, 12);
            for w in curve.windows(2) {
                assert!(w[0] <= w[1], "makespan decreased (seed {seed})");
            }
            for (i, &m) in curve.iter().enumerate() {
                assert!(m <= chain.t_infinity(i + 1), "above master-only (seed {seed})");
            }
        }
    }

    #[test]
    fn marginal_costs_reconstruct_the_curve() {
        let chain = Chain::paper_figure2();
        let curve = makespan_curve(&chain, 8);
        let costs = marginal_costs(&curve);
        let mut acc = 0;
        for (c, m) in costs.iter().zip(&curve) {
            acc += c;
            assert_eq!(acc, *m);
        }
    }

    #[test]
    fn figure2_tail_period_matches_steady_state() {
        // Figure-2 chain rate = 1/2 task per tick, so the marginal cost
        // settles at 2 ticks per task.
        let chain = Chain::paper_figure2();
        let curve = makespan_curve(&chain, 40);
        let est = tail_period_estimate(&curve, 10);
        assert!((est - 2.0).abs() < 0.35, "tail period {est}");
    }

    #[test]
    fn crossover_is_where_depth_first_reaches_two() {
        let chain = Chain::paper_figure2();
        let cross = distribution_crossover(&chain, 10).expect("fig2 uses processor 2");
        assert!(cross >= 2, "a single task stays on processor 1");
        assert!(depth_usage(&chain, cross) == 2);
        assert!(depth_usage(&chain, cross - 1) == 1);
        // A chain with a useless tail never crosses over.
        let lonely = Chain::from_pairs(&[(1, 1), (50, 50)]).unwrap();
        assert_eq!(distribution_crossover(&lonely, 8), None);
    }

    #[test]
    fn depth_usage_is_monotone_in_n_on_figure2() {
        let chain = Chain::paper_figure2();
        let mut prev = 0;
        for n in 1..=10 {
            let d = depth_usage(&chain, n);
            assert!(d >= prev || d == prev, "depth usage should not shrink here");
            prev = d.max(prev);
        }
        assert_eq!(prev, 2);
    }
}
