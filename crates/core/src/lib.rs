//! # mst-core — the optimal chain-scheduling algorithm of Dutot (IPPS 2003)
//!
//! The paper's primary contribution: scheduling `n` independent identical
//! tasks on a heterogeneous [`Chain`](mst_platform::Chain) of processors
//! under the one-port model, **optimally in makespan**, in `O(n p^2)`.
//!
//! The algorithm (Section 3 of the paper) builds the schedule *backwards*
//! from an anchor time: it keeps, per link, a *hull* `h_k` (the earliest
//! already-reserved use of the link) and, per processor, an *occupancy*
//! `o_k` (the earliest already-reserved execution start), schedules the
//! last task first, and for each task picks the greatest candidate
//! communication vector in the Definition-3 order — i.e. the placement
//! that emits as late as possible, tie-breaking towards the processor
//! closest to the master.
//!
//! Two entry points drive the same backward machinery:
//!
//! * [`schedule_chain`] — the makespan variant: anchors at
//!   `T_infinity = c_1 + (n-1) max(w_1, c_1) + w_1` and schedules all `n`
//!   tasks; Theorem 1 proves the result optimal.
//! * [`schedule_chain_by_deadline`] — the `T_lim` variant of Section 7:
//!   anchors at a caller-supplied deadline and schedules as many tasks as
//!   possible (at most `n`) finishing by that deadline, stopping when a
//!   task would have to be emitted before time 0. The spider algorithm is
//!   built on this variant.
//!
//! [`BackwardScheduler`] exposes the per-task candidate vectors so that
//! the Lemma-1/Lemma-2 structural properties can be checked (see
//! [`lemmas`]), and [`fast`] holds an algebraically equivalent variant
//! with a prefix-min candidate-front evaluation used by the ablation
//! benchmarks.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithm;
pub mod analysis;
pub mod fast;
pub mod lemmas;
pub mod state;

pub use algorithm::{schedule_chain, schedule_chain_by_deadline, BackwardScheduler, Step};
pub use analysis::{depth_usage, distribution_crossover, makespan_curve, marginal_costs};
pub use fast::schedule_chain_fast;
pub use state::BackwardState;
