//! The hull / occupancy state of the backward construction.

use mst_platform::Time;
use mst_schedule::CommVector;

/// The mutable state of the backward greedy construction (Section 3).
///
/// * `hull[k]` (paper: `h_k`) — the earliest emission time already
///   reserved on link `k`; a new (earlier) communication on link `k` must
///   finish by `hull[k]`, i.e. be emitted at or before `hull[k] - c_k`.
/// * `occupancy[k]` (paper: `o_k`) — the earliest execution start already
///   reserved on processor `k`; a new (earlier) execution must finish by
///   `occupancy[k]`, i.e. start at or before `occupancy[k] - w_k`.
///
/// Both vectors are initialised to the anchor time (`T_infinity` or
/// `T_lim`): before any task is placed, every resource is free up to the
/// anchor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackwardState {
    hull: Vec<Time>,
    occupancy: Vec<Time>,
}

impl BackwardState {
    /// Fresh state for a chain of `p` processors anchored at `horizon`.
    pub fn new(p: usize, horizon: Time) -> Self {
        assert!(p >= 1);
        BackwardState { hull: vec![horizon; p], occupancy: vec![horizon; p] }
    }

    /// Number of processors.
    #[inline]
    pub fn len(&self) -> usize {
        self.hull.len()
    }

    /// `true` iff the state tracks no processors (never constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hull.is_empty()
    }

    /// Hull `h_k` of link `k` (**1-based**).
    #[inline]
    pub fn hull(&self, k: usize) -> Time {
        self.hull[k - 1]
    }

    /// Occupancy `o_k` of processor `k` (**1-based**).
    #[inline]
    pub fn occupancy(&self, k: usize) -> Time {
        self.occupancy[k - 1]
    }

    /// Commits a scheduling decision: the task runs on processor
    /// `vector.len()` starting at `start`, with communication vector
    /// `vector`. Updates `o_{P}` to the start time and `h_k` to the new
    /// (earlier) emissions for every crossed link, as in the paper's
    /// pseudo-code.
    pub fn commit(&mut self, vector: &CommVector, start: Time) {
        let p_i = vector.len();
        debug_assert!(p_i >= 1 && p_i <= self.len());
        debug_assert!(
            start <= self.occupancy[p_i - 1],
            "backward construction must move towards earlier times"
        );
        self.occupancy[p_i - 1] = start;
        for k in 1..=p_i {
            debug_assert!(vector.get(k) <= self.hull[k - 1]);
            self.hull[k - 1] = vector.get(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_is_anchored() {
        let s = BackwardState::new(3, 100);
        for k in 1..=3 {
            assert_eq!(s.hull(k), 100);
            assert_eq!(s.occupancy(k), 100);
        }
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn commit_updates_hull_and_occupancy() {
        let mut s = BackwardState::new(3, 100);
        // Task on processor 2: emissions {90, 95}, start 97.
        s.commit(&CommVector::new(vec![90, 95]), 97);
        assert_eq!(s.occupancy(2), 97);
        assert_eq!(s.occupancy(1), 100); // untouched
        assert_eq!(s.hull(1), 90);
        assert_eq!(s.hull(2), 95);
        assert_eq!(s.hull(3), 100); // untouched
    }

    #[test]
    fn successive_commits_move_backward() {
        let mut s = BackwardState::new(2, 50);
        s.commit(&CommVector::new(vec![40]), 45);
        s.commit(&CommVector::new(vec![30, 35]), 44);
        assert_eq!(s.hull(1), 30);
        assert_eq!(s.hull(2), 35);
        assert_eq!(s.occupancy(1), 45);
        assert_eq!(s.occupancy(2), 44);
    }
}
