//! `mst top` — a live terminal view over a serve instance's metrics.
//!
//! Scrapes `GET /metrics?format=prometheus` from a running `mst serve`
//! on an interval and renders the latency state as `top`-style tables:
//! a one-line health header (uptime, request/queue/drop counters), the
//! per-route latency summary, the per-solver kernel summary
//! (solve/probe/verify), and the per-tenant summary when named tenants
//! carry traffic.
//!
//! The screen-clearing redraw only happens when stdout is a real
//! terminal; redirected output gets plain frames (and by default just
//! one frame, so `mst top --addr ... > snapshot.txt` is a one-shot
//! probe a script can grep).

use crate::args::Args;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{IsTerminal as _, Write as _};
use std::time::Duration;

/// One summary family member: the quantile samples plus `_sum`/`_count`
/// companions the exposition emits per label set.
#[derive(Debug, Default, Clone, PartialEq)]
struct SummaryRow {
    /// `quantile="..."` samples, in exposition order (0.5/0.99/0.999/1).
    quantiles: BTreeMap<String, f64>,
    count: u64,
    sum: u64,
}

impl SummaryRow {
    fn quantile_ms(&self, q: &str) -> f64 {
        self.quantiles.get(q).copied().unwrap_or(0.0) / 1e3
    }
}

/// One parsed Prometheus sample: `(name, labels, value)`.
type Sample<'a> = (&'a str, Vec<(&'a str, &'a str)>, f64);

/// Splits one Prometheus sample line into `(name, labels, value)`.
/// Label values in this exposition never contain commas or escaped
/// quotes (routes, tenant names, solver names), so a flat split is
/// exact.
fn parse_sample(line: &str) -> Option<Sample<'_>> {
    let (rest, value) = line.rsplit_once(' ')?;
    let value: f64 = value.trim().parse().ok()?;
    match rest.split_once('{') {
        None => Some((rest, Vec::new(), value)),
        Some((name, labels)) => {
            let labels = labels.strip_suffix('}')?;
            let mut pairs = Vec::new();
            for part in labels.split(',') {
                let (key, quoted) = part.split_once("=\"")?;
                pairs.push((key, quoted.strip_suffix('"')?));
            }
            Some((name, pairs, value))
        }
    }
}

/// The value of an unlabelled sample (counter or gauge) by exact name.
fn scalar(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let (sample_name, labels, value) = parse_sample(line)?;
        (sample_name == name && labels.is_empty()).then_some(value)
    })
}

/// Collects one summary family into rows keyed by the joined values of
/// `label_keys` (e.g. `["route"]` or `["kernel", "solver"]`), in
/// sorted key order — the exposition is already deterministic, this
/// keeps the table so too.
fn summary_rows(text: &str, family: &str, label_keys: &[&str]) -> BTreeMap<String, SummaryRow> {
    let count_name = format!("{family}_count");
    let sum_name = format!("{family}_sum");
    let mut rows: BTreeMap<String, SummaryRow> = BTreeMap::new();
    for line in text.lines() {
        let Some((name, labels, value)) = parse_sample(line) else { continue };
        if name != family && name != count_name && name != sum_name {
            continue;
        }
        let lookup = |key: &str| labels.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
        let Some(row_key) = label_keys
            .iter()
            .map(|key| lookup(key))
            .collect::<Option<Vec<_>>>()
            .map(|vals| vals.join("  "))
        else {
            continue;
        };
        let row = rows.entry(row_key).or_default();
        if name == count_name {
            row.count = value as u64;
        } else if name == sum_name {
            row.sum = value as u64;
        } else if let Some(q) = lookup("quantile") {
            row.quantiles.insert(q.to_string(), value);
        }
    }
    rows
}

/// Appends one summary table (`title` + aligned rows) when non-empty.
fn render_table(
    out: &mut String,
    title: &str,
    key_header: &str,
    rows: &BTreeMap<String, SummaryRow>,
) {
    if rows.is_empty() {
        return;
    }
    let key_width = rows.keys().map(String::len).max().unwrap_or(0).max(key_header.len());
    writeln!(out, "{title}").unwrap();
    writeln!(
        out,
        "  {key_header:<key_width$}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
        "count", "p50 ms", "p99 ms", "p999 ms", "max ms"
    )
    .unwrap();
    for (key, row) in rows {
        writeln!(
            out,
            "  {key:<key_width$}  {:>9}  {:>9.3}  {:>9.3}  {:>9.3}  {:>9.3}",
            row.count,
            row.quantile_ms("0.5"),
            row.quantile_ms("0.99"),
            row.quantile_ms("0.999"),
            row.quantile_ms("1"),
        )
        .unwrap();
    }
    out.push('\n');
}

/// Renders one full frame from the raw exposition text.
fn render_frame(addr: &str, text: &str) -> String {
    let mut out = String::new();
    let uptime = scalar(text, "mst_uptime_secs").unwrap_or(0.0);
    let requests = scalar(text, "mst_requests_total").unwrap_or(0.0) as u64;
    let queue = scalar(text, "mst_queue_depth").unwrap_or(0.0) as u64;
    let dropped = scalar(text, "mst_obs_dropped_spans_total").unwrap_or(0.0) as u64;
    writeln!(
        out,
        "mst top — {addr}   up {uptime:.0}s   requests {requests}   queue {queue}   \
         dropped spans {dropped}\n"
    )
    .unwrap();
    render_table(
        &mut out,
        "routes (server-side latency)",
        "route",
        &summary_rows(text, "mst_route_latency_us", &["route"]),
    );
    render_table(
        &mut out,
        "solver kernels",
        "kernel  solver",
        &summary_rows(text, "mst_kernel_latency_us", &["kernel", "solver"]),
    );
    render_table(
        &mut out,
        "tenants",
        "tenant",
        &summary_rows(text, "mst_tenant_latency_us", &["tenant"]),
    );
    out
}

/// `mst top` — scrape, render, repeat.
pub fn cmd_top(args: &Args) -> Result<String, String> {
    let addr = args.opt("addr").unwrap_or("127.0.0.1:8080").to_string();
    let interval_ms = match args.int_opt("interval-ms", 1_000)? {
        n if (50..=60_000).contains(&n) => n as u64,
        n => return Err(format!("--interval-ms must be in [50, 60000], got {n}")),
    };
    let tty = std::io::stdout().is_terminal();
    // At a terminal the default is a live redraw loop until ctrl-c;
    // redirected, it is a single grep-friendly frame.
    let iterations = match args.int_opt("iterations", if tty { 0 } else { 1 })? {
        n if n >= 0 => n as u64,
        n => return Err(format!("--iterations must be non-negative, got {n}")),
    };
    let mut frames = 0u64;
    loop {
        let text = crate::loadgen::fetch_metrics_text(&addr)?;
        let frame = render_frame(&addr, &text);
        frames += 1;
        if iterations > 0 && frames >= iterations {
            // The final frame is the command output, so one-shot runs
            // compose with --out-style redirection and tests.
            return Ok(frame);
        }
        if tty {
            // Clear + home keeps the tables anchored like top(1).
            print!("\x1b[2J\x1b[H{frame}");
        } else {
            print!("{frame}");
        }
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXPOSITION: &str = "\
mst_uptime_secs 12\n\
mst_requests_total 400\n\
mst_queue_depth 2\n\
mst_obs_dropped_spans_total 0\n\
mst_route_latency_us{route=\"/batch\",quantile=\"0.5\"} 4000\n\
mst_route_latency_us{route=\"/batch\",quantile=\"0.99\"} 9000\n\
mst_route_latency_us{route=\"/batch\",quantile=\"0.999\"} 9500\n\
mst_route_latency_us{route=\"/batch\",quantile=\"1\"} 9800\n\
mst_route_latency_us_sum{route=\"/batch\"} 80000\n\
mst_route_latency_us_count{route=\"/batch\"} 20\n\
mst_route_latency_us{route=\"/solve\",quantile=\"0.5\"} 700\n\
mst_route_latency_us{route=\"/solve\",quantile=\"0.99\"} 2100\n\
mst_route_latency_us{route=\"/solve\",quantile=\"0.999\"} 2500\n\
mst_route_latency_us{route=\"/solve\",quantile=\"1\"} 2600\n\
mst_route_latency_us_sum{route=\"/solve\"} 250000\n\
mst_route_latency_us_count{route=\"/solve\"} 350\n\
mst_kernel_latency_us{kernel=\"solve\",solver=\"optimal\",quantile=\"0.5\"} 400\n\
mst_kernel_latency_us{kernel=\"solve\",solver=\"optimal\",quantile=\"0.99\"} 1500\n\
mst_kernel_latency_us{kernel=\"solve\",solver=\"optimal\",quantile=\"0.999\"} 1600\n\
mst_kernel_latency_us{kernel=\"solve\",solver=\"optimal\",quantile=\"1\"} 1700\n\
mst_kernel_latency_us_sum{kernel=\"solve\",solver=\"optimal\"} 150000\n\
mst_kernel_latency_us_count{kernel=\"solve\",solver=\"optimal\"} 350\n";

    #[test]
    fn samples_parse_names_labels_and_values() {
        assert_eq!(parse_sample("mst_uptime_secs 12"), Some(("mst_uptime_secs", vec![], 12.0)));
        let (name, labels, value) =
            parse_sample("mst_kernel_latency_us{kernel=\"solve\",solver=\"optimal\"} 400")
                .expect("labelled line parses");
        assert_eq!(name, "mst_kernel_latency_us");
        assert_eq!(labels, vec![("kernel", "solve"), ("solver", "optimal")]);
        assert_eq!(value, 400.0);
        assert_eq!(parse_sample("# HELP not a sample"), None);
    }

    #[test]
    fn summary_rows_group_by_label_keys_with_counts() {
        let routes = summary_rows(EXPOSITION, "mst_route_latency_us", &["route"]);
        assert_eq!(routes.keys().collect::<Vec<_>>(), ["/batch", "/solve"]);
        let solve = &routes["/solve"];
        assert_eq!(solve.count, 350);
        assert_eq!(solve.sum, 250000);
        assert_eq!(solve.quantile_ms("0.5"), 0.7);
        assert_eq!(solve.quantile_ms("0.99"), 2.1);

        let kernels = summary_rows(EXPOSITION, "mst_kernel_latency_us", &["kernel", "solver"]);
        assert_eq!(kernels.keys().collect::<Vec<_>>(), ["solve  optimal"]);
        assert_eq!(kernels["solve  optimal"].count, 350);
    }

    #[test]
    fn frames_render_the_header_and_every_populated_table() {
        let frame = render_frame("127.0.0.1:9", EXPOSITION);
        assert!(frame.contains("up 12s"), "{frame}");
        assert!(frame.contains("requests 400"), "{frame}");
        assert!(frame.contains("/solve"), "{frame}");
        assert!(frame.contains("solve  optimal"), "{frame}");
        // No tenant traffic in the fixture: the tenants table is elided.
        assert!(!frame.contains("tenants"), "{frame}");
    }
}
