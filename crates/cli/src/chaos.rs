//! `mst chaos` — a seeded fault-injection harness for a **live**
//! `mst serve` instance.
//!
//! The harness turns a deterministic [`FaultPlan`] (`mst_sim::faults`)
//! into hostile client behaviour against a running server and asserts
//! the service's **availability invariants** after every action:
//!
//! * [`FaultKind::ProcessorDown`] → a full `/session` lifecycle with a
//!   posted processor-failure event: create, repair, close — repair
//!   must answer structurally even when the failure is unrepairable
//!   (`409 no-survivors`), never with a 5xx;
//! * [`FaultKind::StoreWriteFail`] → `/metrics` and `/healthz` probes:
//!   the store may be degraded, the *service* must say so in a
//!   well-formed body, not fail;
//! * [`FaultKind::ConnectionDrop`] → a connection is opened, half a
//!   request written, and the socket dropped mid-frame — the next
//!   request must be served as if nothing happened;
//! * [`FaultKind::WorkerPanic`] → poison pills: malformed JSON, bogus
//!   ops, unknown paths — every one must come back as a structured
//!   `{"error": {"kind", ...}}`, and none may kill the handler.
//!
//! After each action the harness re-probes `/healthz`; any unreachable
//! server, unparseable reply or 5xx (outside the documented
//! `infeasible-solution`/`internal-error` contract, which would itself
//! be a bug worth failing on) is recorded as a **violation**. The run
//! ends with a structured JSON report; any violation makes the command
//! exit non-zero with the same report on stderr — fail closed, so a CI
//! job cannot green-wash a flaky server.
//!
//! The kill-9-mid-sweep / warm-restart / torn-store-frame scenarios
//! need control of the server *process* and live in the CI chaos job
//! (see `.github/workflows/ci.yml`), which wraps two `mst chaos` runs
//! around a SIGKILL + restart of the same `--store` server.

use mst_sim::{FaultEvent, FaultKind, FaultPlan};
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// How long any single request may take before the harness calls the
/// server unavailable.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(10);

/// Counters and violations of one chaos run; rendered as JSON.
#[derive(Debug, Default)]
pub struct ChaosReport {
    seed: u64,
    elapsed_secs: f64,
    sessions_driven: u64,
    store_probes: u64,
    connections_dropped: u64,
    poison_pills: u64,
    health_checks: u64,
    violations: Vec<String>,
}

impl ChaosReport {
    /// Whether the run finished without a single violation.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The structured report body (one JSON object, newline-terminated).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write!(
            out,
            "{{\"chaos\": {{\"seed\": {}, \"elapsed_secs\": {:.3}, \
             \"sessions_driven\": {}, \"store_probes\": {}, \
             \"connections_dropped\": {}, \"poison_pills\": {}, \
             \"health_checks\": {}, \"violations\": [",
            self.seed,
            self.elapsed_secs,
            self.sessions_driven,
            self.store_probes,
            self.connections_dropped,
            self.poison_pills,
            self.health_checks,
        )
        .unwrap();
        for (i, violation) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            // Escape the bare minimum for a valid JSON string.
            let escaped: String = violation
                .chars()
                .map(|c| match c {
                    '"' => "\\\"".to_string(),
                    '\\' => "\\\\".to_string(),
                    '\n' => "\\n".to_string(),
                    c => c.to_string(),
                })
                .collect();
            out.push('"');
            out.push_str(&escaped);
            out.push('"');
        }
        writeln!(out, "], \"ok\": {}}}}}", self.violations.is_empty()).unwrap();
        out
    }
}

/// One raw HTTP exchange; `Err` is "server unavailable" (connect,
/// write or read failure — the invariant every action re-checks).
fn exchange(addr: SocketAddr, raw: &str) -> Result<String, String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, REQUEST_TIMEOUT).map_err(|e| format!("connect: {e}"))?;
    stream.set_read_timeout(Some(REQUEST_TIMEOUT)).map_err(|e| format!("timeout: {e}"))?;
    stream.set_write_timeout(Some(REQUEST_TIMEOUT)).map_err(|e| format!("timeout: {e}"))?;
    stream.write_all(raw.as_bytes()).map_err(|e| format!("write: {e}"))?;
    let mut reply = String::new();
    stream.read_to_string(&mut reply).map_err(|e| format!("read: {e}"))?;
    if reply.is_empty() {
        return Err("empty reply".into());
    }
    Ok(reply)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Result<String, String> {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// The reply's status code, when it parses as HTTP at all.
fn status_of(reply: &str) -> Option<u16> {
    reply.strip_prefix("HTTP/1.1 ")?.get(..3)?.parse().ok()
}

/// The availability invariant: `/healthz` answers `200` with a
/// parseable `"status"` of `ok` or `store_degraded` — degraded is
/// fine, silent or dead is not.
fn check_health(addr: SocketAddr, report: &mut ChaosReport, context: &str) {
    report.health_checks += 1;
    match exchange(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n") {
        Ok(reply) => {
            let healthy = status_of(&reply) == Some(200)
                && (reply.contains("\"status\":\"ok\"")
                    || reply.contains("\"status\":\"store_degraded\""));
            if !healthy {
                report
                    .violations
                    .push(format!("healthz unwell after {context}: {}", first_line(&reply)));
            }
        }
        Err(e) => report.violations.push(format!("healthz unreachable after {context}: {e}")),
    }
}

fn first_line(reply: &str) -> &str {
    reply.lines().next().unwrap_or("")
}

/// A well-formed request must be answered structurally: parseable
/// HTTP, a status below 500, and for errors a `{"error":{"kind"` body.
fn expect_structured(
    reply: Result<String, String>,
    what: &str,
    report: &mut ChaosReport,
) -> Option<String> {
    match reply {
        Ok(reply) => {
            let status = status_of(&reply);
            match status {
                Some(s) if s < 500 => {
                    if s >= 400 && !reply.contains("\"error\"") {
                        report.violations.push(format!(
                            "{what}: {s} without a structured error body: {}",
                            first_line(&reply)
                        ));
                    }
                    Some(reply)
                }
                Some(s) => {
                    report
                        .violations
                        .push(format!("{what}: server-side {s}: {}", first_line(&reply)));
                    None
                }
                None => {
                    report
                        .violations
                        .push(format!("{what}: unparseable reply: {}", first_line(&reply)));
                    None
                }
            }
        }
        Err(e) => {
            report.violations.push(format!("{what}: unavailable: {e}"));
            None
        }
    }
}

/// Extracts `"session":N` from a create reply.
fn session_id(reply: &str) -> Option<u64> {
    let at = reply.find("\"session\":")?;
    let digits: String =
        reply[at + "\"session\":".len()..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// `ProcessorDown` → a `/session` lifecycle: create on a 3-processor
/// chain, post the failure, close. An unrepairable failure (processor
/// 1 has no survivors) must still answer structurally (`409`).
fn drive_session(addr: SocketAddr, event: &FaultEvent, processor: usize, report: &mut ChaosReport) {
    report.sessions_driven += 1;
    let created = expect_structured(
        post(
            addr,
            "/session",
            r#"{"op": "create", "platform": "chain\n2 3\n3 5\n1 2\n", "tasks": 6}"#,
        ),
        "session create",
        report,
    );
    let Some(created) = created else { return };
    let Some(id) = session_id(&created) else {
        report.violations.push(format!("session create: no id in {}", first_line(&created)));
        return;
    };
    let fail_body = format!(
        "{{\"op\": \"fail\", \"session\": {id}, \"processor\": {processor}, \"at\": {}}}",
        event.at
    );
    expect_structured(post(addr, "/session", &fail_body), "session fail", report);
    expect_structured(
        post(addr, "/session", &format!("{{\"op\": \"close\", \"session\": {id}}}")),
        "session close",
        report,
    );
}

/// `StoreWriteFail` → the observability probes: `/metrics` and a solve
/// that would append a record. Degradation is allowed; opacity is not.
fn probe_store(addr: SocketAddr, salt: usize, report: &mut ChaosReport) {
    report.store_probes += 1;
    expect_structured(
        exchange(addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n"),
        "metrics probe",
        report,
    );
    let body = format!("{{\"platform\": \"chain\\n2 3\\n3 5\\n\", \"tasks\": {}}}", 1 + salt % 32);
    expect_structured(post(addr, "/solve", &body), "store-path solve", report);
}

/// `ConnectionDrop` → half a request, then hang up mid-frame.
fn drop_connection(addr: SocketAddr, report: &mut ChaosReport) {
    report.connections_dropped += 1;
    if let Ok(mut stream) = TcpStream::connect_timeout(&addr, REQUEST_TIMEOUT) {
        // An incomplete head *and* a declared-but-missing body: the
        // reader must time the fragment out, not wedge the handler.
        let _ = stream.write_all(b"POST /solve HTTP/1.1\r\nContent-Length: 512\r\n\r\n{\"pla");
        drop(stream);
    }
}

/// `WorkerPanic` → poison pills that historically crash naive servers.
fn poison(addr: SocketAddr, salt: u64, report: &mut ChaosReport) {
    report.poison_pills += 1;
    let pills: [(&str, String); 4] = [
        ("malformed json", "{\"platform\": \"chain".to_string()),
        ("bogus session op", format!("{{\"op\": \"explode\", \"session\": {salt}}}")),
        (
            "hostile numbers",
            "{\"platform\": \"chain\\n2 3\\n\", \"tasks\": -9223372036854775808}".to_string(),
        ),
        ("deep garbage", "[".repeat(64) + &"]".repeat(64)),
    ];
    let (name, body) = &pills[(salt % 4) as usize];
    let path = if salt.is_multiple_of(2) { "/solve" } else { "/session" };
    expect_structured(post(addr, path, body), &format!("poison ({name})"), report);
    // Unknown endpoints answer structured 404s, whatever the method.
    expect_structured(
        exchange(addr, "DELETE /no-such-endpoint HTTP/1.1\r\nConnection: close\r\n\r\n"),
        "poison (unknown endpoint)",
        report,
    );
}

/// Runs the chaos sweep against `addr` for roughly `minutes`, cycling
/// a fresh seeded [`FaultPlan`] per lap. Returns the report; the
/// caller turns a violating report into a non-zero exit.
pub fn run_chaos(addr: &str, seed: u64, minutes: f64) -> ChaosReport {
    let mut report = ChaosReport { seed, ..ChaosReport::default() };
    let resolved: Vec<SocketAddr> = match addr.to_socket_addrs() {
        Ok(addrs) => addrs.collect(),
        Err(e) => {
            report.violations.push(format!("cannot resolve {addr}: {e}"));
            return report;
        }
    };
    let Some(addr) = resolved.first().copied() else {
        report.violations.push(format!("{addr} resolves to nothing"));
        return report;
    };
    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64((minutes * 60.0).max(1.0));
    check_health(addr, &mut report, "startup");
    let mut lap = 0u64;
    'laps: while Instant::now() < deadline {
        // A fresh deterministic plan each lap (seed ⊕ lap): the same
        // seed and duration replay the same hostile schedule.
        let plan = FaultPlan::seeded(seed ^ lap, 16, 3, 1_000);
        for event in plan.events() {
            if Instant::now() >= deadline {
                break 'laps;
            }
            match event.kind {
                FaultKind::ProcessorDown { processor } => {
                    drive_session(addr, event, processor, &mut report)
                }
                FaultKind::StoreWriteFail { writes } => probe_store(addr, writes, &mut report),
                FaultKind::ConnectionDrop => drop_connection(addr, &mut report),
                FaultKind::WorkerPanic => poison(addr, event.at as u64, &mut report),
            }
            check_health(addr, &mut report, &format!("{:?}", event.kind));
            // Fail closed *early* on a dead server: once unreachable,
            // further laps only repeat the same violation.
            if report.violations.len() > 32 {
                report.violations.push("aborting: too many violations".into());
                break 'laps;
            }
        }
        lap += 1;
    }
    report.elapsed_secs = started.elapsed().as_secs_f64();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_render_as_json_and_escape_violations() {
        let mut report = ChaosReport { seed: 7, ..ChaosReport::default() };
        report.violations.push("quote \" backslash \\ newline \n done".into());
        let json = report.to_json();
        assert!(json.contains("\"seed\": 7"), "{json}");
        assert!(json.contains("\"ok\": false"), "{json}");
        assert!(json.contains("quote \\\" backslash \\\\ newline \\n done"), "{json}");
        report.violations.clear();
        assert!(report.to_json().contains("\"ok\": true"));
    }

    #[test]
    fn status_and_session_ids_parse_from_raw_replies() {
        assert_eq!(status_of("HTTP/1.1 200 OK\r\n"), Some(200));
        assert_eq!(status_of("HTTP/1.1 429 Too Many Requests\r\n"), Some(429));
        assert_eq!(status_of("garbage"), None);
        assert_eq!(session_id("{\"session\":42,\"tasks\":5}"), Some(42));
        assert_eq!(session_id("{\"tasks\":5}"), None);
    }

    #[test]
    fn an_unreachable_server_is_a_violation_not_a_hang() {
        // A port nothing listens on: the run must come back quickly
        // with violations, not blocking for the full duration.
        let report = run_chaos("127.0.0.1:1", 99, 10.0);
        assert!(!report.violations.is_empty());
        assert!(report.to_json().contains("\"ok\": false"));
    }

    #[test]
    fn a_live_server_survives_a_short_chaos_run_with_zero_violations() {
        let server = mst_serve::Server::bind(mst_serve::ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..mst_serve::ServeConfig::default()
        })
        .expect("bind");
        let handle = server.handle();
        let addr = server.addr();
        let runner = std::thread::spawn(move || server.run().expect("run"));
        // minutes below the 1-second floor: one lap's worth of events.
        let report = run_chaos(&addr.to_string(), 2003, 0.0);
        assert!(
            report.violations.is_empty(),
            "chaos violations against a healthy server: {:?}",
            report.violations
        );
        assert!(report.sessions_driven + report.store_probes + report.poison_pills > 0);
        assert!(report.health_checks > 0);
        handle.shutdown();
        runner.join().expect("runner joins");
    }
}
