//! The CLI subcommand implementations.
//!
//! Every command takes parsed [`Args`] and returns the text to print (so
//! the integration tests exercise commands without spawning processes).
//!
//! Scheduling commands route through the unified [`mst_api`] surface:
//! one [`SolverRegistry`] resolves `--solver` names, one
//! [`mst_api::verify`] oracle checks results, and `mst batch` sweeps
//! generated instance sets across cores with [`Batch`].

use crate::args::Args;
use mst_api::{Batch, Instance, Platform, ScheduleRepr, SolverRegistry, TopologyKind};
use mst_platform::format::to_text;
use mst_platform::HeterogeneityProfile;
use mst_schedule::format::{
    chain_schedule_from_text, chain_schedule_to_text, spider_schedule_from_text,
    spider_schedule_to_text,
};
use mst_schedule::{check_chain, check_spider, gantt, metrics};
use mst_sim::{replay_chain, replay_spider};
use std::fmt::Write as _;
use std::fs;

/// Top-level dispatch; returns the output to print or a usage error.
pub fn run(args: &Args) -> Result<String, String> {
    match args.command.as_str() {
        "schedule" => cmd_schedule(args),
        "plan" => cmd_plan(args),
        "validate" => cmd_validate(args),
        "gantt" => cmd_gantt(args),
        "generate" => cmd_generate(args),
        "stats" => cmd_stats(args),
        "diff" => cmd_diff(args),
        "curve" => cmd_curve(args),
        "solvers" => cmd_solvers(args),
        "tenants" => cmd_tenants(args),
        "batch" => cmd_batch(args),
        "serve" => cmd_serve(args),
        "loadgen" => crate::loadgen::cmd_loadgen(args),
        "top" => crate::top::cmd_top(args),
        "chaos" => cmd_chaos(args),
        "check-model" => cmd_check_model(args),
        "fuzz" => cmd_fuzz(args),
        "history" => cmd_history(args),
        "" | "help" | "--help" => Ok(usage()),
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    }
}

/// The help text.
pub fn usage() -> String {
    "mst — optimal master-slave tasking on heterogeneous processors (Dutot, IPPS 2003)

USAGE:
    mst schedule <instance> --tasks N [--solver NAME] [--out FILE] [--gantt]
        Schedule N tasks (chain, fork, spider or tree instance) with any
        registered solver (default: optimal).
    mst plan <instance> --deadline T [--cap N] [--solver NAME]
        Maximum tasks finishing by the deadline (the T_lim variant).
    mst solvers [--config FILE] [--registry NAME]
        List the solver registry: names, topologies, deadline support.
        --config loads a JSON registry config (overlays, aliases,
        restrictions); --registry picks one of its named registries.
    mst tenants [--config FILE]
        Inspect the resolved execution policies of a tenant config:
        API token, thread budget, admission quota, per-request caps,
        deadline budget and solver count per tenant.
    mst batch <chain|fork|spider|tree> --count K --tasks N [--size P]
              [--solver NAME] [--profile NAME] [--deadline T]
        Generate K seeded instances and sweep them across all cores.
    mst serve [--addr HOST:PORT] [--threads N] [--solvers-config FILE]
              [--store FILE] [--io event|threads]
        Serve the solver API over HTTP (default 127.0.0.1:8080):
        POST /solve, POST /batch, GET /solvers, /healthz, /metrics,
        /history. --solvers-config loads per-tenant registries
        selectable by the registry request field. --store appends every
        solved instance to a crash-safe record log, serves GET /history
        from it and warm-starts the solution cache from prior records
        on boot. --io picks the transport: the epoll event loop
        (default) or the thread-per-connection fallback. Stops
        gracefully on ctrl-c.
    mst loadgen [--addr HOST:PORT] [--tenants N] [--rate R] [--seconds S]
                [--seed S] [--out FILE] [--check BASELINE]
                [--tolerance F] [--p99-limit MS]
                [--solvers-config FILE] [--server-metrics]
        Open-loop capacity probe against a live mst serve: a seeded
        Poisson arrival schedule of mixed solve/batch/session traffic
        over N keep-alive connections, latencies measured from each
        request's *scheduled* arrival (no coordinated omission).
        Prints a flat JSON report (throughput, p50/p99/p999); a live
        one-line progress ticker shows on stderr when it is a
        terminal. --solvers-config authenticates the workers with the
        named tenants' real X-Api-Token values from the same config
        mst serve loads. --server-metrics scrapes the target's
        Prometheus exposition after the run and adds server-side
        /solve quantiles plus client-overhead attribution to the
        report. With --check it becomes a gate: non-zero exit on any
        error, on throughput below baseline*(1-tolerance), or on p99
        over the limit.
    mst top [--addr HOST:PORT] [--interval-ms N] [--iterations K]
        Live top(1)-style view over a serve instance's /metrics:
        per-route, per-solver-kernel and per-tenant latency summaries
        (count, p50/p99/p999/max) refreshed every interval. Redraws in
        place at a terminal; redirected output prints one plain frame
        (or K frames with --iterations).
    mst chaos [--addr HOST:PORT] [--seed S] [--minutes M]
        Drive a live mst serve instance through a seeded fault plan:
        session repairs, dropped connections mid-frame, poison-pill
        requests and store-path probes, re-checking /healthz after
        every action. Prints a structured JSON report; any violated
        availability invariant makes the command exit non-zero with
        the same report (fail closed). Same seed, same hostile
        schedule — a failure reproduces from its seed.
    mst check-model [--max-procs P] [--max-tasks N] [--max-weight W]
        Bounded model check of the oracle gate: exhaustively enumerate
        every chain, fork, spider and tree up to P processors (default
        3) with weights 1..=W (default 2) and task counts up to N
        (default 3), asserting on each that solver makespans are never
        below the exact branch-and-bound, that the Definition-1 oracle
        and the independent reference simulator agree on every witness
        and every mutation of it, and that canonical-form restore
        round-trips feasibility. Prints a JSON report; any violation
        makes the command exit non-zero with the same report.
    mst fuzz [--minutes M] [--seed S] [--corpus DIR]
        Differential fuzzing of the same properties on seeded random
        instances beyond the model checker's bounds. Failures are
        minimized (task / processor / leg / leaf deletion) before they
        are reported; with --corpus, minimized failures are persisted
        and replayed on the next run. Fail-closed JSON report like
        check-model.
    mst history <store> [--tenant NAME] [--solver NAME] [--limit K]
        Inspect a result store offline: the records a --store server
        appended, newest first, filterable by tenant and solver.
    mst validate <instance> <schedule>
        Check a schedule file: Definition-1 oracle + event replay.
    mst gantt <instance> <schedule>
        Render a schedule file as an ASCII Gantt chart.
    mst generate <chain|fork|spider|tree> --size P [--profile NAME] [--seed S]
        Emit a random instance (profiles: uniform, homogeneous, comm-bound,
        compute-bound, bimodal).
    mst stats <instance> --tasks N
        Compare the optimal makespan against heuristics and bounds.
    mst diff <instance> <schedule-a> <schedule-b>
        Structural comparison of two chain schedules.
    mst curve <instance> --max N
        Optimal makespan, marginal cost and pipeline depth for 1..=N tasks.
"
    .to_string()
}

/// `--key` parsed as a strictly positive integer (rejects 0 and
/// negatives before any `as usize`/`as u64` cast can wrap).
fn positive_opt(args: &Args, key: &str, default: i64) -> Result<i64, String> {
    let value = args.int_opt(key, default)?;
    if value <= 0 {
        return Err(format!("--{key} must be at least 1, got {value}"));
    }
    Ok(value)
}

fn read_file(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn load_platform(path: &str) -> Result<Platform, String> {
    Platform::parse(&read_file(path)?).map_err(|e| format!("{path}: {e}"))
}

/// The schedule text form of a solution, for `--out` files (tree
/// schedules have no text format yet; they travel as wire JSON).
fn solution_to_text(solution: &mst_api::Solution) -> Option<String> {
    match solution.schedule()? {
        ScheduleRepr::Chain(s) => Some(chain_schedule_to_text(s)),
        ScheduleRepr::Spider(s) => Some(spider_schedule_to_text(s)),
        ScheduleRepr::Tree(_) => None,
    }
}

fn cmd_schedule(args: &Args) -> Result<String, String> {
    let path = args.pos(0, "instance")?;
    let n = positive_opt(args, "tasks", 1)? as usize;
    let solver_name = args.opt("solver").unwrap_or("optimal");
    let registry = SolverRegistry::global();
    let instance = Instance::new(load_platform(path)?, n);
    let solution = registry.solve(solver_name, &instance).map_err(|e| e.to_string())?;

    let mut out = String::new();
    writeln!(out, "platform: {}", instance.platform).unwrap();
    if let Some(cover) = solution.sub_platform() {
        // Tree solved through a spider cover: say which part of the
        // platform actually works.
        writeln!(
            out,
            "best spider-cover makespan for {n} tasks: {} (covering {} of {} processors)",
            solution.makespan(),
            cover.num_processors(),
            instance.platform.num_processors()
        )
        .unwrap();
    } else {
        writeln!(out, "{solver_name} makespan for {n} tasks: {}", solution.makespan()).unwrap();
    }
    if args.flag("gantt") {
        if let Some(chart) = solution.gantt(&instance.platform) {
            out.push_str(&chart);
        }
    }
    match solution.schedule() {
        Some(ScheduleRepr::Chain(s)) => out.push_str(&s.to_string()),
        Some(ScheduleRepr::Spider(s)) => out.push_str(&s.to_string()),
        Some(ScheduleRepr::Tree(s)) => out.push_str(&s.to_string()),
        None => writeln!(out, "({solver_name} reports a makespan without a schedule)").unwrap(),
    }
    if let Some(dest) = args.opt("out") {
        let text = solution_to_text(&solution)
            .ok_or_else(|| format!("solver {solver_name} produces no schedule to write"))?;
        fs::write(dest, text).map_err(|e| format!("cannot write {dest}: {e}"))?;
        writeln!(out, "schedule written to {dest}").unwrap();
    }
    Ok(out)
}

fn cmd_plan(args: &Args) -> Result<String, String> {
    let path = args.pos(0, "instance")?;
    let deadline = args.int_opt("deadline", -1)?;
    if deadline < 0 {
        return Err("--deadline is required and must be non-negative".into());
    }
    let cap = positive_opt(args, "cap", 1_000_000)? as usize;
    let solver_name = args.opt("solver").unwrap_or("optimal");
    let registry = SolverRegistry::global();
    let instance = Instance::new(load_platform(path)?, cap);
    let solution =
        registry.solve_by_deadline(solver_name, &instance, deadline).map_err(|e| e.to_string())?;
    let mut out = String::new();
    writeln!(out, "{} task(s) fit by t = {deadline}", solution.n()).unwrap();
    match solution.schedule() {
        Some(ScheduleRepr::Chain(s)) => out.push_str(&s.to_string()),
        Some(ScheduleRepr::Spider(s)) => out.push_str(&s.to_string()),
        Some(ScheduleRepr::Tree(s)) => out.push_str(&s.to_string()),
        None => {}
    }
    Ok(out)
}

/// Loads a [`mst_api::RegistrySet`] from `--config`/`--solvers-config`.
fn load_registry_set(args: &Args, flag: &str) -> Result<Option<mst_api::RegistrySet>, String> {
    let Some(path) = args.opt(flag) else { return Ok(None) };
    if path.is_empty() {
        return Err(format!("--{flag} expects a file path"));
    }
    let text = read_file(path)?;
    mst_api::RegistrySet::parse(&text).map(Some).map_err(|e| format!("{path}: {e}"))
}

fn cmd_solvers(args: &Args) -> Result<String, String> {
    let set = load_registry_set(args, "config")?;
    let registry = match (&set, args.opt("registry")) {
        (None, Some(_)) => return Err("--registry needs --config".into()),
        (None, None) => SolverRegistry::global().clone(),
        (Some(set), None) => set.default_registry().clone(),
        (Some(set), Some(name)) => set
            .get(name)
            .ok_or_else(|| {
                format!("no registry named {name:?} in the config (available: {:?})", set.names())
            })?
            .clone(),
    };
    let mut out = String::new();
    if let Some(set) = &set {
        if !set.names().is_empty() {
            writeln!(out, "named registries: {}", set.names().join(", ")).unwrap();
        }
    }
    writeln!(
        out,
        "{:<18} {:<7} {:<6} {:<7} {:<5} {:<9} description",
        "name", "chain", "fork", "spider", "tree", "deadline"
    )
    .unwrap();
    for solver in registry.solvers() {
        let tick = |kind| if solver.supports(kind) { "yes" } else { "-" };
        writeln!(
            out,
            "{:<18} {:<7} {:<6} {:<7} {:<5} {:<9} {}",
            solver.name(),
            tick(TopologyKind::Chain),
            tick(TopologyKind::Fork),
            tick(TopologyKind::Spider),
            tick(TopologyKind::Tree),
            if solver.by_deadline() { "yes" } else { "-" },
            solver.description(),
        )
        .unwrap();
    }
    Ok(out)
}

fn cmd_tenants(args: &Args) -> Result<String, String> {
    let set = load_registry_set(args, "config")?.unwrap_or_else(mst_api::RegistrySet::builtin);
    let mut out = String::new();
    writeln!(
        out,
        "{:<14} {:<16} {:<8} {:<6} {:<14} {:<12} solvers",
        "tenant", "token", "threads", "quota", "max-instances", "deadline-ms"
    )
    .unwrap();
    let fmt_opt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |n| n.to_string());
    let mut row =
        |name: &str, registry: &mst_api::SolverRegistry, limits: &mst_api::TenantLimits| {
            writeln!(
                out,
                "{:<14} {:<16} {:<8} {:<6} {:<14} {:<12} {}",
                name,
                limits.token.as_deref().unwrap_or(if name == "default" { "-" } else { name }),
                limits.threads.map_or_else(|| "shared".to_string(), |n| n.to_string()),
                fmt_opt(limits.quota.map(|n| n as u64)),
                fmt_opt(limits.max_instances.map(|n| n as u64)),
                fmt_opt(limits.deadline_ms),
                registry.len(),
            )
            .unwrap();
        };
    row("default", set.default_registry(), set.default_limits());
    for (name, registry, limits) in set.tenants() {
        row(name, registry, limits);
    }
    Ok(out)
}

fn topology_by_name(name: &str) -> Result<TopologyKind, String> {
    TopologyKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| format!("unknown topology {name:?}"))
}

fn cmd_batch(args: &Args) -> Result<String, String> {
    let kind = topology_by_name(args.pos(0, "topology")?)?;
    let count = positive_opt(args, "count", 100)? as u64;
    let tasks = positive_opt(args, "tasks", 8)? as usize;
    let size = positive_opt(args, "size", 4)? as usize;
    let solver_name = args.opt("solver").unwrap_or("optimal").to_string();
    let profile = profile_by_name(args.opt("profile").unwrap_or("uniform"))?;

    // The same shared generator the `/batch` endpoint and the benchmark
    // use (`mst_api::fleet`), so a CLI sweep names the same instances.
    let instances = mst_api::fleet::SweepSpec::new(kind, count)
        .size(size)
        .tasks(tasks)
        .profile(profile)
        .instances();
    let batch = Batch::default().with_solver(&solver_name);
    let started = std::time::Instant::now();
    let results = if args.opt("deadline").is_some() {
        let deadline = args.int_opt("deadline", 0)?;
        if deadline < 0 {
            return Err("--deadline must be non-negative".into());
        }
        batch.solve_all_by_deadline(&instances, deadline)
    } else {
        batch.solve_all(&instances)
    };
    let elapsed = started.elapsed();
    let summary = mst_api::BatchSummary::of(&results);
    if let Some(first_err) = results.iter().find_map(|r| r.as_ref().err()) {
        return Err(format!("batch failed ({} instance(s)): {first_err}", summary.failed));
    }
    let mut out = String::new();
    writeln!(
        out,
        "swept {count} {kind} instance(s) (size {size}, {tasks} task cap) with {solver_name}",
    )
    .unwrap();
    writeln!(out, "{summary}").unwrap();
    writeln!(
        out,
        "wall time {:.3}s ({:.0} instances/s)",
        elapsed.as_secs_f64(),
        count as f64 / elapsed.as_secs_f64().max(1e-9)
    )
    .unwrap();
    Ok(out)
}

fn cmd_serve(args: &Args) -> Result<String, String> {
    let addr = args.opt("addr").unwrap_or("127.0.0.1:8080").to_string();
    let threads = match args.opt("threads") {
        None => None,
        Some(_) => Some(positive_opt(args, "threads", 1)? as usize),
    };
    let registries = load_registry_set(args, "solvers-config")?;
    let store = match args.opt("store") {
        Some("") => return Err("--store expects a file path".into()),
        other => other.map(String::from),
    };
    let io = match args.opt("io") {
        None | Some("event") => mst_serve::IoModel::Event,
        Some("threads") => mst_serve::IoModel::Threads,
        Some(other) => return Err(format!("--io must be \"event\" or \"threads\", got {other:?}")),
    };
    let config = mst_serve::ServeConfig {
        addr,
        threads,
        registries,
        store,
        io,
        ..mst_serve::ServeConfig::default()
    };
    let server = mst_serve::Server::bind(config).map_err(|e| format!("cannot serve: {e}"))?;
    mst_serve::install_sigint_handler();
    // Announce readiness before blocking so scripts (and the CI smoke)
    // know when to start talking to us.
    println!("mst-serve listening on http://{} (ctrl-c to stop)", server.addr());
    let report = server.run().map_err(|e| format!("server failed: {e}"))?;
    Ok(format!(
        "shut down after {} connection(s), {} request(s), {} instance(s) solved\n",
        report.connections, report.requests, report.solved
    ))
}

/// `mst chaos` — the seeded fault-injection harness of
/// [`crate::chaos`]: hostile traffic against a live server, structured
/// fail-closed report.
fn cmd_chaos(args: &Args) -> Result<String, String> {
    let addr = args.opt("addr").unwrap_or("127.0.0.1:8080");
    let seed = args.int_opt("seed", 1)?;
    if seed < 0 {
        return Err("--seed must be non-negative".into());
    }
    let minutes: f64 = match args.opt("minutes") {
        None => 0.25,
        Some(raw) => raw.parse().map_err(|_| format!("--minutes must be a number, got {raw:?}"))?,
    };
    if !(0.0..=120.0).contains(&minutes) {
        return Err("--minutes must be between 0 and 120".into());
    }
    let report = crate::chaos::run_chaos(addr, seed as u64, minutes);
    let json = report.to_json();
    if report.ok() {
        Ok(json)
    } else {
        Err(json)
    }
}

/// `mst check-model` — the exhaustive bounded model check of
/// [`mst_verify`]: every platform within the bounds, every gate
/// property, fail-closed JSON verdict.
fn cmd_check_model(args: &Args) -> Result<String, String> {
    let bounds = mst_verify::ModelBounds {
        max_procs: positive_opt(args, "max-procs", 3)? as usize,
        max_tasks: positive_opt(args, "max-tasks", 3)? as usize,
        max_weight: positive_opt(args, "max-weight", 2)?,
    };
    if bounds.max_procs > 6 {
        return Err("--max-procs above 6 would enumerate millions of trees; stay within 6".into());
    }
    let registry = SolverRegistry::with_defaults();
    let report = mst_verify::check_model(&registry, &bounds);
    let json = report.to_json();
    if report.ok() {
        Ok(json)
    } else {
        Err(json)
    }
}

/// `mst fuzz` — the seeded differential fuzzer of [`mst_verify`]:
/// random instances against the gate properties for a wall-clock
/// budget, minimized failures, fail-closed JSON verdict.
fn cmd_fuzz(args: &Args) -> Result<String, String> {
    let seed = args.int_opt("seed", 42)?;
    if seed < 0 {
        return Err("--seed must be non-negative".into());
    }
    let minutes: f64 = match args.opt("minutes") {
        None => 1.0,
        Some(raw) => raw.parse().map_err(|_| format!("--minutes must be a number, got {raw:?}"))?,
    };
    if !(0.0..=120.0).contains(&minutes) {
        return Err("--minutes must be between 0 and 120".into());
    }
    let config = mst_verify::FuzzConfig {
        seed: seed as u64,
        minutes,
        corpus: args.opt("corpus").map(std::path::PathBuf::from),
    };
    let registry = SolverRegistry::with_defaults();
    let report = mst_verify::run_fuzz(&registry, &config);
    let json = report.to_json();
    if report.ok() {
        Ok(json)
    } else {
        Err(json)
    }
}

/// `mst history <store>` — inspect a `--store` record log offline:
/// which instances were solved, by which tenant and solver, how fast.
fn cmd_history(args: &Args) -> Result<String, String> {
    use mst_store::StoreBackend as _;
    let path = args.pos(0, "store")?;
    if !std::path::Path::new(path).is_file() {
        return Err(format!("no result store at {path} (start one with mst serve --store {path})"));
    }
    let store = mst_store::FileStore::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let limit = positive_opt(args, "limit", 50)? as usize;
    let records = store.records();
    let page = mst_store::query(&records, args.opt("tenant"), args.opt("solver"), limit);
    let mut out = String::new();
    writeln!(out, "{} record(s) in {path} ({} shown, newest first)", records.len(), page.len())
        .unwrap();
    writeln!(
        out,
        "{:<12} {:<18} {:>6} {:>9} {:>9} {:>11}  platform",
        "tenant", "solver", "tasks", "deadline", "makespan", "elapsed-us"
    )
    .unwrap();
    for r in page {
        writeln!(
            out,
            "{:<12} {:<18} {:>6} {:>9} {:>9} {:>11}  {}",
            r.tenant,
            r.solver,
            r.tasks,
            r.deadline.map_or_else(|| "-".to_string(), |d| d.to_string()),
            r.makespan,
            r.elapsed_us,
            r.platform.lines().next().unwrap_or(""),
        )
        .unwrap();
    }
    Ok(out)
}

fn cmd_validate(args: &Args) -> Result<String, String> {
    let inst_path = args.pos(0, "instance")?;
    let sched_path = args.pos(1, "schedule")?;
    let sched_text = read_file(sched_path)?;
    let mut out = String::new();
    match load_platform(inst_path)? {
        Platform::Chain(chain) => {
            let s = chain_schedule_from_text(&chain, &sched_text)
                .map_err(|e| format!("{sched_path}: {e}"))?;
            let report = check_chain(&chain, &s);
            if !report.is_feasible() {
                let mut msg = String::from("INFEASIBLE:\n");
                for v in &report.violations {
                    writeln!(msg, "  - {v}").unwrap();
                }
                return Err(msg);
            }
            let trace = replay_chain(&chain, &s).map_err(|e| format!("replay failed: {e}"))?;
            writeln!(
                out,
                "feasible: {} tasks, makespan {}, replayed {} events",
                s.n(),
                s.makespan(),
                trace.len()
            )
            .unwrap();
        }
        Platform::Spider(spider) => {
            let s = spider_schedule_from_text(&spider, &sched_text)
                .map_err(|e| format!("{sched_path}: {e}"))?;
            let report = check_spider(&spider, &s);
            if !report.is_feasible() {
                let mut msg = String::from("INFEASIBLE:\n");
                for v in &report.violations {
                    writeln!(msg, "  - {v}").unwrap();
                }
                return Err(msg);
            }
            let trace = replay_spider(&spider, &s).map_err(|e| format!("replay failed: {e}"))?;
            writeln!(
                out,
                "feasible: {} tasks, makespan {}, replayed {} events",
                s.n(),
                s.makespan(),
                trace.len()
            )
            .unwrap();
        }
        Platform::Fork(fork) => {
            let spider = mst_platform::Spider::from_fork(&fork);
            let s = spider_schedule_from_text(&spider, &sched_text)
                .map_err(|e| format!("{sched_path}: {e}"))?;
            let report = check_spider(&spider, &s);
            if !report.is_feasible() {
                return Err(format!("INFEASIBLE: {} violation(s)", report.violations.len()));
            }
            writeln!(out, "feasible: {} tasks, makespan {}", s.n(), s.makespan()).unwrap();
        }
        Platform::Tree(_) => return Err("validate expects a chain, fork or spider instance".into()),
    }
    Ok(out)
}

fn cmd_gantt(args: &Args) -> Result<String, String> {
    let inst_path = args.pos(0, "instance")?;
    let sched_path = args.pos(1, "schedule")?;
    let sched_text = read_file(sched_path)?;
    match load_platform(inst_path)? {
        Platform::Chain(chain) => {
            let s = chain_schedule_from_text(&chain, &sched_text)
                .map_err(|e| format!("{sched_path}: {e}"))?;
            Ok(gantt::render_chain(&chain, &s))
        }
        Platform::Spider(spider) => {
            let s = spider_schedule_from_text(&spider, &sched_text)
                .map_err(|e| format!("{sched_path}: {e}"))?;
            Ok(gantt::render_spider(&spider, &s))
        }
        Platform::Fork(fork) => {
            let spider = mst_platform::Spider::from_fork(&fork);
            let s = spider_schedule_from_text(&spider, &sched_text)
                .map_err(|e| format!("{sched_path}: {e}"))?;
            Ok(gantt::render_spider(&spider, &s))
        }
        Platform::Tree(_) => Err("gantt expects a chain, fork or spider instance".into()),
    }
}

fn profile_by_name(name: &str) -> Result<HeterogeneityProfile, String> {
    HeterogeneityProfile::by_name(name).ok_or_else(|| format!("unknown profile {name:?}"))
}

fn cmd_generate(args: &Args) -> Result<String, String> {
    let kind = args.pos(0, "topology")?;
    let size = positive_opt(args, "size", 4)? as usize;
    let seed = args.int_opt("seed", 0)? as u64;
    let profile = profile_by_name(args.opt("profile").unwrap_or("uniform"))?;
    // Same mapping as `mst batch`: a batch instance regenerates from its
    // (topology, profile, seed, size).
    let kind = topology_by_name(kind)?;
    let platform = Instance::generate(kind, profile, seed, size, 1).platform;
    Ok(to_text(&platform.into()))
}

fn cmd_stats(args: &Args) -> Result<String, String> {
    use mst_baselines::bounds::chain_lower_bound;
    let path = args.pos(0, "instance")?;
    let n = positive_opt(args, "tasks", 10)? as usize;
    let platform = load_platform(path)?;
    let chain = platform
        .as_chain()
        .ok_or_else(|| "stats currently expects a chain instance".to_string())?
        .clone();
    let registry = SolverRegistry::global();
    let instance = Instance::new(platform.clone(), n);
    let makespan_of = |solver: &str| -> Result<i64, String> {
        Ok(registry.solve(solver, &instance).map_err(|e| e.to_string())?.makespan())
    };
    let opt = registry.solve("optimal", &instance).map_err(|e| e.to_string())?;
    let m = metrics::chain_metrics(&chain, opt.chain_schedule().expect("chain instance"));
    let mut out = String::new();
    writeln!(out, "platform: {chain}").unwrap();
    writeln!(out, "tasks: {n}").unwrap();
    writeln!(out, "optimal makespan:      {:>8}", opt.makespan()).unwrap();
    writeln!(out, "eager heuristic:       {:>8}", makespan_of("eager")?).unwrap();
    writeln!(out, "round robin:           {:>8}", makespan_of("round-robin")?).unwrap();
    writeln!(out, "master only:           {:>8}", makespan_of("master-only")?).unwrap();
    writeln!(out, "analytic lower bound:  {:>8}", chain_lower_bound(&chain, n)).unwrap();
    let (rt, rd) = chain.steady_state_rate();
    writeln!(out, "steady-state rate:     {rt}/{rd} task/tick").unwrap();
    writeln!(out, "tasks per processor:   {:?}", m.tasks_per_proc).unwrap();
    writeln!(out, "throughput achieved:   {:.4} task/tick", m.throughput()).unwrap();
    Ok(out)
}

fn cmd_diff(args: &Args) -> Result<String, String> {
    let inst_path = args.pos(0, "instance")?;
    let a_path = args.pos(1, "schedule-a")?;
    let b_path = args.pos(2, "schedule-b")?;
    let platform = load_platform(inst_path)?;
    let chain =
        platform.as_chain().ok_or_else(|| "diff currently expects a chain instance".to_string())?;
    let a = chain_schedule_from_text(chain, &read_file(a_path)?)
        .map_err(|e| format!("{a_path}: {e}"))?;
    let b = chain_schedule_from_text(chain, &read_file(b_path)?)
        .map_err(|e| format!("{b_path}: {e}"))?;
    Ok(mst_schedule::compare_chain(&a, &b).to_string())
}

fn cmd_curve(args: &Args) -> Result<String, String> {
    use mst_core::analysis::{depth_usage, makespan_curve, marginal_costs};
    let path = args.pos(0, "instance")?;
    let n_max = positive_opt(args, "max", 16)? as usize;
    let platform = load_platform(path)?;
    let chain = platform
        .as_chain()
        .ok_or_else(|| "curve currently expects a chain instance".to_string())?;
    let curve = makespan_curve(chain, n_max);
    let costs = marginal_costs(&curve);
    let mut out = String::new();
    writeln!(out, "{:>5} | {:>8} | {:>8} | {:>5}", "n", "makespan", "marginal", "depth").unwrap();
    for n in 1..=n_max {
        writeln!(
            out,
            "{:>5} | {:>8} | {:>8} | {:>5}",
            n,
            curve[n - 1],
            costs[n - 1],
            depth_usage(chain, n)
        )
        .unwrap();
    }
    let (rt, rd) = chain.steady_state_rate();
    writeln!(out, "steady-state period: {rd}/{rt} ticks per task").unwrap();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_api::verify;
    use mst_platform::format::parse as parse_instance;
    use std::path::PathBuf;

    fn tmp(name: &str, contents: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mst-cli-test-{}-{name}", std::process::id()));
        fs::write(&p, contents).expect("write temp file");
        p
    }

    fn run_line(line: &str) -> Result<String, String> {
        run(&Args::parse(line.split_whitespace().map(String::from)))
    }

    #[test]
    fn schedule_command_on_figure2() {
        let inst = tmp("fig2.txt", "chain\n2 3\n3 5\n");
        let out = run_line(&format!("schedule {} --tasks 5 --gantt", inst.display())).unwrap();
        assert!(out.contains("optimal makespan for 5 tasks: 14"), "{out}");
        assert!(out.contains("link 1"));
    }

    #[test]
    fn schedule_accepts_registry_solvers() {
        let inst = tmp("fig2solver.txt", "chain\n2 3\n3 5\n");
        let out =
            run_line(&format!("schedule {} --tasks 5 --solver eager", inst.display())).unwrap();
        assert!(out.contains("eager makespan for 5 tasks:"), "{out}");
        let out =
            run_line(&format!("schedule {} --tasks 5 --solver exact", inst.display())).unwrap();
        assert!(out.contains("exact makespan for 5 tasks: 14"), "{out}");
        let err =
            run_line(&format!("schedule {} --tasks 5 --solver nope", inst.display())).unwrap_err();
        assert!(err.contains("no solver named"), "{err}");
    }

    #[test]
    fn schedule_and_validate_round_trip() {
        let inst = tmp("fig2b.txt", "chain\n2 3\n3 5\n");
        let sched = std::env::temp_dir().join(format!("mst-cli-sched-{}", std::process::id()));
        run_line(&format!("schedule {} --tasks 5 --out {}", inst.display(), sched.display()))
            .unwrap();
        let out = run_line(&format!("validate {} {}", inst.display(), sched.display())).unwrap();
        assert!(out.contains("feasible: 5 tasks, makespan 14"), "{out}");
        let out = run_line(&format!("gantt {} {}", inst.display(), sched.display())).unwrap();
        assert!(out.contains("proc 2"));
    }

    #[test]
    fn validate_rejects_bogus_schedule() {
        let inst = tmp("fig2c.txt", "chain\n2 3\n3 5\n");
        // Two tasks overlapping on processor 1.
        let sched = tmp("bogus.txt", "chain-schedule\ntask 1 2 0\ntask 1 4 2\n");
        let err =
            run_line(&format!("validate {} {}", inst.display(), sched.display())).unwrap_err();
        assert!(err.contains("INFEASIBLE"), "{err}");
        assert!(err.contains("overlap"), "{err}");
    }

    #[test]
    fn plan_command_counts_tasks() {
        let inst = tmp("fig2d.txt", "chain\n2 3\n3 5\n");
        let out = run_line(&format!("plan {} --deadline 14", inst.display())).unwrap();
        assert!(out.contains("5 task(s) fit by t = 14"), "{out}");
        let out = run_line(&format!("plan {} --deadline 4", inst.display())).unwrap();
        assert!(out.contains("0 task(s)"), "{out}");
    }

    #[test]
    fn generate_emits_parseable_instances() {
        for kind in ["chain", "fork", "spider", "tree"] {
            let out = run_line(&format!("generate {kind} --size 4 --seed 3")).unwrap();
            assert!(parse_instance(&out).is_ok(), "{kind}: {out}");
        }
        assert!(run_line("generate ring --size 4").is_err());
        assert!(run_line("generate chain --profile alien").is_err());
    }

    #[test]
    fn stats_command_reports_all_lines() {
        let inst = tmp("fig2e.txt", "chain\n2 3\n3 5\n");
        let out = run_line(&format!("stats {} --tasks 5", inst.display())).unwrap();
        assert!(out.contains("optimal makespan:            14"), "{out}");
        assert!(out.contains("steady-state rate"), "{out}");
    }

    #[test]
    fn spider_instances_schedule_and_validate() {
        let inst = tmp("spider.txt", "spider\nleg 2 3 3 5\nleg 1 4\n");
        let sched = std::env::temp_dir().join(format!("mst-cli-ssched-{}", std::process::id()));
        let out =
            run_line(&format!("schedule {} --tasks 6 --out {}", inst.display(), sched.display()))
                .unwrap();
        assert!(out.contains("optimal makespan for 6 tasks"), "{out}");
        let out = run_line(&format!("validate {} {}", inst.display(), sched.display())).unwrap();
        assert!(out.contains("feasible: 6 tasks"), "{out}");
    }

    #[test]
    fn tree_instances_report_their_cover() {
        let inst = tmp("tree.txt", "tree\nnode 0 1 2\nnode 1 2 3\nnode 1 1 1\n");
        let out = run_line(&format!("schedule {} --tasks 4", inst.display())).unwrap();
        assert!(out.contains("best spider-cover makespan for 4 tasks"), "{out}");
        assert!(out.contains("of 3 processors"), "{out}");
        // A non-cover solver on a tree must not claim a cover.
        let out =
            run_line(&format!("schedule {} --tasks 2 --solver exact", inst.display())).unwrap();
        assert!(out.contains("exact makespan for 2 tasks"), "{out}");
        assert!(!out.contains("spider-cover"), "{out}");
    }

    #[test]
    fn solvers_command_lists_the_registry() {
        let out = run_line("solvers").unwrap();
        for name in [
            "optimal",
            "chain-optimal",
            "fork-optimal",
            "spider-optimal",
            "eager",
            "round-robin",
            "exact",
            "divisible",
        ] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        assert!(out.contains("deadline"), "{out}");
    }

    #[test]
    fn solvers_command_loads_registry_configs() {
        let config = tmp(
            "solvers.json",
            r#"{
                "default": {"solvers": [{"solver": "random", "name": "random-41", "seed": 41}]},
                "registries": {
                    "lean": {"base": "empty", "solvers": [
                        {"solver": "optimal"},
                        {"solver": "alias", "name": "best", "target": "optimal"}
                    ]}
                }
            }"#,
        );
        let out = run_line(&format!("solvers --config {}", config.display())).unwrap();
        assert!(out.contains("random-41"), "{out}");
        assert!(out.contains("named registries: lean"), "{out}");
        let out =
            run_line(&format!("solvers --config {} --registry lean", config.display())).unwrap();
        assert!(out.contains("best"), "{out}");
        assert!(!out.contains("eager"), "pinned registries hide unlisted solvers: {out}");

        let err = run_line(&format!("solvers --config {} --registry nope", config.display()))
            .unwrap_err();
        assert!(err.contains("no registry named"), "{err}");
        assert!(run_line("solvers --registry lean").is_err(), "--registry needs --config");
        let bad = tmp("solvers-bad.json", r#"{"solvers": [{"solver": "warp-drive"}]}"#);
        let err = run_line(&format!("solvers --config {}", bad.display())).unwrap_err();
        assert!(err.contains("unknown solver constructor"), "{err}");
    }

    #[test]
    fn tenants_command_prints_resolved_policies() {
        let config = tmp(
            "tenants.json",
            r#"{
                "registries": {
                    "acme": {
                        "only": ["optimal", "exact"],
                        "token": "acme-secret",
                        "threads": 2,
                        "quota": 4,
                        "deadline_ms": 2000
                    },
                    "lab": {"base": "empty", "solvers": [{"solver": "optimal"}]}
                }
            }"#,
        );
        let out = run_line(&format!("tenants --config {}", config.display())).unwrap();
        assert!(out.contains("acme"), "{out}");
        assert!(out.contains("acme-secret"), "{out}");
        assert!(out.lines().any(|l| l.starts_with("acme") && l.contains("2000")), "{out}");
        // The unbudgeted tenant falls back to its name as token and the
        // shared pool.
        assert!(out.lines().any(|l| l.starts_with("lab") && l.contains("shared")), "{out}");
        assert!(out.lines().any(|l| l.starts_with("default")), "{out}");
        // Without --config the builtin default policy is the only row.
        let bare = run_line("tenants").unwrap();
        assert!(bare.lines().any(|l| l.starts_with("default") && l.contains("shared")), "{bare}");
        // A broken config fails loudly.
        let bad = tmp("tenants-bad.json", r#"{"registries": {"a": {"threads": 0}}}"#);
        let err = run_line(&format!("tenants --config {}", bad.display())).unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn exact_tree_schedules_print_their_witness() {
        let inst = tmp("tree-exact.txt", "tree\nnode 0 1 9\nnode 1 1 3\nnode 1 1 3\n");
        let out =
            run_line(&format!("schedule {} --tasks 4 --solver exact", inst.display())).unwrap();
        assert!(out.contains("exact makespan for 4 tasks: 9"), "{out}");
        assert!(out.contains("node ="), "the tree witness is printed:\n{out}");
        // Tree schedules have no text file format yet: --out must say so.
        let dest = std::env::temp_dir().join(format!("mst-cli-tsched-{}", std::process::id()));
        let err = run_line(&format!(
            "schedule {} --tasks 2 --solver exact --out {}",
            inst.display(),
            dest.display()
        ))
        .unwrap_err();
        assert!(err.contains("no schedule to write"), "{err}");
    }

    #[test]
    fn batch_command_sweeps_instances() {
        let out = run_line("batch chain --count 32 --tasks 6 --size 3").unwrap();
        assert!(out.contains("swept 32 chain instance(s)"), "{out}");
        assert!(out.contains("32 solved, 0 failed"), "{out}");
        let out =
            run_line("batch spider --count 8 --tasks 5 --size 3 --solver spider-optimal").unwrap();
        assert!(out.contains("8 solved, 0 failed"), "{out}");
        let out = run_line("batch chain --count 8 --tasks 9 --deadline 12").unwrap();
        assert!(out.contains("8 solved"), "{out}");
        let err = run_line("batch chain --count 8 --deadline -3").unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
        let err = run_line("batch chain --count -1").unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        assert!(run_line("batch ring --count 2").is_err());
        // A solver that rejects the topology fails the batch loudly.
        let err = run_line("batch tree --count 2 --solver chain-optimal").unwrap_err();
        assert!(err.contains("does not support"), "{err}");
    }

    #[test]
    fn diff_command_reports_differences() {
        let inst = tmp("fig2f.txt", "chain\n2 3\n3 5\n");
        let a = tmp("a.sched", "chain-schedule\ntask 1 2 0\ntask 2 9 2 4\n");
        let b = tmp("b.sched", "chain-schedule\ntask 1 2 0\ntask 1 5 2\n");
        let out =
            run_line(&format!("diff {} {} {}", inst.display(), a.display(), b.display())).unwrap();
        assert!(out.contains("task 2: runs on processor 2 vs 1"), "{out}");
        let same =
            run_line(&format!("diff {} {} {}", inst.display(), a.display(), a.display())).unwrap();
        assert!(same.contains("identical"), "{same}");
    }

    #[test]
    fn curve_command_prints_staircase() {
        let inst = tmp("fig2g.txt", "chain\n2 3\n3 5\n");
        let out = run_line(&format!("curve {} --max 5", inst.display())).unwrap();
        assert!(out.contains("steady-state period: 2/1"), "{out}");
        // n = 5 row carries the Figure-2 makespan.
        assert!(out.lines().any(|l| l.contains("5 |       14")), "{out}");
    }

    #[test]
    fn serve_command_rejects_bad_arguments() {
        let err = run_line("serve --addr not-an-address").unwrap_err();
        assert!(err.contains("cannot serve"), "{err}");
        let err = run_line("serve --threads 0").unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = run_line("serve --io fibers").unwrap_err();
        assert!(err.contains("--io"), "{err}");
    }

    #[test]
    fn loadgen_command_rejects_bad_arguments() {
        let err = run_line("loadgen --tenants 0").unwrap_err();
        assert!(err.contains("--tenants"), "{err}");
        let err = run_line("loadgen --rate -3").unwrap_err();
        assert!(err.contains("--rate"), "{err}");
        let err = run_line("loadgen --seconds 0").unwrap_err();
        assert!(err.contains("--seconds"), "{err}");
        let err = run_line("loadgen --tolerance 1.5").unwrap_err();
        assert!(err.contains("--tolerance"), "{err}");
        let err = run_line("loadgen --p99-limit nope").unwrap_err();
        assert!(err.contains("--p99-limit"), "{err}");
        let err = run_line("loadgen --addr not-an-address").unwrap_err();
        assert!(err.contains("resolve"), "{err}");
    }

    #[test]
    fn serve_command_answers_health_and_shuts_down() {
        use std::io::{Read as _, Write as _};
        // Drive the server exactly as cmd_serve wires it, but on an
        // ephemeral port with a programmatic shutdown.
        let config = mst_serve::ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..mst_serve::ServeConfig::default()
        };
        let server = mst_serve::Server::bind(config).unwrap();
        let (addr, handle) = (server.addr(), server.handle());
        let runner = std::thread::spawn(move || server.run().unwrap());
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        handle.shutdown();
        let report = runner.join().unwrap();
        assert_eq!(report.requests, 1);
    }

    #[test]
    fn history_command_reads_a_store_log() {
        use mst_store::StoreBackend as _;
        let path = std::env::temp_dir().join(format!("mst-cli-history-{}.log", std::process::id()));
        let _ = fs::remove_file(&path);
        // A missing store is a loud error, not an empty listing.
        let err = run_line(&format!("history {}", path.display())).unwrap_err();
        assert!(err.contains("no result store"), "{err}");
        // Write records the way a --store server does, then read back.
        let store = mst_store::FileStore::open(&path).unwrap();
        let registry = SolverRegistry::global();
        for (tenant, solver, tasks) in
            [("default", "optimal", 5), ("acme", "eager", 3), ("default", "optimal", 7)]
        {
            let instance = Instance::new(Platform::parse("chain\n2 3\n3 5\n").unwrap(), tasks);
            let solution = registry.solve(solver, &instance).unwrap();
            store
                .append(&mst_store::Record {
                    tenant: tenant.into(),
                    solver: solver.into(),
                    platform: instance.platform.to_text(),
                    tasks,
                    deadline: None,
                    canon_hash: format!("{:032x}", tasks),
                    makespan: solution.makespan(),
                    scheduled: solution.n(),
                    elapsed_us: 10,
                    solution: mst_api::wire::solution_to_json(&solution),
                })
                .unwrap();
        }
        drop(store);
        let out = run_line(&format!("history {}", path.display())).unwrap();
        assert!(out.contains("3 record(s)"), "{out}");
        assert!(out.contains("acme"), "{out}");
        let out =
            run_line(&format!("history {} --tenant default --limit 1", path.display())).unwrap();
        assert!(out.contains("1 shown"), "{out}");
        assert!(!out.contains("acme"), "filtered out:\n{out}");
        // Newest first: the limit-1 page shows the 7-task record.
        assert!(out.lines().any(|l| l.contains("optimal") && l.contains(" 7 ")), "{out}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn serve_command_accepts_a_store_path() {
        let err = run_line("serve --store").unwrap_err();
        assert!(err.contains("--store expects"), "{err}");
    }

    #[test]
    fn chaos_command_validates_arguments_and_fails_closed() {
        let err = run_line("chaos --minutes nope").unwrap_err();
        assert!(err.contains("must be a number"), "{err}");
        let err = run_line("chaos --seed -1").unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
        let err = run_line("chaos --minutes 500").unwrap_err();
        assert!(err.contains("between 0 and 120"), "{err}");
        // Nothing listens on the target: the run fails closed with the
        // structured report as the error body.
        let err = run_line("chaos --addr 127.0.0.1:1 --minutes 0").unwrap_err();
        assert!(err.contains("\"ok\": false"), "{err}");
        assert!(err.contains("\"violations\""), "{err}");
    }

    #[test]
    fn check_model_command_runs_tiny_bounds_and_validates_arguments() {
        let out = run_line("check-model --max-procs 2 --max-tasks 1 --max-weight 1").unwrap();
        assert!(out.contains("\"command\":\"check-model\""), "{out}");
        assert!(out.contains("\"ok\":true"), "{out}");
        assert!(out.contains("\"platforms\":8"), "{out}");
        let err = run_line("check-model --max-procs 0").unwrap_err();
        assert!(err.contains("must be at least 1"), "{err}");
        let err = run_line("check-model --max-procs 9").unwrap_err();
        assert!(err.contains("stay within 6"), "{err}");
    }

    #[test]
    fn fuzz_command_runs_zero_budget_and_validates_arguments() {
        let out = run_line("fuzz --minutes 0 --seed 7").unwrap();
        assert!(out.contains("\"command\":\"fuzz\""), "{out}");
        assert!(out.contains("\"seed\":7"), "{out}");
        assert!(out.contains("\"ok\":true"), "{out}");
        let err = run_line("fuzz --minutes nope").unwrap_err();
        assert!(err.contains("must be a number"), "{err}");
        let err = run_line("fuzz --seed -3").unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
        let err = run_line("fuzz --minutes 500").unwrap_err();
        assert!(err.contains("between 0 and 120"), "{err}");
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run_line("help").unwrap().contains("USAGE"));
        assert!(run_line("help").unwrap().contains("check-model"));
        assert!(run_line("help").unwrap().contains("fuzz"));
        assert!(run_line("help").unwrap().contains("serve"));
        assert!(run_line("help").unwrap().contains("chaos"));
        assert!(run_line("help").unwrap().contains("loadgen"));
        assert!(run_line("help").unwrap().contains("history"));
        assert!(run_line("frobnicate").unwrap_err().contains("unknown command"));
        assert!(run_line("").unwrap().contains("USAGE"));
    }

    #[test]
    fn every_solution_from_the_cli_path_verifies() {
        // The command layer must never bypass the oracle: re-check the
        // solutions the schedule command would print.
        let registry = SolverRegistry::global();
        let instance = Instance::new(Platform::parse("spider\nleg 2 3 3 5\nleg 1 4\n").unwrap(), 6);
        for solver in registry.supporting(TopologyKind::Spider) {
            let solution = solver.solve(&instance).unwrap();
            assert!(
                verify(&instance, &solution).unwrap().is_feasible(),
                "{} produced an infeasible schedule",
                solver.name()
            );
        }
    }
}
