//! The CLI subcommand implementations.
//!
//! Every command takes parsed [`Args`] and returns the text to print (so
//! the integration tests exercise commands without spawning processes).

use crate::args::Args;
use mst_baselines::{eager_chain, master_only_chain, round_robin_chain};
use mst_baselines::bounds::chain_lower_bound;
use mst_core::{schedule_chain, schedule_chain_by_deadline};
use mst_platform::format::{parse as parse_instance, to_text, Instance};
use mst_platform::{GeneratorConfig, HeterogeneityProfile};
use mst_schedule::format::{
    chain_schedule_from_text, chain_schedule_to_text, spider_schedule_from_text,
    spider_schedule_to_text,
};
use mst_schedule::{check_chain, check_spider, gantt, metrics};
use mst_sim::{replay_chain, replay_spider};
use mst_spider::{schedule_spider, schedule_spider_by_deadline};
use mst_tree::best_cover_schedule;
use std::fmt::Write as _;
use std::fs;

/// Top-level dispatch; returns the output to print or a usage error.
pub fn run(args: &Args) -> Result<String, String> {
    match args.command.as_str() {
        "schedule" => cmd_schedule(args),
        "plan" => cmd_plan(args),
        "validate" => cmd_validate(args),
        "gantt" => cmd_gantt(args),
        "generate" => cmd_generate(args),
        "stats" => cmd_stats(args),
        "diff" => cmd_diff(args),
        "curve" => cmd_curve(args),
        "" | "help" | "--help" => Ok(usage()),
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    }
}

/// The help text.
pub fn usage() -> String {
    "mst — optimal master-slave tasking on heterogeneous processors (Dutot, IPPS 2003)

USAGE:
    mst schedule <instance> --tasks N [--out FILE] [--gantt]
        Optimal schedule for N tasks (chain, fork, spider or tree instance).
    mst plan <instance> --deadline T [--cap N]
        Maximum tasks finishing by the deadline (the T_lim variant).
    mst validate <instance> <schedule>
        Check a schedule file: Definition-1 oracle + event replay.
    mst gantt <instance> <schedule>
        Render a schedule file as an ASCII Gantt chart.
    mst generate <chain|fork|spider|tree> --size P [--profile NAME] [--seed S]
        Emit a random instance (profiles: uniform, homogeneous, comm-bound,
        compute-bound, bimodal).
    mst stats <instance> --tasks N
        Compare the optimal makespan against heuristics and bounds.
    mst diff <instance> <schedule-a> <schedule-b>
        Structural comparison of two chain schedules.
    mst curve <instance> --max N
        Optimal makespan, marginal cost and pipeline depth for 1..=N tasks.
"
    .to_string()
}

fn read_file(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn load_instance(path: &str) -> Result<Instance, String> {
    parse_instance(&read_file(path)?).map_err(|e| format!("{path}: {e}"))
}

fn cmd_schedule(args: &Args) -> Result<String, String> {
    let path = args.pos(0, "instance")?;
    let n = args.int_opt("tasks", 1)? as usize;
    if n == 0 {
        return Err("--tasks must be at least 1".into());
    }
    let mut out = String::new();
    #[allow(clippy::needless_late_init)]
    let schedule_text;
    match load_instance(path)? {
        Instance::Chain(chain) => {
            let s = schedule_chain(&chain, n);
            writeln!(out, "platform: {chain}").unwrap();
            writeln!(out, "optimal makespan for {n} tasks: {}", s.makespan()).unwrap();
            if args.flag("gantt") {
                out.push_str(&gantt::render_chain(&chain, &s));
            }
            out.push_str(&s.to_string());
            schedule_text = chain_schedule_to_text(&s);
        }
        Instance::Fork(fork) => {
            let (makespan, outcome) = mst_fork::schedule_fork(&fork, n);
            writeln!(out, "platform: {fork}").unwrap();
            writeln!(out, "optimal makespan for {n} tasks: {makespan}").unwrap();
            if args.flag("gantt") {
                let spider = mst_platform::Spider::from_fork(&fork);
                out.push_str(&gantt::render_spider(&spider, &outcome.schedule));
            }
            out.push_str(&outcome.schedule.to_string());
            schedule_text = spider_schedule_to_text(&outcome.schedule);
        }
        Instance::Spider(spider) => {
            let (makespan, s) = schedule_spider(&spider, n);
            writeln!(out, "platform: {spider}").unwrap();
            writeln!(out, "optimal makespan for {n} tasks: {makespan}").unwrap();
            if args.flag("gantt") {
                out.push_str(&gantt::render_spider(&spider, &s));
            }
            out.push_str(&s.to_string());
            schedule_text = spider_schedule_to_text(&s);
        }
        Instance::Tree(tree) => {
            let outcome = best_cover_schedule(&tree, n);
            writeln!(out, "platform: {tree}").unwrap();
            writeln!(
                out,
                "best spider-cover makespan for {n} tasks: {} (covering {} of {} processors)",
                outcome.makespan,
                outcome.cover.covered_nodes(),
                tree.len()
            )
            .unwrap();
            if args.flag("gantt") {
                out.push_str(&gantt::render_spider(&outcome.cover.spider, &outcome.schedule));
            }
            out.push_str(&outcome.schedule.to_string());
            schedule_text = spider_schedule_to_text(&outcome.schedule);
        }
    }
    if let Some(dest) = args.opt("out") {
        fs::write(dest, schedule_text).map_err(|e| format!("cannot write {dest}: {e}"))?;
        writeln!(out, "schedule written to {dest}").unwrap();
    }
    Ok(out)
}

fn cmd_plan(args: &Args) -> Result<String, String> {
    let path = args.pos(0, "instance")?;
    let deadline = args.int_opt("deadline", -1)?;
    if deadline < 0 {
        return Err("--deadline is required and must be non-negative".into());
    }
    let cap = args.int_opt("cap", 1_000_000)? as usize;
    let mut out = String::new();
    match load_instance(path)? {
        Instance::Chain(chain) => {
            let s = schedule_chain_by_deadline(&chain, cap, deadline);
            writeln!(out, "{} task(s) fit by t = {deadline}", s.n()).unwrap();
            out.push_str(&s.to_string());
        }
        Instance::Fork(fork) => {
            let outcome = mst_fork::max_tasks_fork_by_deadline(&fork, cap, deadline);
            writeln!(out, "{} task(s) fit by t = {deadline}", outcome.n()).unwrap();
            out.push_str(&outcome.schedule.to_string());
        }
        Instance::Spider(spider) => {
            let s = schedule_spider_by_deadline(&spider, cap, deadline);
            writeln!(out, "{} task(s) fit by t = {deadline}", s.n()).unwrap();
            out.push_str(&s.to_string());
        }
        Instance::Tree(_) => {
            return Err("plan is not implemented for raw trees; cover them first".into())
        }
    }
    Ok(out)
}

fn cmd_validate(args: &Args) -> Result<String, String> {
    let inst_path = args.pos(0, "instance")?;
    let sched_path = args.pos(1, "schedule")?;
    let sched_text = read_file(sched_path)?;
    let mut out = String::new();
    match load_instance(inst_path)? {
        Instance::Chain(chain) => {
            let s = chain_schedule_from_text(&chain, &sched_text)
                .map_err(|e| format!("{sched_path}: {e}"))?;
            let report = check_chain(&chain, &s);
            if !report.is_feasible() {
                let mut msg = String::from("INFEASIBLE:\n");
                for v in &report.violations {
                    writeln!(msg, "  - {v}").unwrap();
                }
                return Err(msg);
            }
            let trace = replay_chain(&chain, &s).map_err(|e| format!("replay failed: {e}"))?;
            writeln!(
                out,
                "feasible: {} tasks, makespan {}, replayed {} events",
                s.n(),
                s.makespan(),
                trace.len()
            )
            .unwrap();
        }
        Instance::Spider(spider) => {
            let s = spider_schedule_from_text(&spider, &sched_text)
                .map_err(|e| format!("{sched_path}: {e}"))?;
            let report = check_spider(&spider, &s);
            if !report.is_feasible() {
                let mut msg = String::from("INFEASIBLE:\n");
                for v in &report.violations {
                    writeln!(msg, "  - {v}").unwrap();
                }
                return Err(msg);
            }
            let trace = replay_spider(&spider, &s).map_err(|e| format!("replay failed: {e}"))?;
            writeln!(
                out,
                "feasible: {} tasks, makespan {}, replayed {} events",
                s.n(),
                s.makespan(),
                trace.len()
            )
            .unwrap();
        }
        Instance::Fork(fork) => {
            let spider = mst_platform::Spider::from_fork(&fork);
            let s = spider_schedule_from_text(&spider, &sched_text)
                .map_err(|e| format!("{sched_path}: {e}"))?;
            let report = check_spider(&spider, &s);
            if !report.is_feasible() {
                return Err(format!("INFEASIBLE: {} violation(s)", report.violations.len()));
            }
            writeln!(out, "feasible: {} tasks, makespan {}", s.n(), s.makespan()).unwrap();
        }
        Instance::Tree(_) => return Err("validate expects a chain, fork or spider instance".into()),
    }
    Ok(out)
}

fn cmd_gantt(args: &Args) -> Result<String, String> {
    let inst_path = args.pos(0, "instance")?;
    let sched_path = args.pos(1, "schedule")?;
    let sched_text = read_file(sched_path)?;
    match load_instance(inst_path)? {
        Instance::Chain(chain) => {
            let s = chain_schedule_from_text(&chain, &sched_text)
                .map_err(|e| format!("{sched_path}: {e}"))?;
            Ok(gantt::render_chain(&chain, &s))
        }
        Instance::Spider(spider) => {
            let s = spider_schedule_from_text(&spider, &sched_text)
                .map_err(|e| format!("{sched_path}: {e}"))?;
            Ok(gantt::render_spider(&spider, &s))
        }
        Instance::Fork(fork) => {
            let spider = mst_platform::Spider::from_fork(&fork);
            let s = spider_schedule_from_text(&spider, &sched_text)
                .map_err(|e| format!("{sched_path}: {e}"))?;
            Ok(gantt::render_spider(&spider, &s))
        }
        Instance::Tree(_) => Err("gantt expects a chain, fork or spider instance".into()),
    }
}

fn profile_by_name(name: &str) -> Result<HeterogeneityProfile, String> {
    Ok(match name {
        "uniform" => HeterogeneityProfile::Uniform { c: (1, 5), w: (1, 5) },
        "homogeneous" => HeterogeneityProfile::Homogeneous { c: 2, w: 3 },
        "comm-bound" => HeterogeneityProfile::CommBound,
        "compute-bound" => HeterogeneityProfile::ComputeBound,
        "bimodal" => HeterogeneityProfile::Bimodal { fast_pct: 25 },
        "correlated" => HeterogeneityProfile::Correlated,
        other => return Err(format!("unknown profile {other:?}")),
    })
}

fn cmd_generate(args: &Args) -> Result<String, String> {
    let kind = args.pos(0, "topology")?;
    let size = args.int_opt("size", 4)? as usize;
    if size == 0 {
        return Err("--size must be at least 1".into());
    }
    let seed = args.int_opt("seed", 0)? as u64;
    let profile = profile_by_name(args.opt("profile").unwrap_or("uniform"))?;
    let g = GeneratorConfig::new(profile, seed);
    let instance = match kind {
        "chain" => Instance::Chain(g.chain(size)),
        "fork" => Instance::Fork(g.fork(size)),
        "spider" => Instance::Spider(g.spider(size.clamp(1, 8), 1, 3.max(size / 2))),
        "tree" => Instance::Tree(g.tree(size)),
        other => return Err(format!("unknown topology {other:?}")),
    };
    Ok(to_text(&instance))
}

fn cmd_stats(args: &Args) -> Result<String, String> {
    let path = args.pos(0, "instance")?;
    let n = args.int_opt("tasks", 10)? as usize;
    let chain = match load_instance(path)? {
        Instance::Chain(c) => c,
        _ => return Err("stats currently expects a chain instance".into()),
    };
    let opt = schedule_chain(&chain, n);
    let m = metrics::chain_metrics(&chain, &opt);
    let mut out = String::new();
    writeln!(out, "platform: {chain}").unwrap();
    writeln!(out, "tasks: {n}").unwrap();
    writeln!(out, "optimal makespan:      {:>8}", opt.makespan()).unwrap();
    writeln!(out, "eager heuristic:       {:>8}", eager_chain(&chain, n).makespan()).unwrap();
    writeln!(out, "round robin:           {:>8}", round_robin_chain(&chain, n).makespan()).unwrap();
    writeln!(out, "master only:           {:>8}", master_only_chain(&chain, n).makespan()).unwrap();
    writeln!(out, "analytic lower bound:  {:>8}", chain_lower_bound(&chain, n)).unwrap();
    let (rt, rd) = chain.steady_state_rate();
    writeln!(out, "steady-state rate:     {rt}/{rd} task/tick").unwrap();
    writeln!(out, "tasks per processor:   {:?}", m.tasks_per_proc).unwrap();
    writeln!(out, "throughput achieved:   {:.4} task/tick", m.throughput()).unwrap();
    Ok(out)
}

fn cmd_diff(args: &Args) -> Result<String, String> {
    let inst_path = args.pos(0, "instance")?;
    let a_path = args.pos(1, "schedule-a")?;
    let b_path = args.pos(2, "schedule-b")?;
    let chain = match load_instance(inst_path)? {
        Instance::Chain(c) => c,
        _ => return Err("diff currently expects a chain instance".into()),
    };
    let a = chain_schedule_from_text(&chain, &read_file(a_path)?)
        .map_err(|e| format!("{a_path}: {e}"))?;
    let b = chain_schedule_from_text(&chain, &read_file(b_path)?)
        .map_err(|e| format!("{b_path}: {e}"))?;
    Ok(mst_schedule::compare_chain(&a, &b).to_string())
}

fn cmd_curve(args: &Args) -> Result<String, String> {
    use mst_core::analysis::{depth_usage, makespan_curve, marginal_costs};
    let path = args.pos(0, "instance")?;
    let n_max = args.int_opt("max", 16)? as usize;
    if n_max == 0 {
        return Err("--max must be at least 1".into());
    }
    let chain = match load_instance(path)? {
        Instance::Chain(c) => c,
        _ => return Err("curve currently expects a chain instance".into()),
    };
    let curve = makespan_curve(&chain, n_max);
    let costs = marginal_costs(&curve);
    let mut out = String::new();
    writeln!(out, "{:>5} | {:>8} | {:>8} | {:>5}", "n", "makespan", "marginal", "depth").unwrap();
    for n in 1..=n_max {
        writeln!(
            out,
            "{:>5} | {:>8} | {:>8} | {:>5}",
            n,
            curve[n - 1],
            costs[n - 1],
            depth_usage(&chain, n)
        )
        .unwrap();
    }
    let (rt, rd) = chain.steady_state_rate();
    writeln!(out, "steady-state period: {rd}/{rt} ticks per task").unwrap();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str, contents: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mst-cli-test-{}-{name}", std::process::id()));
        fs::write(&p, contents).expect("write temp file");
        p
    }

    fn run_line(line: &str) -> Result<String, String> {
        run(&Args::parse(line.split_whitespace().map(String::from)))
    }

    #[test]
    fn schedule_command_on_figure2() {
        let inst = tmp("fig2.txt", "chain\n2 3\n3 5\n");
        let out = run_line(&format!("schedule {} --tasks 5 --gantt", inst.display())).unwrap();
        assert!(out.contains("optimal makespan for 5 tasks: 14"), "{out}");
        assert!(out.contains("link 1"));
    }

    #[test]
    fn schedule_and_validate_round_trip() {
        let inst = tmp("fig2b.txt", "chain\n2 3\n3 5\n");
        let sched = std::env::temp_dir().join(format!("mst-cli-sched-{}", std::process::id()));
        run_line(&format!(
            "schedule {} --tasks 5 --out {}",
            inst.display(),
            sched.display()
        ))
        .unwrap();
        let out = run_line(&format!("validate {} {}", inst.display(), sched.display())).unwrap();
        assert!(out.contains("feasible: 5 tasks, makespan 14"), "{out}");
        let out = run_line(&format!("gantt {} {}", inst.display(), sched.display())).unwrap();
        assert!(out.contains("proc 2"));
    }

    #[test]
    fn validate_rejects_bogus_schedule() {
        let inst = tmp("fig2c.txt", "chain\n2 3\n3 5\n");
        // Two tasks overlapping on processor 1.
        let sched = tmp("bogus.txt", "chain-schedule\ntask 1 2 0\ntask 1 4 2\n");
        let err = run_line(&format!("validate {} {}", inst.display(), sched.display()))
            .unwrap_err();
        assert!(err.contains("INFEASIBLE"), "{err}");
        assert!(err.contains("overlap"), "{err}");
    }

    #[test]
    fn plan_command_counts_tasks() {
        let inst = tmp("fig2d.txt", "chain\n2 3\n3 5\n");
        let out = run_line(&format!("plan {} --deadline 14", inst.display())).unwrap();
        assert!(out.contains("5 task(s) fit by t = 14"), "{out}");
        let out = run_line(&format!("plan {} --deadline 4", inst.display())).unwrap();
        assert!(out.contains("0 task(s)"), "{out}");
    }

    #[test]
    fn generate_emits_parseable_instances() {
        for kind in ["chain", "fork", "spider", "tree"] {
            let out = run_line(&format!("generate {kind} --size 4 --seed 3")).unwrap();
            assert!(parse_instance(&out).is_ok(), "{kind}: {out}");
        }
        assert!(run_line("generate ring --size 4").is_err());
        assert!(run_line("generate chain --profile alien").is_err());
    }

    #[test]
    fn stats_command_reports_all_lines() {
        let inst = tmp("fig2e.txt", "chain\n2 3\n3 5\n");
        let out = run_line(&format!("stats {} --tasks 5", inst.display())).unwrap();
        assert!(out.contains("optimal makespan:            14"), "{out}");
        assert!(out.contains("steady-state rate"), "{out}");
    }

    #[test]
    fn spider_instances_schedule_and_validate() {
        let inst = tmp("spider.txt", "spider\nleg 2 3 3 5\nleg 1 4\n");
        let sched = std::env::temp_dir().join(format!("mst-cli-ssched-{}", std::process::id()));
        let out = run_line(&format!(
            "schedule {} --tasks 6 --out {}",
            inst.display(),
            sched.display()
        ))
        .unwrap();
        assert!(out.contains("optimal makespan for 6 tasks"), "{out}");
        let out = run_line(&format!("validate {} {}", inst.display(), sched.display())).unwrap();
        assert!(out.contains("feasible: 6 tasks"), "{out}");
    }

    #[test]
    fn diff_command_reports_differences() {
        let inst = tmp("fig2f.txt", "chain\n2 3\n3 5\n");
        let a = tmp("a.sched", "chain-schedule\ntask 1 2 0\ntask 2 9 2 4\n");
        let b = tmp("b.sched", "chain-schedule\ntask 1 2 0\ntask 1 5 2\n");
        let out = run_line(&format!("diff {} {} {}", inst.display(), a.display(), b.display()))
            .unwrap();
        assert!(out.contains("task 2: runs on processor 2 vs 1"), "{out}");
        let same =
            run_line(&format!("diff {} {} {}", inst.display(), a.display(), a.display())).unwrap();
        assert!(same.contains("identical"), "{same}");
    }

    #[test]
    fn curve_command_prints_staircase() {
        let inst = tmp("fig2g.txt", "chain\n2 3\n3 5\n");
        let out = run_line(&format!("curve {} --max 5", inst.display())).unwrap();
        assert!(out.contains("steady-state period: 2/1"), "{out}");
        // n = 5 row carries the Figure-2 makespan.
        assert!(out.lines().any(|l| l.contains("5 |       14")), "{out}");
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run_line("help").unwrap().contains("USAGE"));
        assert!(run_line("frobnicate").unwrap_err().contains("unknown command"));
        assert!(run_line("").unwrap().contains("USAGE"));
    }
}
