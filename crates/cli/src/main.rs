//! `mst` — the command-line entry point.
//!
//! See [`commands::usage`] (or run `mst help`) for the subcommands.

#![forbid(unsafe_code)]

mod args;
mod chaos;
mod commands;
mod loadgen;
mod top;

use args::Args;

fn main() {
    let parsed = Args::parse(std::env::args().skip(1));
    match commands::run(&parsed) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}
